"""Tracing a sharded serving deployment end to end.

The aggregate snapshots (``router.stats()``) say *how much* — requests,
MACs, cache hits, latency percentiles.  This example turns on ``repro.obs``
to answer the two questions they cannot:

* **where did each request's latency go?** — a ``Tracer`` threads one
  ``TraceContext`` through router → per-shard server → micro-batcher →
  worker → cross-shard fetch, and the ``CriticalPathAnalyzer`` decomposes
  every request's wall time into queue wait, coalesce, build, fetch,
  compute, scatter and batch wait;
* **which shard is hot?** — a deliberately skewed workload (most requests
  target shard 0's nodes) shows up in the merged per-shard request counters
  and in the per-shard load attributed from the recorded ``fetch.round``
  spans.

The demo also scrapes the unified metrics registry in Prometheus text
format and writes ``observability_trace.json`` — open it at
https://ui.perfetto.dev to see the span trees on a timeline.

Run with::

    python examples/observability_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import NAI, SGC, load_dataset
from repro.core import (
    DistillationConfig,
    ServingConfig,
    TrainingConfig,
)
from repro.graph.sampling import batch_iterator
from repro.obs import CriticalPathAnalyzer, Tracer, write_chrome_trace
from repro.serving import ClusterBuilder
from repro.shard import ShardedPredictor


def main() -> None:
    dataset = load_dataset("flickr-sim", scale=0.4)
    print("deployment graph:", dataset.summary())

    backbone = SGC(dataset.num_features, dataset.num_classes, depth=4, rng=3)
    nai = NAI(
        backbone,
        distillation_config=DistillationConfig(
            training=TrainingConfig(epochs=60, lr=0.05, weight_decay=1e-4)
        ),
        train_gates=False,
        rng=3,
    ).fit(dataset)
    predictor = nai.build_predictor(
        policy="distance",
        config=nai.inference_config(
            distance_threshold=nai.suggest_distance_threshold(0.5), batch_size=64
        ),
    )
    predictor.prepare(dataset.graph, dataset.features)

    tracer = Tracer()  # own recorder, sample every request
    serving = ServingConfig(num_workers=1, max_batch_size=16, max_wait_ms=1.0)
    cluster = (
        ClusterBuilder(ShardedPredictor.from_predictor(predictor))
        .graph(dataset.graph, dataset.features)
        .shards(3, strategy="degree_balanced")
        .serving(serving)
        .traced(tracer)
        .build()
    )

    # ------------------------------------------------------------------ #
    # A skewed online workload: 3 of every 4 requests hit shard 0's nodes.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(7)
    test_idx = rng.permutation(np.asarray(dataset.split.test_idx))
    owners = cluster.store.owner_of(test_idx)
    hot = test_idx[owners == 0]
    rest = test_idx[owners != 0]
    requests = []
    hot_batches = batch_iterator(hot, 4)
    rest_batches = batch_iterator(rest, 4)
    for i in range(min(24, len(hot_batches), len(rest_batches) * 3)):
        requests.append(hot_batches[i] if i % 4 else rest_batches[i // 4])

    with cluster:
        responses = cluster.predict_many(requests, timeout=120.0)
        stats = cluster.stats()
        metrics = cluster.metrics_text()
    print(
        f"\nserved {len(responses)} requests "
        f"({sum(r.node_ids.shape[0] for r in responses)} nodes) with tracing on"
    )

    # ------------------------------------------------------------------ #
    # 1. Where did the latency go?
    # ------------------------------------------------------------------ #
    analyzer = CriticalPathAnalyzer(tracer.spans())
    totals = analyzer.breakdown_totals()
    total = totals.pop("total")
    print(f"\ncritical-path decomposition over {total * 1e3:.1f} ms of request time")
    print("(parallel per-shard work can attribute more than 100%)")
    for component, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
        print(f"  {component:<14} {seconds * 1e3:8.2f} ms  {seconds / total:6.1%}")

    slowest = max(analyzer.request_breakdowns(), key=lambda b: b.total)
    print(f"\nslowest request (trace {slowest.trace_id}, {slowest.total * 1e3:.2f} ms):")
    for component, seconds in sorted(slowest.components.items(), key=lambda kv: -kv[1]):
        print(f"  {component:<14} {seconds * 1e3:8.2f} ms")

    # ------------------------------------------------------------------ #
    # 2. Which shard is hot?
    # ------------------------------------------------------------------ #
    print("\nper-shard sub-requests (the routing skew, from the stats merge):")
    for shard, snapshot in sorted(stats.per_shard.items()):
        print(f"  shard {shard}: {snapshot.requests_completed:3d} sub-requests")
    print("\nper-shard load attributed from fetch.round spans (hottest first):")
    for load in analyzer.shard_load():
        print(
            f"  shard {load.shard_id}: {load.rows:5d} rows over "
            f"{load.rounds} rounds, {load.seconds * 1e3:.2f} ms attributed"
        )
    print(f"ranking: {analyzer.shard_ranking()}")
    print("(multi-hop support rows spread past the targets' owners, so fetch")
    print(" load skews less than the routing skew — both views matter)")

    # ------------------------------------------------------------------ #
    # 3. One scrape surface for every counter the layers already keep.
    # ------------------------------------------------------------------ #
    lines = [
        line for line in metrics.splitlines()
        if line.startswith(("repro_requests_completed", "repro_computed_macs",
                            "repro_remote_byte_fraction", "repro_latency_p95"))
    ]
    print("\nmetrics registry (excerpt of the Prometheus scrape):")
    for line in lines:
        print(f"  {line}")

    path = write_chrome_trace(tracer.spans(), "observability_trace.json")
    print(f"\nwrote {path} — open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
