"""Generalization of NAI across scalable-GNN backbones (paper Tables IX-XI).

The NAI framework is backbone-agnostic: the same node-adaptive propagation
and Inception Distillation apply to SGC, SIGN, S2GC and GAMLP.  This example
trains all four backbones on the same dataset and reports, for each, the
accuracy and cost of vanilla fixed-depth inference versus distance- and
gate-based NAI.

Run with::

    python examples/backbone_generalization.py
"""

from __future__ import annotations

from repro import NAI, load_dataset, make_backbone
from repro.core import DistillationConfig, GateTrainingConfig, TrainingConfig


def evaluate_backbone(name: str, dataset) -> list[tuple[str, float, float, float]]:
    """Train one backbone and return (policy, accuracy, kMACs/node, ms/node) rows."""
    backbone = make_backbone(
        name,
        dataset.num_features,
        dataset.num_classes,
        depth=4,
        hidden_dims=(32,) if name in ("sign", "gamlp") else (),
        dropout=0.1,
        rng=5,
    )
    nai = NAI(
        backbone,
        distillation_config=DistillationConfig(
            training=TrainingConfig(epochs=80, lr=0.05, weight_decay=1e-4)
        ),
        gate_config=GateTrainingConfig(epochs=40, lr=0.05),
        rng=5,
    ).fit(dataset)

    rows = []
    variants = {
        "vanilla": ("none", nai.inference_config()),
        "NAI_d": (
            "distance",
            nai.inference_config(
                distance_threshold=nai.suggest_distance_threshold(0.5)
            ),
        ),
        "NAI_g": ("gate", nai.inference_config()),
    }
    for label, (policy, config) in variants.items():
        result = nai.evaluate(dataset, policy=policy, config=config)
        rows.append(
            (
                label,
                result.accuracy(dataset.labels),
                result.macs_per_node() / 1e3,
                result.time_per_node() * 1e3,
            )
        )
    return rows


def main() -> None:
    dataset = load_dataset("flickr-sim", scale=0.5)
    print("dataset:", dataset.summary())

    for backbone_name in ("sgc", "sign", "s2gc", "gamlp"):
        print(f"\n=== backbone: {backbone_name.upper()} ===")
        print(f"{'policy':<10} {'ACC':>8} {'kMACs/node':>12} {'ms/node':>9}")
        rows = evaluate_backbone(backbone_name, dataset)
        vanilla_macs = rows[0][2]
        for label, accuracy, kmacs, ms in rows:
            ratio = f"  ({vanilla_macs / kmacs:.1f}x fewer MACs)" if label != "vanilla" else ""
            print(f"{label:<10} {accuracy:>8.4f} {kmacs:>12.1f} {ms:>9.3f}{ratio}")


if __name__ == "__main__":
    main()
