"""Quickstart: train NAI on a synthetic graph and compare inference policies.

Run with::

    python examples/quickstart.py

The script walks through the full workflow of the library:

1. load a dataset (a synthetic analogue of Flickr with an inductive split),
2. build a scalable-GNN backbone (SGC) and train the NAI pipeline
   (per-depth classifiers via Inception Distillation + early-exit gates),
3. deploy three inference policies — vanilla fixed-depth, distance-based
   node-adaptive propagation (NAP_d) and gate-based NAP (NAP_g) — and
4. compare their accuracy, MACs and latency on the *unseen* test nodes.
"""

from __future__ import annotations

from repro import NAI, SGC, load_dataset
from repro.core import DistillationConfig, GateTrainingConfig, TrainingConfig


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Data: an inductive node-classification problem.
    # ------------------------------------------------------------------ #
    dataset = load_dataset("flickr-sim", scale=0.5)
    print("dataset:", dataset.name, dataset.summary())

    # ------------------------------------------------------------------ #
    # 2. Backbone + NAI training.
    # ------------------------------------------------------------------ #
    backbone = SGC(
        dataset.num_features, dataset.num_classes, depth=4, dropout=0.1, rng=0
    )
    nai = NAI(
        backbone,
        distillation_config=DistillationConfig(
            training=TrainingConfig(epochs=100, lr=0.05, weight_decay=1e-4)
        ),
        gate_config=GateTrainingConfig(epochs=50, lr=0.05),
        rng=0,
    ).fit(dataset)

    print("\nper-depth classifier validation accuracy:")
    for depth, accuracy in nai.report.classifier_val_accuracy.items():
        print(f"  f^({depth}): {accuracy:.4f}")

    # ------------------------------------------------------------------ #
    # 3 + 4. Deploy three inference policies on the unseen test nodes.
    # ------------------------------------------------------------------ #
    policies = {
        "vanilla (fixed depth k)": ("none", nai.inference_config()),
        "NAP_d (distance-based early exit)": (
            "distance",
            nai.inference_config(
                distance_threshold=nai.suggest_distance_threshold(0.5)
            ),
        ),
        "NAP_g (gate-based early exit)": ("gate", nai.inference_config()),
    }

    print("\ninductive inference on unseen test nodes:")
    header = f"{'policy':<36} {'ACC':>7} {'kMACs/node':>12} {'ms/node':>9}  avg depth"
    print(header)
    for label, (policy, config) in policies.items():
        result = nai.evaluate(dataset, policy=policy, config=config)
        print(
            f"{label:<36} {result.accuracy(dataset.labels):>7.4f} "
            f"{result.macs_per_node() / 1e3:>12.1f} {result.time_per_node() * 1e3:>9.3f}  "
            f"{result.average_depth():.2f}  {result.depth_distribution()}"
        )


if __name__ == "__main__":
    main()
