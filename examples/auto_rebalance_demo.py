"""Observation-driven automatic shard rebalancing, end to end.

One skewed workload, one closed control loop:

* a **hot shard** — most requests target shard nodes owned by one shard,
  and that shard's feature fetches carry an injected 50ms delay (a stand-in
  for a cold cache or a noisy neighbour);
* a **health monitor** tracks fleet and per-shard sliding windows
  (request/node rates, windowed latency percentiles, shard heat);
* an **SLO engine** burns the latency error budget on a fast and a slow
  window (Google-SRE multiwindow alerting) and walks the alert through
  ``pending → firing``;
* an **auto-rebalancer** listening as an alert sink asks the
  ``RebalanceAdvisor`` for a replica-boosted plan and installs it through
  the router's zero-downtime versioned rollout;
* the replicated transport's **latency routing** then drains the hot
  shard's reads onto the spare rail, the windowed p95 recovers below the
  SLO threshold and the alert resolves.

The control plane runs on a ``FakeClock`` advanced one virtual second per
request, so every burn rate and lifecycle transition in the printout is
exactly reproducible; the data plane serves for real.

Run with::

    python examples/auto_rebalance_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import NAI, SGC, load_dataset
from repro.core import (
    DistillationConfig,
    MonitorConfig,
    ServingConfig,
    ShardConfig,
    TrainingConfig,
)
from repro.obs import (
    SLO,
    AutoRebalancer,
    HealthMonitor,
    MemoryAlertSink,
    MetricsRegistry,
    RebalanceAdvisor,
    SLOEngine,
)
from repro.serving import ClusterBuilder
from repro.serving.clock import FakeClock
from repro.shard import GraphPartitioner, ShardRouter, ShardedPredictor
from repro.transport import OP_FEATURES, LocalTransport, ShardTransport

HOT_DELAY = 0.05
SLO_THRESHOLD = 0.025
NUM_SHARDS = 4
NUM_REQUESTS = 130


class ShardDelayTransport(ShardTransport):
    """Injects a fixed per-round service delay on configured shards."""

    def __init__(self, inner, delays, *, ops=(OP_FEATURES,)):
        super().__init__()
        self.inner = inner
        self.delays = {int(s): float(d) for s, d in delays.items()}
        self.ops = set(ops)

    @property
    def num_shards(self):
        return self.inner.num_shards

    def fetch(self, op, requests):
        if op in self.ops:
            delay = max(
                (self.delays.get(int(s), 0.0) for s, _ in requests), default=0.0
            )
            if delay > 0.0:
                import time

                time.sleep(delay)
        return self.inner.fetch(op, requests)

    def close(self):
        self.inner.close()


def main() -> None:
    dataset = load_dataset("flickr-sim", scale=0.3)
    print("deployment graph:", dataset.summary())

    backbone = SGC(dataset.num_features, dataset.num_classes, depth=3, rng=7)
    nai = NAI(
        backbone,
        distillation_config=DistillationConfig(
            training=TrainingConfig(epochs=40, lr=0.05, patience=15)
        ),
        train_gates=False,
        rng=7,
    ).fit(dataset)
    predictor = nai.build_predictor(
        policy="distance",
        config=nai.inference_config(
            t_min=1,
            t_max=3,
            distance_threshold=nai.suggest_distance_threshold(0.5),
            batch_size=32,
        ),
    )
    predictor.prepare(dataset.graph, dataset.features)

    shard_config = ShardConfig(num_shards=NUM_SHARDS, strategy="degree_balanced")
    plan0 = GraphPartitioner(shard_config).partition(dataset.graph)
    hot = int(np.argmax(plan0.shard_sizes()))
    print(f"hot shard: {hot} (+{HOT_DELAY * 1e3:.0f}ms per feature round)")

    def build(plan):
        """Prepare a generation of the fleet under ``plan``'s replica map."""

        def rails(store):
            return [
                ShardDelayTransport(
                    LocalTransport(store.shards), {hot: HOT_DELAY}
                ),
                LocalTransport(store.shards),
            ][: plan.max_replication]

        return (
            ClusterBuilder(ShardedPredictor.from_predictor(predictor))
            .graph(dataset.graph, dataset.features)
            .shards(NUM_SHARDS)
            .plan(plan)
            .replicated(rails, route_by="latency")
            .build_predictor()
        )

    # 80% of requests target the hot shard's owned nodes.
    rng = np.random.default_rng(7)
    batches = [
        rng.choice(
            plan0.owned[
                hot if rng.random() < 0.8 else int(rng.integers(0, NUM_SHARDS))
            ],
            size=8,
            replace=False,
        )
        for _ in range(NUM_REQUESTS)
    ]

    fake = FakeClock()
    registry = MetricsRegistry()
    router = ShardRouter(
        build(plan0),
        ServingConfig(
            num_workers=2, max_batch_size=32, max_wait_ms=0.5, cache_capacity=0
        ),
        registry=registry,
    )
    monitor = HealthMonitor(
        router,
        MonitorConfig(window_seconds=60.0, num_buckets=12, cadence_seconds=1.0),
        clock=fake,
        registry=registry,
    )
    sink = MemoryAlertSink()
    engine = SLOEngine(
        [
            SLO(
                name="latency",
                objective="latency",
                threshold_seconds=SLO_THRESHOLD,
                budget_fraction=0.05,
                fast_window_seconds=60.0,
                slow_window_seconds=3600.0,
                for_seconds=0.0,
                resolve_after_seconds=30.0,
                min_events=8,
            )
        ],
        sinks=[sink],
        clock=fake,
    )
    auto = AutoRebalancer(
        router,
        RebalanceAdvisor(
            base_replication=1, boost=1, hot_fraction=0.25, max_rails=2
        ),
        build,
        monitor=monitor,
        cooldown_seconds=10_000.0,
        clock=fake,
    )
    engine.add_sink(auto)

    print(f"\nserving {NUM_REQUESTS} skewed requests "
          "(1 virtual second per request)...")
    last_state = engine.state_of("latency")
    with router:
        for index, batch in enumerate(batches):
            router.submit(batch, timeout=60.0).result(timeout=60.0)
            fake.advance(1.0)
            health = monitor.tick()
            engine.tick(health)
            state = engine.state_of("latency")
            if state != last_state:
                burn_fast, burn_slow = engine.burn_rates("latency")
                print(
                    f"  t={fake.now():5.0f}s  latency SLO {last_state} -> "
                    f"{state}  (burn {burn_fast:.1f}x/{burn_slow:.1f}x, "
                    f"windowed p95 {health.latency.p95 * 1e3:.1f}ms)"
                )
                last_state = state
            if auto.installs and "install" not in locals():
                (install,) = (h for h in auto.history if "version" in h)
                print(
                    f"  t={fake.now():5.0f}s  installed plan v"
                    f"{install['version']} (reason {install['reason']}): "
                    f"boosted {install['diff']['boosted']}"
                )
        rollout = router.rollout_state()
        router.finish_rollout(timeout=60.0)
        final = monitor.tick()

        print("\nrollout accounting (per generation):")
        for row in rollout:
            print(
                f"  v{row['version']}: routed {row['requests_routed']}, "
                f"completed {row['requests_completed']}, "
                f"failed {row['requests_failed']}"
            )
        print(
            f"final windowed p95: {final.latency.p95 * 1e3:.2f}ms "
            f"(SLO threshold {SLO_THRESHOLD * 1e3:.0f}ms)"
        )
        print(f"alert lifecycle: {' -> '.join(sink.states('latency'))}")
        print(
            "hot-shard heat ranking:",
            final.hottest_shards(),
            " installs:",
            int(registry.counter("repro_rebalance_installs_total").value),
            " active plan version:",
            int(registry.gauge("repro_rebalance_last_version").value),
        )


if __name__ == "__main__":
    main()
