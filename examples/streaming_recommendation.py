"""Streaming session recommendation: classify items as they appear.

Recommender systems for streaming sessions must score user-item interaction
graphs in real time (one of the motivating applications in the paper's
introduction).  This example simulates a stream of previously unseen items
joining an item-item co-interaction graph:

* the catalogue graph is arxiv-sim (standing in for an item graph with many
  categories),
* unseen items arrive one mini-batch per "session tick",
* each tick must be answered before the next arrives, so we track the
  per-tick latency and the running accuracy of the adaptive policy against
  the vanilla model, and report how many propagation hops each item needed.

Run with::

    python examples/streaming_recommendation.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import NAI, SGC, load_dataset
from repro.core import DistillationConfig, GateTrainingConfig, TrainingConfig


def main() -> None:
    dataset = load_dataset("arxiv-sim", scale=0.5)
    print("item catalogue:", dataset.summary())

    backbone = SGC(
        dataset.num_features, dataset.num_classes, depth=4, dropout=0.1, rng=2
    )
    nai = NAI(
        backbone,
        distillation_config=DistillationConfig(
            training=TrainingConfig(epochs=100, lr=0.05, weight_decay=1e-4)
        ),
        gate_config=GateTrainingConfig(epochs=40, lr=0.05),
        rng=2,
    ).fit(dataset)

    # Deploy once; the predictor caches the normalized adjacency and the
    # stationary state of the full (inference-time) graph.
    adaptive = nai.build_predictor(
        policy="distance",
        config=nai.inference_config(
            distance_threshold=nai.suggest_distance_threshold(0.5), batch_size=64
        ),
    ).prepare(dataset.graph, dataset.features)
    vanilla = nai.build_predictor(
        policy="none", config=nai.inference_config(batch_size=64)
    ).prepare(dataset.graph, dataset.features)

    stream = np.array_split(
        np.random.default_rng(3).permutation(dataset.split.test_idx), 8
    )
    print(f"\nstreaming {sum(len(s) for s in stream)} unseen items over {len(stream)} ticks")
    print(f"{'tick':>4} {'items':>6} {'adaptive ms':>12} {'vanilla ms':>11} "
          f"{'adaptive ACC':>13} {'vanilla ACC':>12}  hops used")

    totals = {"adaptive_correct": 0, "vanilla_correct": 0, "items": 0}
    for tick, batch in enumerate(stream, start=1):
        start = time.perf_counter()
        adaptive_result = adaptive.predict(batch)
        adaptive_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        vanilla_result = vanilla.predict(batch)
        vanilla_ms = (time.perf_counter() - start) * 1e3

        labels = dataset.labels[batch]
        adaptive_acc = (adaptive_result.predictions == labels).mean()
        vanilla_acc = (vanilla_result.predictions == labels).mean()
        totals["adaptive_correct"] += int((adaptive_result.predictions == labels).sum())
        totals["vanilla_correct"] += int((vanilla_result.predictions == labels).sum())
        totals["items"] += batch.shape[0]

        print(
            f"{tick:>4} {batch.shape[0]:>6} {adaptive_ms:>12.2f} {vanilla_ms:>11.2f} "
            f"{adaptive_acc:>13.3f} {vanilla_acc:>12.3f}  {adaptive_result.depth_distribution()}"
        )

    print(
        f"\nrunning accuracy — adaptive: {totals['adaptive_correct'] / totals['items']:.4f}, "
        f"vanilla: {totals['vanilla_correct'] / totals['items']:.4f}"
    )
    print("adaptive inference answered every tick with fewer propagation hops on average,")
    print("freeing latency budget for the rest of the recommendation stack.")


if __name__ == "__main__":
    main()
