"""Streaming session recommendation served through the online subsystem.

Recommender systems for streaming sessions must score user-item interaction
graphs in real time (one of the motivating applications in the paper's
introduction).  This example simulates a stream of previously unseen items
joining an item-item co-interaction graph — and serves it with
:class:`repro.serving.InferenceServer` instead of calling the predictor by
hand:

* the catalogue graph is arxiv-sim (standing in for an item graph with many
  categories),
* session ticks arrive as requests; popular sessions *recur*, so the
  server's supporting-subgraph cache starts absorbing the sampling cost
  after the first visit,
* a 4-worker pool with dynamic micro-batching answers each tick, and the
  serving stats surface reports what an operator would watch: throughput,
  p50/p95/p99 latency, cache hit rate and queue depth.

Run with::

    python examples/streaming_recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro import NAI, SGC, load_dataset
from repro.core import (
    DistillationConfig,
    GateTrainingConfig,
    ServingConfig,
    TrainingConfig,
)
from repro.graph.sampling import batch_iterator
from repro.serving import InferenceServer


def main() -> None:
    dataset = load_dataset("arxiv-sim", scale=0.5)
    print("item catalogue:", dataset.summary())

    backbone = SGC(
        dataset.num_features, dataset.num_classes, depth=4, dropout=0.1, rng=2
    )
    nai = NAI(
        backbone,
        distillation_config=DistillationConfig(
            training=TrainingConfig(epochs=100, lr=0.05, weight_decay=1e-4)
        ),
        gate_config=GateTrainingConfig(epochs=40, lr=0.05),
        rng=2,
    ).fit(dataset)

    # Deploy once; the predictor caches the normalized adjacency and the
    # stationary state of the full (inference-time) graph.
    predictor = nai.build_predictor(
        policy="distance",
        config=nai.inference_config(
            distance_threshold=nai.suggest_distance_threshold(0.5), batch_size=64
        ),
    ).prepare(dataset.graph, dataset.features)

    # A pool of recurring sessions: each tick replays one of 6 session
    # batches, the way hot queries and returning users repeat in production.
    rng = np.random.default_rng(3)
    sessions = batch_iterator(rng.permutation(dataset.split.test_idx), 64)[:6]
    ticks = list(sessions)
    ticks += [sessions[int(i)] for i in rng.integers(0, len(sessions), size=18)]

    serving = ServingConfig(
        num_workers=4,          # each worker owns its own batch engine
        max_batch_size=64,      # one session tick per micro-batch
        max_wait_ms=1.0,        # latency budget of the dynamic batcher
        cache_capacity=16,      # supporting-subgraph LRU
        overflow_policy="block",
    )
    print(f"\nstreaming {len(ticks)} session ticks ({len(sessions)} distinct sessions)")
    print(f"{'tick':>4} {'items':>6} {'latency ms':>11} {'cache':>6} "
          f"{'worker':>7}  hops used")

    correct = 0
    total = 0
    with InferenceServer(predictor, serving) as server:
        for tick, batch in enumerate(ticks, start=1):
            response = server.submit(batch).result(timeout=60.0)
            labels = dataset.labels[batch]
            correct += int((response.predictions == labels).sum())
            total += batch.shape[0]
            depth_counts = np.bincount(response.depths)[1:]
            print(
                f"{tick:>4} {batch.shape[0]:>6} "
                f"{response.latency_seconds * 1e3:>11.2f} "
                f"{'hit' if response.cache_hit else 'miss':>6} "
                f"{response.worker_id:>7}  {[int(c) for c in depth_counts]}"
            )
        stats = server.stats()

    latency = stats.latency.scaled(1e3)
    print(f"\nrunning accuracy: {correct / total:.4f}")
    print(
        f"throughput: {stats.throughput_nodes_per_second:,.0f} items/s over "
        f"{stats.batches_dispatched} micro-batches on "
        f"{len(stats.per_worker)} workers"
    )
    print(
        f"latency ms: p50 {latency.p50:.2f}  p95 {latency.p95:.2f}  "
        f"p99 {latency.p99:.2f}  max {latency.max:.2f}"
    )
    print(
        f"subgraph cache: {stats.cache_hit_rate:.0%} hit rate "
        f"({stats.cache_hits} hits / {stats.cache_misses} misses, "
        f"{stats.cache_entries} entries) — recurring sessions skip sampling, "
        f"total sampling time {stats.timings.sampling * 1e3:.1f} ms"
    )
    print("every tick after a session's first visit reuses its supporting")
    print("subgraph, freeing latency budget for the rest of the stack.")


if __name__ == "__main__":
    main()
