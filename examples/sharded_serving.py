"""Sharding a deployment whose graph state outgrows one worker.

The online predictor holds O(n) state — adjacency, normalized adjacency,
features and the stationary degree vector.  This example takes the paper's
serving scenario past the single-process ceiling with ``repro.shard``:

* the deployment is partitioned into 4 degree-balanced shards, each holding
  its owned rows plus halo (ghost) maps — roughly 1/4 of the unsharded
  state per shard;
* offline, ``ShardedPredictor.predict`` is checked **bit-identical**
  (predictions, depths, MAC totals) to the unsharded predictor — the
  accuracy/MAC claims of the paper survive sharding untouched;
* online, a ``ShardRouter`` fronts one ``InferenceServer`` worker group per
  shard, routing each request to the owners of its nodes and merging the
  per-shard stats into a fleet view;
* the store's traffic counters show the cross-shard halo fetches a
  networked deployment would pay.

Run with::

    python examples/sharded_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import NAI, SGC, load_dataset
from repro.core import (
    DistillationConfig,
    ServingConfig,
    TrainingConfig,
)
from repro.graph.sampling import batch_iterator
from repro.serving import ClusterBuilder
from repro.shard import ShardedPredictor


def main() -> None:
    dataset = load_dataset("products-sim", scale=0.5)
    print("deployment graph:", dataset.summary())

    backbone = SGC(dataset.num_features, dataset.num_classes, depth=4, rng=3)
    nai = NAI(
        backbone,
        distillation_config=DistillationConfig(
            training=TrainingConfig(epochs=80, lr=0.05, weight_decay=1e-4)
        ),
        train_gates=False,
        rng=3,
    ).fit(dataset)

    predictor = nai.build_predictor(
        policy="distance",
        config=nai.inference_config(
            distance_threshold=nai.suggest_distance_threshold(0.5), batch_size=100
        ),
    )
    predictor.prepare(dataset.graph, dataset.features)
    test_idx = dataset.split.test_idx
    baseline = predictor.predict(test_idx)

    # ------------------------------------------------------------------ #
    # Partition into 4 shards and verify nothing moved.
    # ------------------------------------------------------------------ #
    sharded = (
        ClusterBuilder(ShardedPredictor.from_predictor(predictor))
        .graph(dataset.graph, dataset.features)
        .shards(4, strategy="degree_balanced")
        .build_predictor()
    )
    result = sharded.predict(test_idx)
    assert np.array_equal(result.predictions, baseline.predictions)
    assert np.array_equal(result.depths, baseline.depths)
    assert result.macs.total == baseline.macs.total
    print("\nsharded predict: bit-identical predictions, depths and MAC totals")

    memory = sharded.store.memory_report()
    for entry in memory["per_shard"]:
        print(
            f"  shard {entry['shard']}: {entry['owned_nodes']:4d} owned "
            f"+ {entry['halo_nodes']:4d} halo nodes, "
            f"{entry['nbytes'] / 1024:7.1f} KiB"
        )
    print(f"  largest shard holds {memory['max_shard_nbytes'] / 1024:.1f} KiB")

    # ------------------------------------------------------------------ #
    # Serve through the router: one worker group per shard.
    # ------------------------------------------------------------------ #
    requests = batch_iterator(
        np.random.default_rng(0).permutation(test_idx), 25
    )
    serving = ServingConfig(num_workers=2, max_batch_size=100, max_wait_ms=2.0)
    with ClusterBuilder(sharded).serving(serving).build() as cluster:
        responses = cluster.predict_many(requests, timeout=120.0)
        stats = cluster.stats()

    routed = np.concatenate([r.predictions for r in responses])
    ordered = np.concatenate(requests)
    reference = {int(n): p for n, p in zip(test_idx, baseline.predictions)}
    assert all(routed[i] == reference[int(n)] for i, n in enumerate(ordered))
    mixed = sum(1 for r in responses if r.num_shards_touched > 1)
    print(
        f"\nrouted serving: {stats.requests_completed} sub-requests over "
        f"{stats.num_shards} shards ({mixed}/{len(responses)} requests fanned out)"
    )
    print(
        "  per-shard nodes:",
        {k: s.nodes_completed for k, s in sorted(stats.per_shard.items())},
    )
    print(f"  fleet p99 latency: {stats.latency.p99 * 1e3:.2f} ms")

    traffic = sharded.store.traffic.as_dict()
    print(
        f"  halo traffic: {traffic['adjacency_rows_remote']} remote row fetches "
        f"({traffic['remote_row_fraction']:.0%} of fetched rows)"
    )


if __name__ == "__main__":
    main()
