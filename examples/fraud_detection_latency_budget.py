"""Latency-constrained fraud detection with node-adaptive inference.

The paper motivates NAI with latency-sensitive industrial workloads such as
fraud and spam detection, where millisecond-level decisions must be made for
*new* accounts (unseen nodes) joining a large transaction graph.  This
example simulates that scenario:

* the "transaction graph" is the products-sim synthetic graph (the densest
  and largest of the built-in datasets, playing the role of a million-scale
  industrial graph),
* new accounts arrive in small batches and must be classified online,
* the service has a per-node latency budget; we sweep the NAI threshold to
  find the fastest operating point that still meets an accuracy floor,
  demonstrating how the ``T_s`` / ``T_max`` knobs let one trained model serve
  several latency tiers.

Run with::

    python examples/fraud_detection_latency_budget.py
"""

from __future__ import annotations

import numpy as np

from repro import NAI, SGC, load_dataset
from repro.core import DistillationConfig, GateTrainingConfig, TrainingConfig


def train_pipeline(dataset) -> NAI:
    """Train the detection model on the historical (observed) subgraph."""
    backbone = SGC(
        dataset.num_features, dataset.num_classes, depth=4, dropout=0.1, rng=1
    )
    return NAI(
        backbone,
        distillation_config=DistillationConfig(
            training=TrainingConfig(epochs=100, lr=0.05, weight_decay=1e-4)
        ),
        gate_config=GateTrainingConfig(epochs=40, lr=0.05),
        rng=1,
    ).fit(dataset)


def main() -> None:
    dataset = load_dataset("products-sim", scale=0.6)
    print("transaction graph:", dataset.summary())
    nai = train_pipeline(dataset)

    # New accounts arrive in small batches; the fraud service scores each
    # batch online.  We evaluate a range of NAI operating points.
    new_accounts = dataset.split.test_idx
    rng = np.random.default_rng(0)
    arrival_order = rng.permutation(new_accounts)
    print(f"\nscoring {arrival_order.shape[0]} new accounts in batches of 100")

    operating_points = {
        "accuracy-first (no early exit)": ("none", nai.inference_config(batch_size=100)),
        "balanced (T_s @ q=0.45)": (
            "distance",
            nai.inference_config(
                distance_threshold=nai.suggest_distance_threshold(0.45), batch_size=100
            ),
        ),
        "speed-first (T_s @ q=0.8, T_max=2)": (
            "distance",
            nai.inference_config(
                t_max=2,
                distance_threshold=nai.suggest_distance_threshold(0.8),
                batch_size=100,
            ),
        ),
        "gate-based": ("gate", nai.inference_config(batch_size=100)),
    }

    accuracy_floor = 0.75
    print(f"\n{'operating point':<36} {'ACC':>7} {'ms/node':>9} {'avg depth':>10}  meets floor?")
    best = None
    for label, (policy, config) in operating_points.items():
        result = nai.evaluate(dataset, policy=policy, config=config, node_ids=arrival_order)
        accuracy = result.accuracy(dataset.labels)
        latency = result.time_per_node() * 1e3
        meets = accuracy >= accuracy_floor
        print(
            f"{label:<36} {accuracy:>7.4f} {latency:>9.3f} {result.average_depth():>10.2f}  "
            f"{'yes' if meets else 'no'}"
        )
        if meets and (best is None or latency < best[1]):
            best = (label, latency)

    if best is not None:
        print(
            f"\nfastest operating point meeting the {accuracy_floor:.0%} accuracy floor: "
            f"{best[0]} ({best[1]:.3f} ms/node)"
        )
    else:
        print("\nno operating point met the accuracy floor — raise T_max or lower T_s")


if __name__ == "__main__":
    main()
