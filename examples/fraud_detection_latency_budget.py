"""Latency-constrained fraud detection on the online serving subsystem.

The paper motivates NAI with latency-sensitive industrial workloads such as
fraud and spam detection, where millisecond-level decisions must be made for
*new* accounts (unseen nodes) joining a large transaction graph.  This
example simulates that scenario end to end:

* the "transaction graph" is the products-sim synthetic graph (the densest
  and largest of the built-in datasets),
* new accounts arrive as **individual requests** at a paced rate (~70% of
  each tier's calibrated capacity, so latency reflects batching and compute
  rather than an unbounded backlog); the dynamic micro-batcher coalesces
  them under a latency budget and a 4-worker pool scores the micro-batches,
* the NAI operating point (``T_s`` / ``T_max``) is swept to find the
  fastest configuration that still meets an accuracy floor — one trained
  model serving several latency tiers behind one queue.

Run with::

    python examples/fraud_detection_latency_budget.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import NAI, SGC, load_dataset
from repro.core import (
    DistillationConfig,
    GateTrainingConfig,
    ServingConfig,
    TrainingConfig,
)
from repro.serving import InferenceServer


def train_pipeline(dataset) -> NAI:
    """Train the detection model on the historical (observed) subgraph."""
    backbone = SGC(
        dataset.num_features, dataset.num_classes, depth=4, dropout=0.1, rng=1
    )
    return NAI(
        backbone,
        distillation_config=DistillationConfig(
            training=TrainingConfig(epochs=100, lr=0.05, weight_decay=1e-4)
        ),
        gate_config=GateTrainingConfig(epochs=40, lr=0.05),
        rng=1,
    ).fit(dataset)


def main() -> None:
    dataset = load_dataset("products-sim", scale=0.6)
    print("transaction graph:", dataset.summary())
    nai = train_pipeline(dataset)

    # New accounts arrive one by one; the micro-batcher coalesces them into
    # batches of up to 64 accounts or 3 ms of waiting, whichever comes first.
    rng = np.random.default_rng(0)
    arrivals = rng.permutation(dataset.split.test_idx)[:512]
    serving = ServingConfig(
        num_workers=4,
        max_batch_size=64,
        max_wait_ms=3.0,
        queue_capacity=1024,
        overflow_policy="block",
        cache_capacity=0,  # arrivals never repeat — caching cannot help here
    )
    print(
        f"\nscoring {arrivals.shape[0]} new accounts as single-account requests "
        f"(coalesced up to {serving.max_batch_size}/{serving.max_wait_ms:.0f}ms)"
    )

    operating_points = {
        "accuracy-first (no early exit)": ("none", nai.inference_config()),
        "balanced (T_s @ q=0.45)": (
            "distance",
            nai.inference_config(
                distance_threshold=nai.suggest_distance_threshold(0.45)
            ),
        ),
        "speed-first (T_s @ q=0.8, T_max=2)": (
            "distance",
            nai.inference_config(
                t_max=2,
                distance_threshold=nai.suggest_distance_threshold(0.8),
            ),
        ),
        "gate-based": ("gate", nai.inference_config()),
    }

    accuracy_floor = 0.75
    print(
        f"\n{'operating point':<36} {'ACC':>7} {'p50 ms':>8} {'p95 ms':>8} "
        f"{'p99 ms':>8} {'acct/s':>9}  meets floor?"
    )
    best = None
    for label, (policy, config) in operating_points.items():
        predictor = nai.build_predictor(policy=policy, config=config)
        predictor.prepare(dataset.graph, dataset.features)

        # Calibrate this tier's capacity, then pace arrivals at ~70% of it so
        # the measured latency is batching + compute, not backlog.
        calibration = arrivals[:128]
        start = time.perf_counter()
        predictor.predict(calibration)
        capacity = calibration.shape[0] / (time.perf_counter() - start)
        chunk, rate = 8, 0.7 * capacity

        with InferenceServer(predictor, serving) as server:
            handles = []
            for i in range(0, arrivals.shape[0], chunk):
                for j in range(i, min(i + chunk, arrivals.shape[0])):
                    handles.append(server.submit(arrivals[j:j + 1]))
                time.sleep(chunk / rate)
            responses = [handle.result(timeout=120.0) for handle in handles]
            stats = server.stats()
        predictions = np.concatenate([r.predictions for r in responses])
        accuracy = float((predictions == dataset.labels[arrivals]).mean())
        latency = stats.latency.scaled(1e3)
        meets = accuracy >= accuracy_floor
        print(
            f"{label:<36} {accuracy:>7.4f} {latency.p50:>8.2f} {latency.p95:>8.2f} "
            f"{latency.p99:>8.2f} {stats.throughput_nodes_per_second:>9,.0f}  "
            f"{'yes' if meets else 'no'}"
        )
        if meets and (best is None or latency.p95 < best[1]):
            best = (label, latency.p95)

    if best is not None:
        print(
            f"\nfastest operating point meeting the {accuracy_floor:.0%} accuracy "
            f"floor: {best[0]} (p95 {best[1]:.2f} ms per account)"
        )
    else:
        print("\nno operating point met the accuracy floor — raise T_max or lower T_s")
    print("micro-batching shares supporting subgraphs across coalesced accounts,")
    print("so per-account cost falls while every prediction stays identical to a")
    print("dedicated predict() call.")


if __name__ == "__main__":
    main()
