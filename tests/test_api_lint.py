"""Source lint: no new calls to the deprecated store mutators.

``ShardedGraphStore.use_transport`` / ``use_replicated_transport`` /
``use_tiered_features`` / ``use_tracer`` are :class:`DeprecationWarning`
shims kept for external callers — fleet configuration goes through
:class:`repro.serving.ClusterBuilder` (or the internal ``_set_*``
setters).  This lint walks ``src/`` and ``examples/`` so a new direct
call cannot land silently; tests and benchmarks are exempt, since the
shims themselves need exercising.

``ShardTransport.use_tracer`` is a different, fully supported surface —
the patterns below anchor on a ``store`` receiver (or the two methods
that exist only on the store) to leave it alone.
"""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SCANNED_DIRS = ("src", "examples")

#: Each pattern matches a *call* through the deprecated store surface.
#: ``use_replicated_transport``/``use_tiered_features`` exist only on the
#: store, so any attribute call is deprecated; ``use_transport``/
#: ``use_tracer`` also live on other types (the predictor's supported
#: backend-swap hook, the transport tracer hook), so those anchor on a
#: ``store`` receiver.
DEPRECATED_CALLS = (
    re.compile(r"\.use_replicated_transport\s*\("),
    re.compile(r"\.use_tiered_features\s*\("),
    re.compile(r"store\s*\.\s*use_transport\s*\("),
    re.compile(r"store\s*\.\s*use_tracer\s*\("),
)

#: The shims themselves delegate internally; their defining module is the
#: one place the names may appear in call position.
ALLOWED_FILES = frozenset({"src/repro/shard/store.py"})


def deprecated_call_sites() -> list[str]:
    findings = []
    for directory in SCANNED_DIRS:
        for path in sorted((REPO_ROOT / directory).rglob("*.py")):
            relative = path.relative_to(REPO_ROOT).as_posix()
            if relative in ALLOWED_FILES:
                continue
            for number, line in enumerate(path.read_text().splitlines(), 1):
                stripped = line.split("#", 1)[0]
                if any(pattern.search(stripped) for pattern in DEPRECATED_CALLS):
                    findings.append(f"{relative}:{number}: {line.strip()}")
    return findings


def test_no_new_calls_to_deprecated_store_mutators():
    findings = deprecated_call_sites()
    assert not findings, (
        "direct calls to deprecated ShardedGraphStore mutators (migrate to "
        "repro.serving.ClusterBuilder):\n" + "\n".join(findings)
    )
