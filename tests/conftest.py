"""Shared fixtures for the test suite.

Training even a tiny NAI pipeline takes a couple hundred milliseconds, so the
expensive fixtures are session-scoped and shared: tests that only *read* the
trained models reuse one instance, while tests that need to mutate state
build their own throw-away objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import NAI, SGC, load_dataset
from repro.baselines import DistillationTarget
from repro.core import DistillationConfig, GateTrainingConfig, TrainingConfig
from repro.core.training import predict_logits
from repro.nn import Tensor, softmax


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small flickr-sim instance (a few hundred nodes) shared by most tests."""
    return load_dataset("flickr-sim", scale=0.22)


@pytest.fixture(scope="session")
def tiny_backbone(tiny_dataset):
    return SGC(tiny_dataset.num_features, tiny_dataset.num_classes, depth=3, rng=7)


@pytest.fixture(scope="session")
def trained_nai(tiny_dataset, tiny_backbone):
    """An NAI pipeline trained with a reduced budget (shared, read-only)."""
    pipeline = NAI(
        tiny_backbone,
        distillation_config=DistillationConfig(
            training=TrainingConfig(epochs=40, lr=0.05, patience=15)
        ),
        gate_config=GateTrainingConfig(epochs=25, lr=0.05),
        rng=7,
    )
    return pipeline.fit(tiny_dataset)


@pytest.fixture(scope="session")
def teacher_target(tiny_dataset, tiny_backbone, trained_nai):
    """Soft teacher predictions of the deepest classifier over observed nodes."""
    partition = tiny_dataset.partition()
    propagated = tiny_backbone.precompute(
        partition.train_graph, tiny_dataset.observed_features()
    )
    logits = predict_logits(trained_nai.classifiers[-1], propagated)
    return DistillationTarget(softmax(Tensor(logits), axis=1).data, temperature=1.0)
