"""End-to-end integration tests: the full NAI workflow on a small dataset.

These tests exercise the public API exactly the way the examples and the
benchmark harness do: load a dataset, train the pipeline, deploy predictors
with different policies and compare accuracy / cost, and run a baseline next
to it.
"""

import numpy as np

from repro import NAI, SGC, SIGN, load_dataset
from repro.baselines import GLNN, DistillationTarget
from repro.core import DistillationConfig, GateTrainingConfig, TrainingConfig
from repro.core.training import predict_logits
from repro.nn import Tensor, softmax


class TestFullPipelineSGC:
    def test_train_deploy_and_compare_policies(self, trained_nai, tiny_dataset):
        vanilla = trained_nai.evaluate(tiny_dataset, policy="none")
        threshold = trained_nai.suggest_distance_threshold(0.6)
        adaptive = trained_nai.evaluate(
            tiny_dataset,
            policy="distance",
            config=trained_nai.inference_config(distance_threshold=threshold),
        )
        gate = trained_nai.evaluate(tiny_dataset, policy="gate")

        # The paper's headline: adaptive inference saves computation while
        # keeping accuracy in the same ballpark as the vanilla model.
        assert adaptive.macs.total < vanilla.macs.total
        assert gate.macs.total <= vanilla.macs.total
        assert adaptive.accuracy(tiny_dataset.labels) > 0.55
        assert vanilla.accuracy(tiny_dataset.labels) > 0.65

    def test_accuracy_latency_tradeoff_is_monotone_in_threshold(
        self, trained_nai, tiny_dataset
    ):
        """More aggressive thresholds never increase the average depth."""
        depths = []
        for quantile in (0.2, 0.5, 0.9):
            threshold = trained_nai.suggest_distance_threshold(quantile)
            result = trained_nai.evaluate(
                tiny_dataset,
                policy="distance",
                config=trained_nai.inference_config(distance_threshold=threshold),
            )
            depths.append(result.average_depth())
        assert depths[0] >= depths[1] >= depths[2]

    def test_distillation_target_feeds_baseline(self, trained_nai, tiny_dataset):
        partition = tiny_dataset.partition()
        propagated = trained_nai.backbone.precompute(
            partition.train_graph, tiny_dataset.observed_features()
        )
        logits = predict_logits(trained_nai.classifiers[-1], propagated)
        teacher = DistillationTarget(softmax(Tensor(logits), axis=1).data)
        student = GLNN(rng=0, epochs=20).fit(tiny_dataset, teacher)
        result = student.evaluate(tiny_dataset)
        assert result.num_nodes == tiny_dataset.split.num_test


class TestFullPipelineOtherBackbone:
    def test_sign_backbone_end_to_end(self):
        dataset = load_dataset("arxiv-sim", scale=0.15)
        backbone = SIGN(
            dataset.num_features, dataset.num_classes, depth=2, transform_dim=16, rng=0
        )
        pipeline = NAI(
            backbone,
            distillation_config=DistillationConfig(
                training=TrainingConfig(epochs=25, lr=0.05, patience=10)
            ),
            gate_config=GateTrainingConfig(epochs=10, lr=0.05),
            rng=0,
        ).fit(dataset)
        result = pipeline.evaluate(
            dataset,
            policy="distance",
            config=pipeline.inference_config(
                distance_threshold=pipeline.suggest_distance_threshold(0.5)
            ),
        )
        assert result.accuracy(dataset.labels) > 1.5 / dataset.num_classes
        assert result.num_nodes == dataset.split.num_test


class TestReproducibility:
    def test_same_seed_same_results(self):
        dataset = load_dataset("flickr-sim", scale=0.15)

        def build():
            backbone = SGC(dataset.num_features, dataset.num_classes, depth=2, rng=3)
            pipeline = NAI(
                backbone,
                distillation_config=DistillationConfig(
                    training=TrainingConfig(epochs=15, lr=0.05)
                ),
                train_gates=False,
                rng=3,
            ).fit(dataset)
            return pipeline.evaluate(dataset, policy="none").predictions

        assert np.array_equal(build(), build())
