"""Property-based tests (hypothesis) over graph invariants used by NAI."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DistanceNAP, compute_stationary_state
from repro.graph import (
    CSRGraph,
    k_hop_neighborhood,
    normalized_adjacency,
    propagate_features,
)


@st.composite
def random_graphs(draw, max_nodes=24):
    """Random connected-ish undirected graphs with at least a spanning chain."""
    num_nodes = draw(st.integers(min_value=3, max_value=max_nodes))
    chain = [(i, i + 1) for i in range(num_nodes - 1)]
    extra_count = draw(st.integers(min_value=0, max_value=2 * num_nodes))
    extras = [
        (
            draw(st.integers(0, num_nodes - 1)),
            draw(st.integers(0, num_nodes - 1)),
        )
        for _ in range(extra_count)
    ]
    edges = [(a, b) for a, b in chain + extras if a != b]
    return CSRGraph.from_edges(edges, num_nodes=num_nodes)


@settings(max_examples=30, deadline=None)
@given(random_graphs(), st.floats(min_value=0.0, max_value=1.0))
def test_normalized_adjacency_spectral_radius_bounded(graph, gamma):
    a_hat = normalized_adjacency(graph, gamma=gamma).toarray()
    eigenvalues = np.linalg.eigvals(a_hat)
    assert np.max(np.abs(eigenvalues)) <= 1.0 + 1e-8


@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_propagation_converges_toward_stationary_state(graph):
    """‖Â^k X − X^∞‖ is (much) smaller at large k than at k=0 (Eq. 6)."""
    rng = np.random.default_rng(0)
    features = rng.normal(size=(graph.num_nodes, 3))
    propagated = propagate_features(graph, features, 40)
    stationary = compute_stationary_state(graph, features).features_for()
    start = np.linalg.norm(propagated[0] - stationary)
    # Use the average of two consecutive depths to dodge bipartite oscillation.
    end = np.linalg.norm((propagated[40] + propagated[39]) / 2 - stationary)
    assert end <= start + 1e-9


@settings(max_examples=30, deadline=None)
@given(random_graphs(), st.integers(min_value=0, max_value=4))
def test_k_hop_neighborhood_is_monotone_in_depth(graph, depth):
    targets = np.array([0])
    smaller = k_hop_neighborhood(graph, targets, depth).num_supporting_nodes
    larger = k_hop_neighborhood(graph, targets, depth + 1).num_supporting_nodes
    assert smaller <= larger


@settings(max_examples=30, deadline=None)
@given(random_graphs(), st.floats(min_value=0.01, max_value=5.0))
def test_personalised_depths_monotone_in_threshold(graph, threshold):
    rng = np.random.default_rng(1)
    features = rng.normal(size=(graph.num_nodes, 4))
    propagated = propagate_features(graph, features, 4)
    stationary = compute_stationary_state(graph, features).features_for()
    tight = DistanceNAP(threshold).personalised_depths(propagated, stationary, t_max=4)
    loose = DistanceNAP(threshold * 2.0).personalised_depths(propagated, stationary, t_max=4)
    assert np.all(loose <= tight)
    assert np.all(tight >= 1) and np.all(tight <= 4)


@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_propagation_preserves_constant_vector_for_row_stochastic(graph):
    constant = np.ones((graph.num_nodes, 2))
    propagated = propagate_features(graph, constant, 3, gamma="reverse")
    assert np.allclose(propagated[3], constant)


@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_supporting_subgraph_adjacency_is_submatrix(graph):
    sub = k_hop_neighborhood(graph, np.array([0]), 2)
    expected = graph.adjacency.toarray()[np.ix_(sub.node_ids, sub.node_ids)]
    assert np.allclose(sub.adjacency.toarray(), expected)
