"""TieredFeatureStore: bit-identical reads under a hard residency budget."""

import os

import numpy as np
import pytest

from repro.core import NAIConfig, ShardConfig
from repro.core.distance_nap import DistanceNAP
from repro.exceptions import ConfigurationError, GraphConstructionError
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.models import SGC
from repro.shard import ShardedPredictor, TieredFeatureRows, TieredFeatureStore


def matrix_of(num_rows=64, num_cols=6, seed=0):
    return (
        np.random.default_rng(seed)
        .normal(size=(num_rows, num_cols))
        .astype(np.float32)
    )


def budget_for(matrix, rows):
    return int(matrix.itemsize * matrix.shape[1] * rows)


class TestTieredFeatureStore:
    def test_reads_are_bit_identical_to_the_source_matrix(self):
        matrix = matrix_of()
        store = TieredFeatureStore(matrix, budget_bytes=budget_for(matrix, 8))
        try:
            rng = np.random.default_rng(1)
            for _ in range(20):
                rows = rng.integers(0, matrix.shape[0], size=rng.integers(1, 30))
                np.testing.assert_array_equal(store.get_rows(rows), matrix[rows])
        finally:
            store.close()

    def test_peak_residency_never_exceeds_the_budget(self):
        matrix = matrix_of(num_rows=128)
        budget = budget_for(matrix, 10)
        store = TieredFeatureStore(matrix, budget_bytes=budget)
        try:
            rng = np.random.default_rng(2)
            for _ in range(50):  # touch far more rows than fit
                store.get_rows(rng.integers(0, 128, size=16))
            report = store.report()
        finally:
            store.close()
        assert report["capacity_rows"] == 10
        assert report["peak_resident_nbytes"] <= budget
        assert report["resident_nbytes"] <= budget
        assert report["hot_rows"] <= 10
        assert report["misses"] > 10  # the working set really overflowed

    def test_degree_bias_keeps_hub_rows_resident_through_a_scan(self):
        matrix = matrix_of(num_rows=32)
        degrees = np.zeros(32)
        degrees[:4] = 1000.0  # four hub rows
        store = TieredFeatureStore(
            matrix,
            budget_bytes=budget_for(matrix, 4),
            degrees=degrees,
            degree_weight=4.0,
        )
        try:
            hubs = np.arange(4)
            for _ in range(3):
                store.get_rows(hubs)  # warm the hubs
            store.get_rows(np.arange(4, 32))  # one full cold scan
            misses_after_scan = store.report()["misses"]
            store.get_rows(hubs)  # the hubs must still be hot
            assert store.report()["misses"] == misses_after_scan
            assert store.report()["hot_rows"] == 4
        finally:
            store.close()

    def test_unbiased_lru_would_have_lost_those_rows(self):
        """Control for the admission test: without the degree bias and with
        equal frequencies a scan displaces nothing either — admission
        requires a strictly better score — but repeated scan rows do."""
        matrix = matrix_of(num_rows=32)
        store = TieredFeatureStore(matrix, budget_bytes=budget_for(matrix, 4))
        try:
            store.get_rows(np.arange(4))       # fill: rows 0-3, freq 1 each
            scan = np.arange(4, 8)
            store.get_rows(scan)               # freq 1: ties lose, no churn
            assert store.report()["evictions"] == 0
            store.get_rows(scan)               # freq 2: now they out-score
            store.get_rows(scan)
            assert store.report()["evictions"] > 0
        finally:
            store.close()

    def test_frequencies_age_by_halving(self):
        matrix = matrix_of(num_rows=8)
        store = TieredFeatureStore(
            matrix, budget_bytes=budget_for(matrix, 2), age_period=4
        )
        try:
            store.get_rows(np.array([0, 0, 0, 0]))
            assert store._freq[0] == pytest.approx(2.0)  # halved at period
        finally:
            store.close()

    def test_close_removes_the_spill_file(self):
        matrix = matrix_of(num_rows=8)
        store = TieredFeatureStore(matrix, budget_bytes=budget_for(matrix, 2))
        path = store._path
        assert os.path.exists(path)
        store.close()
        assert not os.path.exists(path)

    def test_validation(self):
        matrix = matrix_of(num_rows=8)
        with pytest.raises(ConfigurationError, match="2-D"):
            TieredFeatureStore(matrix[0], budget_bytes=1 << 20)
        with pytest.raises(ConfigurationError, match="at least one"):
            TieredFeatureStore(matrix, budget_bytes=3)
        with pytest.raises(ConfigurationError, match="degree_weight"):
            TieredFeatureStore(
                matrix, budget_bytes=1 << 20, degree_weight=-1.0
            )
        with pytest.raises(ConfigurationError, match="entries"):
            TieredFeatureStore(
                matrix, budget_bytes=1 << 20, degrees=np.ones(3)
            )


class TestTieredFeatureRows:
    def test_proxy_mirrors_the_ndarray_surface(self):
        matrix = matrix_of(num_rows=16, num_cols=5)
        store = TieredFeatureStore(matrix, budget_bytes=budget_for(matrix, 4))
        try:
            rows = TieredFeatureRows(store)
            assert rows.shape == (16, 5)
            assert rows.ndim == 2
            assert len(rows) == 16
            assert rows.dtype == np.float32
            assert rows.itemsize == 4
            np.testing.assert_array_equal(
                rows[np.array([3, 1, 3])], matrix[np.array([3, 1, 3])]
            )
            assert rows.nbytes == store.resident_nbytes <= store.budget_bytes
        finally:
            store.close()


# ---------------------------------------------------------------------- #
# Store integration: tiering must not move a single served bit
# ---------------------------------------------------------------------- #
@pytest.fixture()
def sharded():
    spec = SyntheticGraphSpec(
        num_nodes=200, num_classes=4, avg_degree=6.0, degree_exponent=2.1
    )
    graph, _ = generate_community_graph(spec, rng=4)
    features = (
        np.random.default_rng(8).normal(size=(graph.num_nodes, 6)).astype(np.float32)
    )
    classifiers = SGC(6, 4, depth=3, rng=4).make_all_classifiers()
    predictor = ShardedPredictor(
        classifiers,
        policy=DistanceNAP(0.15),
        config=NAIConfig(t_min=1, t_max=3, batch_size=32),
    )
    return predictor.prepare(
        graph, features, ShardConfig(num_shards=2, strategy="degree_balanced")
    )


class TestStoreTiering:
    def test_tiered_serving_is_bit_identical_under_a_tight_budget(self, sharded):
        store = sharded.store
        targets = np.arange(store.num_nodes)
        oracle = sharded.predict(targets)
        full_nbytes = sum(
            np.asarray(shard.features).nbytes for shard in store.shards
        )
        store.use_tiered_features(full_nbytes // 4)  # way below the matrix
        tiered = sharded.predict(targets)
        np.testing.assert_array_equal(tiered.predictions, oracle.predictions)
        np.testing.assert_array_equal(tiered.depths, oracle.depths)
        assert tiered.macs.total == pytest.approx(oracle.macs.total, abs=1e-6)
        for tier in store.feature_tiers:
            report = tier.report()
            assert report["peak_resident_nbytes"] <= report["budget_bytes"]
            assert report["hits"] + report["misses"] > 0

    def test_memory_report_gains_tier_residency(self, sharded):
        store = sharded.store
        before = store.memory_report()
        assert "feature_tiers" not in before
        store.use_tiered_features(1 << 14)
        sharded.predict(np.arange(64))
        report = store.memory_report()
        assert len(report["feature_tiers"]) == store.num_shards
        assert report["feature_resident_nbytes"] <= report["feature_budget_bytes"]
        assert report["feature_peak_resident_nbytes"] <= report[
            "feature_budget_bytes"
        ]
        assert report["feature_cold_nbytes"] > 0

    def test_tiering_shrinks_the_shard_footprint(self, sharded):
        store = sharded.store
        before = sum(shard.nbytes for shard in store.shards)
        full_features = sum(
            np.asarray(shard.features).nbytes for shard in store.shards
        )
        store.use_tiered_features(full_features // 8)
        after = sum(shard.nbytes for shard in store.shards)
        assert after <= before - full_features + full_features // 8 + 1024

    def test_double_tiering_and_bad_budget_are_rejected(self, sharded):
        store = sharded.store
        with pytest.raises(GraphConstructionError, match="positive"):
            store.use_tiered_features(0)
        store.use_tiered_features(1 << 14)
        with pytest.raises(GraphConstructionError, match="already"):
            store.use_tiered_features(1 << 14)
