"""Property-style sharded-equivalence suite (the subsystem's core guarantee).

For random graphs and partitions, everything the paper's claims rest on —
stationary features, per-node exit depths, predictions and MAC totals — must
be **bit-identical** between the sharded deployment and the single-process
``NAIPredictor``, across 1/2/4 shards and both partition strategies.
"""

import numpy as np
import pytest

from repro.core import NAIConfig, ShardConfig, compute_stationary_state
from repro.exceptions import ConfigurationError, NotFittedError
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.shard import (
    ShardedGraphStore,
    ShardedPredictor,
    compute_sharded_stationary,
)

SHARD_COUNTS = (1, 2, 4)
STRATEGIES = ("hash", "degree_balanced")


def _random_deployment(seed, *, num_nodes=220, num_features=8, dtype=np.float32):
    spec = SyntheticGraphSpec(
        num_nodes=num_nodes, num_classes=4, avg_degree=6.0, degree_exponent=2.1
    )
    graph, _ = generate_community_graph(spec, rng=seed)
    features = (
        np.random.default_rng(seed + 1)
        .normal(size=(graph.num_nodes, num_features))
        .astype(dtype)
    )
    return graph, features


class TestShardedStationaryEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_features_for_bit_identical(self, strategy, num_shards, seed):
        graph, features = _random_deployment(seed)
        dense = compute_stationary_state(graph, features, gamma=0.5, dtype=np.float32)
        store = ShardedGraphStore.from_graph(
            graph, features,
            ShardConfig(num_shards=num_shards, strategy=strategy),
            gamma=0.5, dtype=np.float32,
        )
        sharded = compute_sharded_stationary(store)
        assert np.array_equal(
            sharded.weighted_feature_sum, dense.weighted_feature_sum
        )
        assert sharded.normalizer == dense.normalizer
        assert sharded.num_nodes == dense.num_nodes
        assert np.array_equal(sharded.features_for(), dense.features_for())
        rng = np.random.default_rng(seed)
        subset = rng.integers(0, graph.num_nodes, size=37)
        assert np.array_equal(
            sharded.features_for(subset), dense.features_for(subset)
        )
        assert np.array_equal(
            sharded.degrees_for(subset), dense.degrees_with_loops[subset]
        )

    def test_float64_deployment_also_bit_identical(self):
        graph, features = _random_deployment(3, dtype=np.float64)
        dense = compute_stationary_state(graph, features, gamma=0.5, dtype=np.float64)
        store = ShardedGraphStore.from_graph(
            graph, features, ShardConfig(num_shards=3), gamma=0.5, dtype=np.float64
        )
        sharded = compute_sharded_stationary(store)
        assert np.array_equal(
            sharded.weighted_feature_sum, dense.weighted_feature_sum
        )
        assert np.array_equal(sharded.features_for(), dense.features_for())


class TestShardedPredictorEquivalence:
    @pytest.fixture(scope="class")
    def unsharded(self, trained_nai, tiny_dataset):
        config = trained_nai.inference_config(
            t_min=1,
            t_max=3,
            distance_threshold=trained_nai.suggest_distance_threshold(0.5),
            batch_size=48,
        )
        predictor = trained_nai.build_predictor(policy="distance", config=config)
        predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
        return predictor

    @pytest.fixture(scope="class")
    def baseline(self, unsharded, tiny_dataset):
        return unsharded.predict(tiny_dataset.split.test_idx)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_predict_bit_identical(
        self, strategy, num_shards, unsharded, tiny_dataset, baseline
    ):
        sharded = ShardedPredictor.from_predictor(unsharded).prepare(
            tiny_dataset.graph,
            tiny_dataset.features,
            ShardConfig(num_shards=num_shards, strategy=strategy),
        )
        result = sharded.predict(tiny_dataset.split.test_idx)
        assert np.array_equal(result.predictions, baseline.predictions)
        assert np.array_equal(result.depths, baseline.depths)
        # MAC totals must match field by field, not just approximately: the
        # sharded path executes the very same batches over bit-identical
        # bundles and stationary inputs.
        for name in ("stationary", "propagation", "decision", "classification"):
            assert getattr(result.macs, name) == getattr(baseline.macs, name)
        assert result.macs.total == baseline.macs.total

    def test_no_early_exit_policy_also_identical(self, trained_nai, tiny_dataset):
        predictor = trained_nai.build_predictor(policy="none")
        predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
        sharded = ShardedPredictor.from_predictor(predictor).prepare(
            tiny_dataset.graph, tiny_dataset.features, ShardConfig(num_shards=2)
        )
        test_idx = tiny_dataset.split.test_idx
        base = predictor.predict(test_idx, keep_logits=True)
        mine = sharded.predict(test_idx, keep_logits=True)
        assert np.array_equal(mine.predictions, base.predictions)
        assert mine.macs.total == base.macs.total
        for node, logits in base.logits.items():
            assert np.array_equal(mine.logits[node], logits)

    def test_per_shard_memory_scales_down(self, unsharded, tiny_dataset):
        footprints = {}
        for num_shards in (1, 4):
            sharded = ShardedPredictor.from_predictor(unsharded).prepare(
                tiny_dataset.graph,
                tiny_dataset.features,
                ShardConfig(num_shards=num_shards, strategy="degree_balanced"),
            )
            footprints[num_shards] = sharded.store.memory_report()["max_shard_nbytes"]
        # 1/4 of the nodes plus halo: well under half the single-shard state.
        assert footprints[4] < footprints[1] * 0.5

    def test_requires_prepare(self, trained_nai):
        sharded = ShardedPredictor(trained_nai.classifiers)
        with pytest.raises(NotFittedError):
            sharded.predict(np.array([0]))

    def test_reference_engine_rejected(self, trained_nai):
        config = NAIConfig(t_min=3, t_max=3, engine="reference")
        with pytest.raises(ConfigurationError):
            ShardedPredictor(trained_nai.classifiers, config=config)

    def test_empty_batch_rejected(self, unsharded, tiny_dataset):
        sharded = ShardedPredictor.from_predictor(unsharded).prepare(
            tiny_dataset.graph, tiny_dataset.features, ShardConfig(num_shards=2)
        )
        with pytest.raises(ConfigurationError):
            sharded.predict(np.array([], dtype=np.int64))
