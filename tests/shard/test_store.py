"""Tests for the sharded graph store: blocks, halo maps, bundle assembly."""

import numpy as np
import pytest

from repro.core import ShardConfig
from repro.exceptions import GraphConstructionError
from repro.graph import normalized_adjacency
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.graph.sampling import build_support_bundle, k_hop_neighborhood
from repro.shard import ShardedGraphStore


@pytest.fixture(scope="module")
def deployment():
    spec = SyntheticGraphSpec(
        num_nodes=250, num_classes=4, avg_degree=7.0, degree_exponent=2.0
    )
    graph, _ = generate_community_graph(spec, rng=11)
    rng = np.random.default_rng(0)
    features = rng.normal(size=(graph.num_nodes, 9)).astype(np.float32)
    return graph, features


@pytest.fixture(scope="module")
def store(deployment):
    graph, features = deployment
    return ShardedGraphStore.from_graph(
        graph, features, ShardConfig(num_shards=3, strategy="hash"),
        gamma=0.5, dtype=np.float32,
    )


class TestShardBlocks:
    def test_halo_is_col_global_minus_owned(self, store):
        for shard in store.shards:
            assert np.array_equal(
                shard.halo, np.setdiff1d(shard.col_global, shard.owned)
            )
            # Local column numbering is sorted-global — load-bearing for
            # bit-identical row assembly.
            assert np.all(np.diff(shard.col_global) > 0)

    def test_normalized_rows_match_global_a_hat(self, deployment, store):
        graph, _ = deployment
        a_hat = normalized_adjacency(graph, gamma=0.5).astype(np.float32, copy=False)
        for shard in store.shards:
            for local_row in (0, shard.num_owned // 2, shard.num_owned - 1):
                node = shard.owned[local_row]
                lo, hi = shard.nrm_indptr[local_row], shard.nrm_indptr[local_row + 1]
                cols = shard.col_global[shard.nrm_indices[lo:hi]]
                glo, ghi = a_hat.indptr[node], a_hat.indptr[node + 1]
                assert np.array_equal(cols, a_hat.indices[glo:ghi])
                # Shard-local values (halo-exchanged degrees) are bit-equal
                # to the global normalized adjacency.
                assert np.array_equal(shard.nrm_data[lo:hi], a_hat.data[glo:ghi])

    def test_degrees_computed_shard_locally_match_global(self, deployment, store):
        graph, _ = deployment
        expected = graph.degrees() + 1.0
        for shard in store.shards:
            assert np.array_equal(shard.degrees_with_loops, expected[shard.owned])

    def test_features_are_owned_slices(self, deployment, store):
        _, features = deployment
        for shard in store.shards:
            assert np.array_equal(shard.features, features[shard.owned])
            assert shard.features.dtype == np.float32

    def test_memory_report_shape(self, store):
        report = store.memory_report()
        assert report["num_shards"] == 3
        assert len(report["per_shard"]) == 3
        assert report["max_shard_nbytes"] == max(
            entry["nbytes"] for entry in report["per_shard"]
        )

    def test_mismatched_features_rejected(self, deployment):
        graph, features = deployment
        with pytest.raises(GraphConstructionError):
            ShardedGraphStore.from_graph(
                graph, features[:10], ShardConfig(num_shards=2)
            )


class TestCrossShardExpansion:
    @pytest.mark.parametrize("depth", [0, 1, 3])
    def test_k_hop_matches_global(self, deployment, store, depth):
        graph, _ = deployment
        rng = np.random.default_rng(depth)
        targets = rng.choice(graph.num_nodes, size=17, replace=False)
        mine = store.k_hop_neighborhood(targets, depth)
        reference = k_hop_neighborhood(
            graph, targets, depth, include_adjacency=False
        )
        assert np.array_equal(mine.node_ids, reference.node_ids)
        assert np.array_equal(mine.hops, reference.hops)
        assert np.array_equal(mine.target_local, reference.target_local)

    def test_bundle_bit_identical_to_global(self, deployment, store):
        graph, features = deployment
        features32 = np.ascontiguousarray(features, dtype=np.float32)
        a_hat = normalized_adjacency(graph, gamma=0.5).astype(np.float32, copy=False)
        rng = np.random.default_rng(9)
        for size in (1, 13, 64):
            targets = rng.choice(graph.num_nodes, size=size, replace=False)
            mine = store.build_support_bundle(targets, 3)
            reference = build_support_bundle(graph, a_hat, features32, targets, 3)
            for name in ("indptr", "indices", "data", "local_features"):
                assert np.array_equal(getattr(mine, name), getattr(reference, name))
                assert getattr(mine, name).dtype == getattr(reference, name).dtype
            for name in ("node_ids", "target_local", "hops"):
                assert np.array_equal(
                    getattr(mine.support, name), getattr(reference.support, name)
                )
            assert mine.support.global_to_local is None

    def test_duplicate_targets_supported(self, deployment, store):
        graph, features = deployment
        a_hat = normalized_adjacency(graph, gamma=0.5).astype(np.float32, copy=False)
        targets = np.array([5, 5, 17, 5])
        mine = store.build_support_bundle(targets, 2)
        reference = build_support_bundle(
            graph, a_hat, np.ascontiguousarray(features, np.float32), targets, 2
        )
        assert np.array_equal(mine.support.target_local, reference.support.target_local)

    def test_validation_matches_global(self, store):
        with pytest.raises(GraphConstructionError):
            store.k_hop_neighborhood(np.array([], dtype=np.int64), 2)
        with pytest.raises(GraphConstructionError):
            store.k_hop_neighborhood(np.array([10**6]), 2)
        with pytest.raises(ValueError):
            store.k_hop_neighborhood(np.array([0]), -1)


class TestTraffic:
    def test_home_shard_attribution(self, deployment):
        graph, features = deployment
        store = ShardedGraphStore.from_graph(
            graph, features, ShardConfig(num_shards=2), dtype=np.float32
        )
        targets = store.shards[0].owned[:8]
        store.build_support_bundle(targets, 2, home_shard=0)
        t = store.traffic
        assert t.bundles_assembled == 1
        assert t.adjacency_rows_local + t.adjacency_rows_remote > 0
        assert t.feature_rows_local > 0  # hop-0 rows are home-owned
        # Without a home shard nothing further is attributed.
        before = t.adjacency_rows_local + t.adjacency_rows_remote
        store.build_support_bundle(targets, 2)
        after = t.adjacency_rows_local + t.adjacency_rows_remote
        assert after == before
