"""Tests for the shard router: ownership routing, fan-out, stats merging."""

import numpy as np
import pytest

from repro.core import ServingConfig, ShardConfig
from repro.exceptions import ConfigurationError, ServingError
from repro.shard import (
    ShardRouter,
    ShardedPredictor,
    merge_latency_summaries,
    merge_serving_snapshots,
)
from repro.metrics.timing import LatencySummary


@pytest.fixture(scope="module")
def unsharded(trained_nai, tiny_dataset):
    config = trained_nai.inference_config(
        t_min=1,
        t_max=3,
        distance_threshold=trained_nai.suggest_distance_threshold(0.5),
        batch_size=32,
    )
    predictor = trained_nai.build_predictor(policy="distance", config=config)
    predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
    return predictor


@pytest.fixture(scope="module")
def sharded(unsharded, tiny_dataset):
    return ShardedPredictor.from_predictor(unsharded).prepare(
        tiny_dataset.graph,
        tiny_dataset.features,
        ShardConfig(num_shards=3, strategy="degree_balanced"),
    )


SERVING = ServingConfig(
    num_workers=2, max_batch_size=32, max_wait_ms=0.5, cache_capacity=8
)


class TestRouting:
    def test_mixed_shard_requests_reassemble_in_order(
        self, sharded, unsharded, tiny_dataset
    ):
        test_idx = tiny_dataset.split.test_idx
        baseline = unsharded.predict(test_idx)
        requests = [test_idx[i:i + 11] for i in range(0, test_idx.shape[0], 11)]
        with ShardRouter(sharded, SERVING) as router:
            responses = router.predict_many(requests, timeout=300.0)
            stats = router.stats()
        got_predictions = np.concatenate([r.predictions for r in responses])
        got_depths = np.concatenate([r.depths for r in responses])
        assert np.array_equal(got_predictions, baseline.predictions)
        assert np.array_equal(got_depths, baseline.depths)
        assert any(r.num_shards_touched > 1 for r in responses)
        assert stats.nodes_completed == test_idx.shape[0]

    def test_single_owner_request_touches_one_shard(self, sharded):
        owned = sharded.store.shards[1].owned[:5]
        with ShardRouter(sharded, SERVING) as router:
            response = router.submit(owned).result(timeout=300.0)
        assert response.num_shards_touched == 1
        assert set(response.per_shard) == {1}

    def test_latency_is_worst_sub_request(self, sharded, tiny_dataset):
        test_idx = tiny_dataset.split.test_idx[:20]
        with ShardRouter(sharded, SERVING) as router:
            response = router.submit(test_idx).result(timeout=300.0)
        assert response.latency_seconds == max(
            r.latency_seconds for r in response.per_shard.values()
        )

    def test_empty_request_rejected(self, sharded):
        with ShardRouter(sharded, SERVING) as router:
            with pytest.raises(ConfigurationError):
                router.submit(np.array([], dtype=np.int64))

    def test_closed_router_rejects(self, sharded):
        router = ShardRouter(sharded, SERVING)
        router.close()
        with pytest.raises(ServingError):
            router.submit(np.array([0]))

    def test_unprepared_predictor_rejected(self, trained_nai):
        with pytest.raises(ServingError):
            ShardRouter(ShardedPredictor(trained_nai.classifiers), SERVING)


class TestStatsMerging:
    def test_fleet_counters_are_sums(self, sharded, tiny_dataset):
        test_idx = tiny_dataset.split.test_idx
        requests = [test_idx[i:i + 13] for i in range(0, test_idx.shape[0], 13)]
        with ShardRouter(sharded, SERVING) as router:
            router.predict_many(requests, timeout=300.0)
            stats = router.stats()
        assert stats.num_shards == 3
        assert stats.nodes_completed == sum(
            s.nodes_completed for s in stats.per_shard.values()
        )
        assert stats.requests_completed == sum(
            s.requests_completed for s in stats.per_shard.values()
        )
        # MAC breakdowns merge exactly (they are deterministic per batch).
        assert stats.macs.total == pytest.approx(
            sum(s.macs.total for s in stats.per_shard.values()), abs=1e-9
        )
        assert stats.timings.total == pytest.approx(
            sum(s.timings.total for s in stats.per_shard.values()), abs=1e-9
        )
        payload = stats.as_dict()
        assert payload["num_shards"] == 3
        assert set(payload["per_shard"]) == {"0", "1", "2"}

    def test_merge_empty_snapshot_dict(self):
        merged = merge_serving_snapshots({})
        assert merged.requests_completed == 0
        assert merged.latency.count == 0
        assert merged.controller_adjustments == 0
        assert merged.batch_width_p95 == 0.0

    def test_latency_merge_is_conservative(self):
        fast = LatencySummary(count=10, mean=1.0, p50=1.0, p95=2.0, p99=3.0, max=4.0)
        slow = LatencySummary(count=30, mean=2.0, p50=2.0, p95=5.0, p99=9.0, max=11.0)
        merged = merge_latency_summaries([fast, slow])
        assert merged.count == 40
        assert merged.p99 == 9.0
        assert merged.max == 11.0
        assert merged.mean == pytest.approx((1.0 * 10 + 2.0 * 30) / 40)


class TestPerShardControllers:
    def test_each_shard_gets_its_own_controller(self, sharded, tiny_dataset):
        """Adaptive batching must not couple shard loads: the router builds
        one independent controller per shard and surfaces their state."""
        config = SERVING.with_updates(
            batch_policy="queue_pressure",
            batch_size_ceiling=128,
            pressure_widen_depth=3,
            pressure_shrink_depth=1,
        )
        test_idx = tiny_dataset.split.test_idx
        with ShardRouter(sharded, config) as router:
            controllers = set(map(id, router.controllers.values()))
            assert len(controllers) == sharded.num_shards  # distinct objects
            router.predict_many(
                [test_idx[i:i + 7] for i in range(0, test_idx.shape[0], 7)],
                timeout=300.0,
            )
            state = router.controller_state()
            stats = router.stats()
        assert set(state) == set(range(sharded.num_shards))
        assert all(s["policy"] == "queue_pressure" for s in state.values())
        assert stats.batch_policy == "queue_pressure"
        assert stats.controller_adjustments == sum(
            s["adjustments"] for s in state.values()
        )
        assert stats.as_dict()["batch_width_p95"] == stats.batch_width_p95
