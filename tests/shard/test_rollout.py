"""Versioned routing rollout: old-plan drain, new-plan serve, no losses."""

import numpy as np
import pytest

from repro.core import ServingConfig, ShardConfig
from repro.exceptions import ConfigurationError, ServingError
from repro.shard import GraphPartitioner, ShardRouter, ShardedPredictor

SERVING = ServingConfig(
    num_workers=2, max_batch_size=32, max_wait_ms=0.5, cache_capacity=8
)


@pytest.fixture(scope="module")
def unsharded(trained_nai, tiny_dataset):
    config = trained_nai.inference_config(
        t_min=1,
        t_max=3,
        distance_threshold=trained_nai.suggest_distance_threshold(0.5),
        batch_size=32,
    )
    predictor = trained_nai.build_predictor(policy="distance", config=config)
    predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
    return predictor


def _sharded(unsharded, tiny_dataset, shard_config, *, version=0):
    plan = GraphPartitioner(shard_config).partition(
        tiny_dataset.graph, version=version
    )
    return ShardedPredictor.from_predictor(unsharded).prepare(
        tiny_dataset.graph, tiny_dataset.features, shard_config, plan=plan
    )


class TestPlanVersioning:
    def test_partition_stamps_version_and_with_version_restamps(
        self, tiny_dataset
    ):
        config = ShardConfig(num_shards=2)
        plan = GraphPartitioner(config).partition(tiny_dataset.graph)
        assert plan.version == 0
        restamped = plan.with_version(3)
        assert restamped.version == 3
        np.testing.assert_array_equal(restamped.owner, plan.owner)
        assert restamped.replicas == plan.replicas

    def test_stale_or_equal_version_rejected(self, unsharded, tiny_dataset):
        old = _sharded(unsharded, tiny_dataset, ShardConfig(num_shards=2))
        same = _sharded(unsharded, tiny_dataset, ShardConfig(num_shards=2))
        with ShardRouter(old, SERVING) as router:
            with pytest.raises(ConfigurationError, match="newer plan version"):
                router.install_plan(same)

    def test_unprepared_successor_rejected(self, unsharded, tiny_dataset):
        old = _sharded(unsharded, tiny_dataset, ShardConfig(num_shards=2))
        with ShardRouter(old, SERVING) as router:
            with pytest.raises(ServingError, match="prepared"):
                router.install_plan(ShardedPredictor(unsharded.classifiers))


class TestLiveRollout:
    def test_old_plan_drains_while_new_plan_serves(
        self, unsharded, tiny_dataset
    ):
        """A repartition rolls through live traffic: requests in flight on
        the old plan drain there, new submissions route on the new plan,
        nothing fails, and every answer is bit-identical to the oracle."""
        old = _sharded(
            unsharded, tiny_dataset, ShardConfig(num_shards=2, strategy="hash")
        )
        new = _sharded(
            unsharded,
            tiny_dataset,
            ShardConfig(num_shards=3, strategy="degree_balanced"),
            version=1,
        )
        test_idx = tiny_dataset.split.test_idx
        batches = [test_idx[i:i + 9] for i in range(0, test_idx.shape[0], 9)]
        baseline = unsharded.predict(test_idx)

        with ShardRouter(old, SERVING) as router:
            assert router.plan_version == 0
            # Phase 1: accept traffic on the old plan and leave it in flight.
            in_flight = [router.submit(batch, timeout=300.0) for batch in batches]
            # Phase 2: install the repartition mid-traffic.
            assert router.install_plan(new) == 1
            assert router.plan_version == 1
            assert router.predictor is new
            # Phase 3: new submissions route on the new plan immediately...
            after = [router.submit(batch, timeout=300.0) for batch in batches]
            # ...while the old generation's requests drain to completion.
            old_responses = [h.result(timeout=300.0) for h in in_flight]
            new_responses = [h.result(timeout=300.0) for h in after]
            retired = router.finish_rollout(timeout=300.0)
            state = router.rollout_state()
            stats = router.stats()

        assert retired == 1
        assert all(r.plan_version == 0 for r in old_responses)
        assert all(r.plan_version == 1 for r in new_responses)
        for responses in (old_responses, new_responses):
            predictions = np.concatenate([r.predictions for r in responses])
            depths = np.concatenate([r.depths for r in responses])
            np.testing.assert_array_equal(predictions, baseline.predictions)
            np.testing.assert_array_equal(depths, baseline.depths)
        # Per-version accounting: each generation answered exactly what it
        # routed — zero failed requests anywhere in the rollout.
        assert [row["version"] for row in state] == [1]
        assert state[0]["requests_routed"] == len(batches)
        assert state[0]["requests_failed"] == 0
        assert stats.plan_version == 1
        assert stats.requests_failed == 0

    def test_rollout_state_reports_draining_generation(
        self, unsharded, tiny_dataset
    ):
        old = _sharded(unsharded, tiny_dataset, ShardConfig(num_shards=2))
        new = _sharded(
            unsharded, tiny_dataset, ShardConfig(num_shards=2), version=2
        )
        test_idx = tiny_dataset.split.test_idx
        with ShardRouter(old, SERVING) as router:
            router.submit(test_idx[:10], timeout=300.0).result(timeout=300.0)
            router.install_plan(new)
            state = router.rollout_state()
            assert [row["version"] for row in state] == [0, 2]
            assert state[0]["draining"] is True
            assert state[0]["requests_routed"] == 1
            # Completed counts per-shard sub-requests: a mixed-owner request
            # fans out, so the count is at least the routed count.
            assert state[0]["requests_completed"] >= 1
            assert state[0]["requests_failed"] == 0
            assert state[1]["draining"] is False
            assert state[1]["requests_routed"] == 0
            # Draining generations still answer their accepted traffic; the
            # active one takes all new routing.
            response = router.submit(test_idx[:10], timeout=300.0).result(
                timeout=300.0
            )
            assert response.plan_version == 2
            assert router.finish_rollout(timeout=300.0) == 1
            # A second finish is a no-op.
            assert router.finish_rollout() == 0

    def test_close_shuts_down_draining_generations_too(
        self, unsharded, tiny_dataset
    ):
        old = _sharded(unsharded, tiny_dataset, ShardConfig(num_shards=2))
        new = _sharded(
            unsharded, tiny_dataset, ShardConfig(num_shards=2), version=1
        )
        router = ShardRouter(old, SERVING)
        old_servers = list(router.servers.values())
        router.install_plan(new)
        router.close()
        with pytest.raises(ServingError):
            router.submit(np.array([0]))
        for server in old_servers:
            with pytest.raises(ServingError):
                server.submit(np.array([0]))
