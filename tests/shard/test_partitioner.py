"""Tests for the edge-cut graph partitioner."""

import numpy as np
import pytest

from repro.core import ShardConfig
from repro.exceptions import ConfigurationError, GraphConstructionError
from repro.graph import CSRGraph
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.shard import GraphPartitioner


def _graph(seed=0, n=200):
    spec = SyntheticGraphSpec(
        num_nodes=n, num_classes=4, avg_degree=6.0, degree_exponent=2.0
    )
    graph, _ = generate_community_graph(spec, rng=seed)
    return graph


class TestShardConfig:
    def test_invalid_num_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardConfig(num_shards=0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardConfig(strategy="metis")


class TestPlans:
    @pytest.mark.parametrize("strategy", ["hash", "degree_balanced"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_ownership_is_a_partition(self, strategy, num_shards):
        graph = _graph()
        plan = GraphPartitioner(
            ShardConfig(num_shards=num_shards, strategy=strategy)
        ).partition(graph)
        assert plan.num_shards == num_shards
        combined = np.concatenate(plan.owned)
        assert np.array_equal(np.sort(combined), np.arange(graph.num_nodes))
        for owned in plan.owned:
            # Sorted ownership is load-bearing for bit-identical assembly.
            assert np.all(np.diff(owned) > 0)
            assert np.array_equal(plan.owner[owned], np.full(owned.shape, plan.owner[owned[0]]))

    @pytest.mark.parametrize("strategy", ["hash", "degree_balanced"])
    def test_deterministic(self, strategy):
        graph = _graph(seed=3)
        config = ShardConfig(num_shards=3, strategy=strategy)
        a = GraphPartitioner(config).partition(graph)
        b = GraphPartitioner(config).partition(graph)
        assert np.array_equal(a.owner, b.owner)
        assert a.cut_edges == b.cut_edges

    def test_single_shard_has_no_cut(self):
        plan = GraphPartitioner(ShardConfig(num_shards=1)).partition(_graph())
        assert plan.cut_edges == 0
        assert plan.shard_sizes() == [200]

    def test_degree_balanced_balances_degree_load(self):
        graph = _graph(seed=5, n=400)
        degrees = graph.degrees()
        plan = GraphPartitioner(
            ShardConfig(num_shards=4, strategy="degree_balanced")
        ).partition(graph)
        loads = np.array([degrees[owned].sum() for owned in plan.owned])
        # LPT keeps the max load within a whisker of the mean; a heavy-tailed
        # graph hashed instead routinely lands 20%+ above it.
        assert loads.max() <= loads.mean() * 1.05 + degrees.max()

    def test_shard_of_routes_every_node(self):
        plan = GraphPartitioner(ShardConfig(num_shards=2)).partition(_graph())
        ids = np.array([0, 5, 199])
        assert np.array_equal(plan.shard_of(ids), plan.owner[ids])

    def test_more_shards_than_nodes_rejected(self):
        tiny = CSRGraph.from_edges([(0, 1)], num_nodes=2)
        with pytest.raises(GraphConstructionError):
            GraphPartitioner(ShardConfig(num_shards=3)).partition(tiny)

    def test_cut_edges_counted_once_per_edge(self):
        # A 4-cycle split into odd/even hash shards cuts every edge.
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_nodes=4)
        plan = GraphPartitioner(ShardConfig(num_shards=2)).partition(graph)
        coo = graph.adjacency.tocoo()
        expected = int((plan.owner[coo.row] != plan.owner[coo.col]).sum()) // 2
        assert plan.cut_edges == expected
