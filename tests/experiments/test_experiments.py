"""Tests for the experiment drivers (run on the FAST profile)."""

import pytest

from repro.experiments import (
    DISTILLATION_VARIANTS,
    FAST_PROFILE,
    clear_cache,
    figure4_series,
    get_context,
    measured_vs_analytic,
    run_batch_size_study,
    run_complexity_table,
    run_dataset_comparison,
    run_distillation_ablation,
    run_ensemble_sensitivity,
    run_generalization_table,
    run_nap_ablation,
    run_tradeoff,
    series_by_method,
    speed_first_settings,
    table6_distributions,
)
from repro.metrics import format_table

PROFILE = FAST_PROFILE


@pytest.fixture(scope="module")
def flickr_context():
    return get_context("flickr-sim", profile=PROFILE)


class TestContext:
    def test_context_is_cached(self, flickr_context):
        again = get_context("flickr-sim", profile=PROFILE)
        assert again is flickr_context

    def test_profile_updates_produce_new_key(self):
        modified = PROFILE.with_updates(seed=123)
        assert modified.key("flickr-sim", "sgc") != PROFILE.key("flickr-sim", "sgc")

    def test_vanilla_config_fixed_depth(self, flickr_context):
        config = flickr_context.vanilla_config()
        assert config.t_min == config.t_max == PROFILE.depth

    def test_nai_config_threshold_from_quantile(self, flickr_context):
        config = flickr_context.nai_config(threshold_quantile=0.5)
        assert config.distance_threshold > 0.0

    def test_unknown_baseline_rejected(self, flickr_context):
        with pytest.raises(Exception):
            flickr_context.baseline("mystery")

    def test_baselines_are_cached(self, flickr_context):
        first = flickr_context.baseline("glnn")
        second = flickr_context.baseline("glnn")
        assert first is second

    def test_clear_cache(self, flickr_context):
        clear_cache()
        fresh = get_context("flickr-sim", profile=PROFILE)
        assert fresh is not flickr_context


class TestTable5Driver:
    def test_rows_cover_all_methods(self):
        rows = run_dataset_comparison("flickr-sim", profile=PROFILE)
        methods = {row.method for row in rows}
        assert {"SGC", "GLNN", "NOSMOG", "TinyGNN", "Quantization", "NAI_d", "NAI_g"} <= methods

    def test_vanilla_is_most_expensive_propagator(self):
        rows = run_dataset_comparison("flickr-sim", profile=PROFILE, include_baselines=False)
        by_method = {row.method: row for row in rows}
        assert by_method["NAI_d"].fp_macs_per_node <= by_method["SGC"].fp_macs_per_node
        assert by_method["NAI_g"].fp_macs_per_node <= by_method["SGC"].fp_macs_per_node

    def test_format_table_renders(self):
        rows = run_dataset_comparison("flickr-sim", profile=PROFILE, include_baselines=False)
        text = format_table(rows, reference_method="SGC")
        assert "NAI_d" in text


class TestTradeoffDriver:
    def test_settings_produce_points_and_distributions(self):
        points = run_tradeoff("flickr-sim", profile=PROFILE, include_baselines=False)
        series = figure4_series(points)
        assert any(label.startswith("NAI1_d") for label in series)
        distributions = table6_distributions(points)
        for counts in distributions.values():
            assert sum(counts) > 0

    def test_accuracy_first_setting_at_least_as_accurate(self):
        points = run_tradeoff("flickr-sim", profile=PROFILE, include_baselines=False)
        series = figure4_series(points)
        speedy_acc = series["NAI1_d"][1]
        accurate_acc = series["NAI3_d"][1]
        assert accurate_acc >= speedy_acc - 0.02


class TestAblationDrivers:
    def test_nap_ablation_rows(self):
        rows = run_nap_ablation("flickr-sim", profile=PROFILE, t_max_values=(2, 3))
        assert {row.method for row in rows} == {"NAI w/o NAP", "NAI_d", "NAI_g"}
        assert {row.t_max for row in rows} == {2, 3}
        for row in rows:
            assert sum(row.depth_distribution) > 0

    def test_distillation_ablation_variants(self):
        table = run_distillation_ablation(("flickr-sim",), profile=PROFILE,
                                          variants=("NAI w/o ID", "NAI"))
        assert set(table) == {"NAI w/o ID", "NAI"}
        for variant_results in table.values():
            assert 0.0 <= variant_results["flickr-sim"] <= 1.0

    def test_all_variant_names_defined(self):
        assert set(DISTILLATION_VARIANTS) == {"NAI w/o ID", "NAI w/o MS", "NAI w/o SS", "NAI"}


class TestGeneralizationDriver:
    def test_sign_backbone_runs(self):
        rows = run_generalization_table("table9", profile=PROFILE, include_baselines=False)
        assert any(row.method == "SIGN" for row in rows)

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            run_generalization_table("table42", profile=PROFILE)


class TestBatchSizeDriver:
    def test_series_structure(self):
        points = run_batch_size_study(
            "flickr-sim", batch_sizes=(20, 50), profile=PROFILE, include_baselines=False
        )
        series = series_by_method(points)
        for values in series.values():
            assert [v[0] for v in values] == [20, 50]


class TestSensitivityAndComplexity:
    def test_ensemble_sensitivity_points(self):
        points = run_ensemble_sensitivity(
            "flickr-sim", values=(1, 2), profile=PROFILE
        )
        assert [p.value for p in points] == [1.0, 2.0]
        assert all(0.0 <= p.accuracy <= 1.0 for p in points)

    def test_complexity_table_rows(self):
        rows = run_complexity_table(average_depth=2.0)
        assert len(rows) == 4
        # The NAI column adds the O(n^2 f) stationary-state term, so the
        # analytic ratio is not necessarily > 1; it must at least be finite
        # and positive, and the vanilla propagation term must shrink with q.
        assert all(row.speedup > 0.0 for row in rows)
        assert all(row.vanilla_macs > 0 and row.nai_macs > 0 for row in rows)

    def test_measured_vs_analytic_speedups_positive(self):
        summary = measured_vs_analytic("flickr-sim", profile=PROFILE)
        assert summary["measured_speedup"] > 0
        assert summary["analytic_speedup"] > 0


class TestSpeedFirstSettings:
    def test_settings_validated_against_depth(self, flickr_context):
        settings = speed_first_settings(flickr_context)
        assert set(settings) == {"NAI_d", "NAI_g"}
        for setting in settings.values():
            assert setting.config.t_max <= PROFILE.depth
