"""Tests for MAC formulas (Table I), result rows and table formatting."""

import numpy as np
import pytest

from repro.core.inference import InferenceResult, MACBreakdown, TimingBreakdown
from repro.exceptions import ConfigurationError
from repro.metrics import (
    ComplexityInputs,
    MethodResult,
    Stopwatch,
    format_table,
    method_result_from_inference,
    nai_macs,
    summarize_accuracy,
    supported_backbones,
    theoretical_speedup,
    time_callable,
    vanilla_macs,
)

INPUTS = ComplexityInputs(
    num_nodes=1000, num_edges=10000, num_features=64, depth=5,
    classifier_layers=2, average_depth=2.0,
)


class TestComplexityFormulas:
    def test_supported_backbones(self):
        assert set(supported_backbones()) == {"SGC", "SIGN", "S2GC", "GAMLP"}

    def test_sgc_formula_matches_table1(self):
        n, m, f, k = 1000, 10000, 64, 5
        assert vanilla_macs("SGC", INPUTS) == k * m * f + n * f ** 2

    def test_nai_reduces_propagation_term(self):
        for backbone in supported_backbones():
            vanilla = vanilla_macs(backbone, INPUTS)
            # Ignore the stationary-state term when comparing the propagation part.
            adaptive = nai_macs(backbone, INPUTS) - INPUTS.num_nodes ** 2 * INPUTS.num_features
            assert adaptive < vanilla

    def test_speedup_grows_with_edges(self):
        sparse = ComplexityInputs(10000, 50_000, 64, 5, average_depth=1.5)
        dense = ComplexityInputs(10000, 5_000_000, 64, 5, average_depth=1.5)
        assert theoretical_speedup("SGC", dense) > theoretical_speedup("SGC", sparse)

    def test_unknown_backbone_rejected(self):
        with pytest.raises(ConfigurationError):
            vanilla_macs("GCN", INPUTS)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            ComplexityInputs(0, 1, 1, 1)
        with pytest.raises(ConfigurationError):
            ComplexityInputs(1, 1, 1, 1, average_depth=0.0)

    def test_average_depth_defaults_to_depth(self):
        inputs = ComplexityInputs(10, 20, 4, 3)
        assert inputs.q == 3.0


def _dummy_inference_result(num_nodes=10, depth=3):
    rng = np.random.default_rng(0)
    return InferenceResult(
        node_ids=np.arange(num_nodes),
        predictions=rng.integers(0, 3, num_nodes),
        depths=rng.integers(1, depth + 1, num_nodes),
        macs=MACBreakdown(stationary=10.0, propagation=100.0, decision=5.0, classification=20.0),
        timings=TimingBreakdown(sampling=0.1, propagation=0.5, classification=0.2),
        max_depth=depth,
    )


class TestMethodResult:
    def test_from_inference_result(self):
        result = _dummy_inference_result()
        labels = np.zeros(10, dtype=int)
        row = method_result_from_inference("NAI", "flickr-sim", result, labels)
        assert row.method == "NAI"
        assert 0.0 <= row.accuracy <= 1.0
        assert row.macs_per_node == pytest.approx(135.0 / 10)
        assert row.fp_macs_per_node == pytest.approx(105.0 / 10)

    def test_speedup_over_reference(self):
        slow = MethodResult("SGC", "d", 0.9, 1000.0, 800.0, 10.0, 8.0)
        fast = MethodResult("NAI", "d", 0.89, 100.0, 50.0, 1.0, 0.5)
        speed = fast.speedup_over(slow)
        assert speed["macs"] == pytest.approx(10.0)
        assert speed["fp_time"] == pytest.approx(16.0)

    def test_mmacs_conversion(self):
        row = MethodResult("X", "d", 0.5, 2_000_000.0, 1_000_000.0, 1.0, 0.5)
        assert row.mmacs_per_node == pytest.approx(2.0)
        assert row.fp_mmacs_per_node == pytest.approx(1.0)


class TestFormatting:
    def test_format_table_contains_methods_and_ratios(self):
        rows = [
            MethodResult("SGC", "flickr-sim", 0.95, 1000.0, 900.0, 2.0, 1.8),
            MethodResult("NAI_d", "flickr-sim", 0.94, 100.0, 80.0, 0.4, 0.3, (5, 5)),
        ]
        text = format_table(rows, reference_method="SGC", title="Table V")
        assert "Table V" in text
        assert "SGC" in text and "NAI_d" in text
        assert "x10.0" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no results)"

    def test_summarize_accuracy_averages(self):
        rows = [
            MethodResult("A", "d1", 0.8, 1, 1, 1, 1),
            MethodResult("A", "d2", 0.6, 1, 1, 1, 1),
            MethodResult("B", "d1", 0.5, 1, 1, 1, 1),
        ]
        summary = summarize_accuracy(rows)
        assert summary["A"] == pytest.approx(0.7)
        assert summary["B"] == pytest.approx(0.5)


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.lap("a"):
            pass
        with watch.lap("a"):
            pass
        assert watch.laps["a"] >= 0.0
        assert watch.total() >= watch.laps["a"]
        watch.reset()
        assert watch.laps == {}

    def test_time_callable_returns_result(self):
        value, seconds = time_callable(lambda x: x * 2, 21, repeats=3)
        assert value == 42
        assert seconds >= 0.0

    def test_time_callable_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestLatencySummary:
    """Satellite: explicit degenerate-input semantics and dict round trips."""

    def test_empty_samples_yield_all_zero_summary(self):
        from repro.metrics.timing import latency_summary

        summary = latency_summary([])
        assert summary.count == 0
        assert (summary.mean, summary.p50, summary.p95, summary.p99,
                summary.max) == (0.0, 0.0, 0.0, 0.0, 0.0)

    def test_single_sample_pins_every_percentile_exactly(self):
        from repro.metrics.timing import latency_summary

        summary = latency_summary([0.125])
        assert summary.count == 1
        assert (summary.mean, summary.p50, summary.p95, summary.p99,
                summary.max) == (0.125, 0.125, 0.125, 0.125, 0.125)

    def test_multi_sample_percentiles_are_ordered(self):
        from repro.metrics.timing import latency_summary

        summary = latency_summary([0.01 * i for i in range(1, 101)])
        assert summary.count == 100
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.max
        assert summary.max == pytest.approx(1.0)

    def test_as_dict_from_dict_round_trip(self):
        import json

        from repro.metrics.timing import LatencySummary, latency_summary

        summary = latency_summary([0.1, 0.2, 0.3, 0.9])
        payload = json.loads(json.dumps(summary.as_dict()))
        restored = LatencySummary.from_dict(payload)
        assert restored == summary
        assert isinstance(restored.count, int)

    def test_round_trip_survives_scaling(self):
        from repro.metrics.timing import LatencySummary, latency_summary

        summary = latency_summary([0.25, 0.75]).scaled(1e3)
        assert LatencySummary.from_dict(summary.as_dict()) == summary
