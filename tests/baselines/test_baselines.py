"""Tests for the four inference-acceleration baselines."""

import numpy as np
import pytest

from repro.baselines import (
    GLNN,
    NOSMOG,
    QuantizedInference,
    TinyGNN,
    quantize_depthwise_classifier,
    structural_embeddings,
)
from repro.exceptions import ConfigurationError, NotFittedError
from repro.models import SGC
from repro.nn import Tensor


class TestGLNN:
    def test_requires_fit_before_predict(self, tiny_dataset):
        with pytest.raises(NotFittedError):
            GLNN(rng=0).predict(tiny_dataset, tiny_dataset.split.test_idx)

    def test_fit_and_predict_shapes(self, tiny_dataset, teacher_target):
        model = GLNN(rng=0, epochs=30).fit(tiny_dataset, teacher_target)
        result = model.evaluate(tiny_dataset)
        assert result.num_nodes == tiny_dataset.split.num_test
        assert result.accuracy(tiny_dataset.labels) > 1.0 / tiny_dataset.num_classes

    def test_no_feature_processing_macs(self, tiny_dataset, teacher_target):
        model = GLNN(rng=0, epochs=10).fit(tiny_dataset, teacher_target)
        result = model.evaluate(tiny_dataset)
        assert result.macs.propagation == 0.0
        assert result.macs.classification > 0.0

    def test_hidden_multiplier_widens_student(self):
        narrow = GLNN(hidden_dims=(32,), hidden_multiplier=1, rng=0)
        wide = GLNN(hidden_dims=(32,), hidden_multiplier=4, rng=0)
        assert wide.hidden_dims == (128,)
        assert narrow.hidden_dims == (32,)

    def test_works_without_teacher(self, tiny_dataset):
        model = GLNN(rng=0, epochs=10).fit(tiny_dataset, None)
        result = model.evaluate(tiny_dataset)
        assert result.num_nodes == tiny_dataset.split.num_test


class TestNOSMOG:
    def test_structural_embeddings_shape_and_scale(self, tiny_dataset):
        embeddings = structural_embeddings(
            tiny_dataset.graph.adjacency, 8, rng=np.random.default_rng(0)
        )
        assert embeddings.shape == (tiny_dataset.num_nodes, 8)
        stds = embeddings.std(axis=0)
        assert np.all(stds[stds > 0] < 5.0)

    def test_invalid_position_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            NOSMOG(position_dim=0)

    def test_fit_and_predict(self, tiny_dataset, teacher_target):
        model = NOSMOG(rng=0, epochs=30).fit(tiny_dataset, teacher_target)
        result = model.evaluate(tiny_dataset)
        assert result.num_nodes == tiny_dataset.split.num_test
        assert result.macs.propagation > 0.0  # position aggregation

    def test_position_features_help_over_glnn(self, tiny_dataset, teacher_target):
        """Topology-aware student should beat the feature-only student (paper Table V)."""
        glnn = GLNN(rng=0, epochs=40).fit(tiny_dataset, teacher_target)
        nosmog = NOSMOG(rng=0, epochs=40).fit(tiny_dataset, teacher_target)
        acc_glnn = glnn.evaluate(tiny_dataset).accuracy(tiny_dataset.labels)
        acc_nosmog = nosmog.evaluate(tiny_dataset).accuracy(tiny_dataset.labels)
        assert acc_nosmog > acc_glnn


class TestTinyGNN:
    def test_invalid_attention_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            TinyGNN(attention_dim=0)

    def test_fit_and_predict(self, tiny_dataset, teacher_target):
        model = TinyGNN(rng=0, epochs=25).fit(tiny_dataset, teacher_target)
        result = model.evaluate(tiny_dataset)
        assert result.num_nodes == tiny_dataset.split.num_test
        assert result.accuracy(tiny_dataset.labels) > 1.0 / tiny_dataset.num_classes

    def test_attention_adds_decision_macs(self, tiny_dataset, teacher_target):
        model = TinyGNN(rng=0, epochs=10).fit(tiny_dataset, teacher_target)
        result = model.evaluate(tiny_dataset)
        assert result.macs.decision > 0.0
        assert result.macs.propagation > 0.0

    def test_uses_only_one_hop(self, tiny_dataset, teacher_target):
        """TinyGNN touches fewer propagation MACs than a deep vanilla model."""
        model = TinyGNN(rng=0, epochs=10).fit(tiny_dataset, teacher_target)
        result = model.evaluate(tiny_dataset)
        per_node_propagation = result.macs.propagation / result.num_nodes
        # One hop touches at most (avg degree + 1) * f MACs per node.
        upper = (tiny_dataset.graph.degrees().max() + 1) * tiny_dataset.num_features
        assert per_node_propagation <= upper


class TestQuantization:
    def test_quantize_depthwise_classifier_keeps_interface(self, trained_nai):
        original = trained_nai.classifiers[-1]
        quantized = quantize_depthwise_classifier(original)
        assert quantized.depth == original.depth
        assert quantized.classification_macs_per_node() == original.classification_macs_per_node()

    def test_quantized_logits_close_to_float(self, trained_nai, tiny_dataset):
        from repro.graph import propagate_features

        original = trained_nai.classifiers[-1]
        quantized = quantize_depthwise_classifier(original)
        propagated = propagate_features(
            tiny_dataset.graph, tiny_dataset.features, original.depth
        )
        inputs = [Tensor(m[:50]) for m in propagated]
        float_pred = original(inputs).data.argmax(axis=1)
        quant_pred = quantized(inputs).data.argmax(axis=1)
        assert (float_pred == quant_pred).mean() > 0.85

    def test_requires_classifiers(self):
        with pytest.raises(ConfigurationError):
            QuantizedInference([])

    def test_rejects_classifier_without_mlp_block(self):
        class Weird:
            depth = 1

        with pytest.raises(ConfigurationError):
            quantize_depthwise_classifier(Weird())

    def test_accuracy_close_to_vanilla(self, trained_nai, tiny_dataset):
        baseline = QuantizedInference(trained_nai.classifiers, batch_size=200)
        baseline.fit(tiny_dataset)
        quant_result = baseline.evaluate(tiny_dataset)
        vanilla_result = trained_nai.evaluate(tiny_dataset, policy="none")
        assert abs(
            quant_result.accuracy(tiny_dataset.labels)
            - vanilla_result.accuracy(tiny_dataset.labels)
        ) < 0.05

    def test_same_macs_as_vanilla(self, trained_nai, tiny_dataset):
        """INT8 reduces precision, not MAC count (paper Table V)."""
        baseline = QuantizedInference(trained_nai.classifiers, batch_size=500)
        baseline.fit(tiny_dataset)
        quant_result = baseline.evaluate(tiny_dataset)
        vanilla_result = trained_nai.evaluate(tiny_dataset, policy="none")
        assert quant_result.macs.total == pytest.approx(vanilla_result.macs.total, rel=0.01)

    def test_float32_default_matches_float64_predictions(self, trained_nai, tiny_dataset):
        """The float32 default dtype is prediction-identical on the INT8 path.

        This is the validation gating the ROADMAP's "flip the default
        inference dtype" item: the quantized baseline stacks INT8 classifier
        error on top of float32 propagation error, and even then the argmax
        decisions must not move.  float64 stays one config flag away.
        """
        single = QuantizedInference(trained_nai.classifiers, batch_size=200)
        double = QuantizedInference(
            trained_nai.classifiers, batch_size=200, dtype="float64"
        )
        single.fit(tiny_dataset)
        double.fit(tiny_dataset)
        single_result = single.evaluate(tiny_dataset)
        double_result = double.evaluate(tiny_dataset)
        assert single._predictor.config.dtype == "float32"
        assert double._predictor.config.dtype == "float64"
        np.testing.assert_array_equal(
            single_result.predictions, double_result.predictions
        )
        np.testing.assert_array_equal(single_result.depths, double_result.depths)
        assert single_result.macs.total == pytest.approx(double_result.macs.total)


class TestSGCQuantizationAcrossBackbones:
    @pytest.mark.parametrize("attribute", ["mlp"])
    def test_sgc_classifier_quantizable(self, attribute):
        backbone = SGC(8, 3, 2, rng=0)
        classifier = backbone.make_classifier(2)
        quantized = quantize_depthwise_classifier(classifier)
        assert hasattr(quantized, attribute)
