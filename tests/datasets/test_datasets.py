"""Tests for the dataset container and the synthetic dataset recipes."""

import numpy as np
import pytest

from repro.datasets import (
    ARXIV_SIM,
    FLICKR_SIM,
    PRODUCTS_SIM,
    NodeClassificationDataset,
    available_datasets,
    dataset_spec,
    generate_dataset,
    load_dataset,
)
from repro.exceptions import DatasetError
from repro.graph import CSRGraph, InductiveSplit


def _tiny_manual_dataset():
    graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)], num_nodes=5)
    features = np.arange(10, dtype=float).reshape(5, 2)
    labels = np.array([0, 0, 1, 1, 1])
    split = InductiveSplit(np.array([0, 1]), np.array([2]), np.array([3, 4]))
    return NodeClassificationDataset("manual", graph, features, labels, split)


class TestNodeClassificationDataset:
    def test_summary_fields(self):
        dataset = _tiny_manual_dataset()
        summary = dataset.summary()
        assert summary["num_nodes"] == 5
        assert summary["num_features"] == 2
        assert summary["num_classes"] == 2
        assert summary["num_test"] == 2

    def test_observed_views_align(self):
        dataset = _tiny_manual_dataset()
        assert dataset.observed_features().shape == (3, 2)
        assert dataset.observed_labels().tolist() == [0, 0, 1]
        assert dataset.test_labels().tolist() == [1, 1]

    def test_partition_train_graph_size(self):
        dataset = _tiny_manual_dataset()
        assert dataset.partition().train_graph.num_nodes == 3

    def test_feature_row_mismatch_rejected(self):
        graph = CSRGraph.from_edges([(0, 1)], num_nodes=2)
        split = InductiveSplit(np.array([0]), np.array([]), np.array([1]))
        with pytest.raises(DatasetError):
            NodeClassificationDataset("bad", graph, np.ones((3, 2)), np.array([0, 1]), split)

    def test_label_shape_mismatch_rejected(self):
        graph = CSRGraph.from_edges([(0, 1)], num_nodes=2)
        split = InductiveSplit(np.array([0]), np.array([]), np.array([1]))
        with pytest.raises(DatasetError):
            NodeClassificationDataset("bad", graph, np.ones((2, 2)), np.array([0]), split)

    def test_split_out_of_range_rejected(self):
        graph = CSRGraph.from_edges([(0, 1)], num_nodes=2)
        split = InductiveSplit(np.array([0]), np.array([]), np.array([5]))
        with pytest.raises(DatasetError):
            NodeClassificationDataset("bad", graph, np.ones((2, 2)), np.array([0, 1]), split)


class TestSyntheticRecipes:
    def test_available_datasets(self):
        assert set(available_datasets()) == {"flickr-sim", "arxiv-sim", "products-sim"}

    def test_dataset_spec_lookup(self):
        assert dataset_spec("flickr-sim").num_classes == 7
        with pytest.raises(DatasetError):
            dataset_spec("unknown")

    def test_relative_size_ordering_matches_paper(self):
        # products > arxiv > flickr in node count; products is densest.
        assert PRODUCTS_SIM.num_nodes > ARXIV_SIM.num_nodes > FLICKR_SIM.num_nodes
        assert PRODUCTS_SIM.avg_degree > ARXIV_SIM.avg_degree
        assert FLICKR_SIM.num_features > ARXIV_SIM.num_features > PRODUCTS_SIM.num_features

    def test_load_dataset_scale(self):
        small = load_dataset("flickr-sim", scale=0.2)
        assert small.num_nodes == pytest.approx(FLICKR_SIM.num_nodes * 0.2, rel=0.05)

    def test_load_dataset_invalid_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("flickr-sim", scale=0.0)

    def test_generation_is_deterministic(self):
        a = load_dataset("arxiv-sim", scale=0.2)
        b = load_dataset("arxiv-sim", scale=0.2)
        assert np.allclose(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)
        assert a.graph == b.graph

    def test_seed_override_changes_data(self):
        a = load_dataset("arxiv-sim", scale=0.2)
        b = load_dataset("arxiv-sim", scale=0.2, seed=999)
        assert not np.allclose(a.features, b.features)

    def test_all_classes_present_in_each_dataset(self):
        for name in available_datasets():
            dataset = load_dataset(name, scale=0.2)
            assert len(np.unique(dataset.labels)) == dataset_spec(name).num_classes

    def test_test_nodes_are_majority_for_products(self):
        dataset = load_dataset("products-sim", scale=0.2)
        # Ogbn-products has a small training fraction: most nodes are unseen.
        assert dataset.split.num_test > dataset.split.num_observed

    def test_generate_dataset_respects_spec(self):
        spec = FLICKR_SIM.scaled(0.15)
        dataset = generate_dataset(spec)
        assert dataset.num_features == spec.num_features
        assert dataset.num_nodes == spec.num_nodes

    def test_propagation_improves_over_raw_features(self):
        """The datasets are calibrated so topology genuinely matters."""
        from repro.graph import propagate_features
        from repro.nn import MLP, Adam, Tensor, accuracy_from_logits, cross_entropy

        dataset = load_dataset("flickr-sim", scale=0.3)
        propagated = propagate_features(dataset.graph, dataset.features, 3)
        train_idx, test_idx = dataset.split.train_idx, dataset.split.test_idx
        accuracies = {}
        for depth in (0, 3):
            model = MLP(dataset.num_features, dataset.num_classes, rng=np.random.default_rng(0))
            optimizer = Adam(model.parameters(), lr=0.05)
            for _ in range(80):
                optimizer.zero_grad()
                loss = cross_entropy(
                    model(Tensor(propagated[depth][train_idx])), dataset.labels[train_idx]
                )
                loss.backward()
                optimizer.step()
            model.eval()
            accuracies[depth] = accuracy_from_logits(
                model(Tensor(propagated[depth][test_idx])), dataset.labels[test_idx]
            )
        assert accuracies[3] > accuracies[0] + 0.2
