"""Wave correctness fuzz: bit-identity and exact MAC attribution.

A wave fuses ready micro-batches into one union sweep; the contract
(``docs/wave.md``) is that fusing changes *cost*, never *answers*.  This
suite sweeps seeds x shard counts x wave widths x transport backends and
enforces, for every combination:

* each member's slice of the union result is bit-identical (predictions
  and exit depths) to running that member alone;
* the per-member MAC attribution reconciles **exactly** with the
  engine-reported union breakdown, term by term;
* a live ``wave_width > 1`` server under concurrent load stays
  bit-identical to the :class:`~repro.shard.ShardedPredictor` oracle and
  its attributed response MACs sum to the served totals;
* ``wave_width=1`` is the pre-wave dispatch path: same responses, no
  waves counted.
"""

import numpy as np
import pytest

from repro.core import NAIConfig, ServingConfig, ShardConfig
from repro.core.distance_nap import DistanceNAP
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.models import SGC
from repro.serving import InferenceServer, execute_wave
from repro.shard import ShardedPredictor
from repro.transport import (
    FaultInjectingTransport,
    LocalTransport,
    ReplicatedTransport,
    RetryPolicy,
)

#: Zero-backoff retries: kill windows are healed by round, not by time.
FAST_RETRY = RetryPolicy(
    max_attempts=3,
    backoff_base_seconds=0.0,
    backoff_cap_seconds=0.0,
    jitter_fraction=0.0,
)

REQUEST_SIZE = 8
NUM_REQUESTS = 16


def build_sharded(seed: int, num_shards: int) -> ShardedPredictor:
    spec = SyntheticGraphSpec(
        num_nodes=210, num_classes=4, avg_degree=6.0, degree_exponent=2.2
    )
    graph, _ = generate_community_graph(spec, rng=seed)
    rng = np.random.default_rng(seed + 50)
    features = rng.normal(size=(graph.num_nodes, 6)).astype(np.float32)
    classifiers = SGC(6, 4, depth=3, rng=seed).make_all_classifiers()
    predictor = ShardedPredictor(
        classifiers,
        policy=DistanceNAP(0.15),
        config=NAIConfig(t_min=1, t_max=3, batch_size=32),
    )
    return predictor.prepare(
        graph,
        features,
        ShardConfig(num_shards=num_shards, strategy="degree_balanced"),
    )


def make_transport(kind: str, store):
    if kind == "local":
        return LocalTransport(store.shards)
    if kind == "latency":
        return FaultInjectingTransport(
            LocalTransport(store.shards), latency_seconds=0.002
        )
    if kind == "replicated-kills":
        rails = [
            FaultInjectingTransport(
                LocalTransport(store.shards), replica_index=index
            )
            for index in range(2)
        ]
        rails[0].schedule_kill(0, 1, 4, replica_index=0)
        rails[1].schedule_kill(store.num_shards - 1, 2, 5, replica_index=1)
        return ReplicatedTransport(rails, retry_policy=FAST_RETRY)
    raise AssertionError(kind)


def zipfian_requests(num_nodes: int, seed: int) -> list[np.ndarray]:
    """Distinct-node requests drawn from a Zipf-skewed node popularity.

    Hub-heavy workloads are the wave scheduler's reason to exist: skewed
    popularity makes concurrent requests share support rows.
    """
    rng = np.random.default_rng(seed + 101)
    ranks = rng.permutation(num_nodes)
    weights = 1.0 / (1.0 + ranks.astype(np.float64)) ** 1.2
    weights /= weights.sum()
    return [
        rng.choice(num_nodes, size=REQUEST_SIZE, replace=False, p=weights)
        for _ in range(NUM_REQUESTS)
    ]


class TestExecuteWaveFuzz:
    @pytest.mark.parametrize("transport_kind", ["local", "latency", "replicated-kills"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_members_bit_identical_and_macs_reconcile(
        self, seed, num_shards, transport_kind
    ):
        sharded = build_sharded(seed, num_shards)
        store = sharded.store
        requests = zipfian_requests(store.num_nodes, seed)
        engine = sharded.make_engine(home_shard=0)

        # Isolated oracle per request, on the pristine local transport.
        isolated = [engine.run_batch(batch) for batch in requests]

        for width in (1, 2, 4, 8):
            sharded.use_transport(make_transport(transport_kind, store))
            try:
                waves = [
                    execute_wave(engine, requests[start : start + width])
                    for start in range(0, len(requests), width)
                ]
            finally:
                sharded.use_transport(LocalTransport(store.shards))

            position = 0
            for wave in waves:
                # Attribution reconciles exactly with the engine breakdown
                # (attribute_wave_macs raised otherwise); the member shares
                # must also re-sum to the union total term by term.
                assert wave.attribution.total.total == wave.result.macs.total
                for index in range(wave.num_members):
                    oracle = isolated[position]
                    np.testing.assert_array_equal(
                        wave.member_predictions(index), oracle.predictions
                    )
                    np.testing.assert_array_equal(
                        wave.member_depths(index), oracle.depths
                    )
                    position += 1
                fraction = wave.attribution.shared_row_fraction
                assert 0.0 <= fraction <= 1.0
                if wave.num_members == 1:
                    assert wave.attribution.shared_row_macs == 0
            assert position == len(requests)

            # Fusing dedups shared support rows: the union cost never
            # exceeds the sum of isolated costs, and a real multi-member
            # wave on this hub-skewed workload strictly saves.
            union_macs = sum(w.result.macs.total for w in waves)
            isolated_macs = sum(r.macs.total for r in isolated)
            assert union_macs <= isolated_macs + 1e-6
            if width > 1:
                assert union_macs < isolated_macs


def serve_all(sharded, requests, *, wave_width: int, config: ServingConfig = None):
    if config is None:
        config = ServingConfig(
            num_workers=2,
            max_batch_size=REQUEST_SIZE,
            max_wait_ms=1.0,
            cache_capacity=32,
            wave_width=wave_width,
        )
    with InferenceServer(sharded.shard_view(0), config) as server:
        handles = [server.submit(batch) for batch in requests]
        responses = [handle.result(timeout=60.0) for handle in handles]
        stats = server.stats()
    return responses, stats


class TestWaveServerEquivalence:
    @pytest.mark.parametrize("wave_width", [2, 4, 8])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_live_waves_bit_identical_to_oracle(self, seed, wave_width):
        sharded = build_sharded(seed, 2)
        store = sharded.store
        requests = zipfian_requests(store.num_nodes, seed)
        oracles = [sharded.predict(batch) for batch in requests]

        # Injected fetch latency backs the queue up behind the first
        # bundle build, so later submissions pile into real waves.
        sharded.use_transport(
            FaultInjectingTransport(
                LocalTransport(store.shards), latency_seconds=0.002
            )
        )
        try:
            responses, stats = serve_all(
                sharded, requests, wave_width=wave_width
            )
        finally:
            sharded.use_transport(LocalTransport(store.shards))

        for response, oracle in zip(responses, oracles):
            np.testing.assert_array_equal(response.predictions, oracle.predictions)
            np.testing.assert_array_equal(response.depths, oracle.depths)
            assert 1 <= response.wave_width <= wave_width
        assert stats.requests_completed == len(requests)
        assert stats.waves_dispatched > 0
        assert stats.wave_members > stats.waves_dispatched
        assert 0.0 < stats.shared_row_fraction <= 1.0
        assert stats.macs_per_request > 0.0

        # Conservation: every response carries its own micro-batch id, so
        # the attributed shares must re-sum to the served MAC totals.
        attributed = sum(
            r.batch_macs.total
            for r in {r.batch_id: r for r in responses}.values()
        )
        assert attributed == pytest.approx(stats.macs.total, rel=1e-12)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_width_one_is_the_pre_wave_path(self, seed):
        sharded = build_sharded(seed, 2)
        requests = zipfian_requests(sharded.store.num_nodes, seed)

        default_config = ServingConfig(
            num_workers=2,
            max_batch_size=REQUEST_SIZE,
            max_wait_ms=1.0,
            cache_capacity=32,
        )
        baseline, base_stats = serve_all(
            sharded, requests, wave_width=1, config=default_config
        )
        width_one, one_stats = serve_all(sharded, requests, wave_width=1)

        for base, response in zip(baseline, width_one):
            np.testing.assert_array_equal(response.predictions, base.predictions)
            np.testing.assert_array_equal(response.depths, base.depths)
            assert response.batch_macs.total == base.batch_macs.total
            assert response.wave_width == 1
        for stats in (base_stats, one_stats):
            assert stats.waves_dispatched == 0
            assert stats.wave_members == 0
            assert stats.shared_row_fraction == 0.0
        assert one_stats.macs.total == base_stats.macs.total
