"""Tests for the adaptive micro-batching controllers.

Policy logic runs on scripted inputs and the virtual-time simulator
(:mod:`repro.serving.simulator`), so every assertion here is exact and
deterministic — no real sleeps, no wall-clock noise.  The end-to-end
bit-equality checks at the bottom run the real :class:`InferenceServer`
under each policy and compare against sequential ``NAIPredictor.predict``.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import ServingConfig
from repro.exceptions import ConfigurationError
from repro.serving import (
    FakeClock,
    InferenceRequest,
    InferenceServer,
    LinearServiceModel,
    MarginalLatencyPolicy,
    MicroBatcher,
    QueuePressurePolicy,
    RequestQueue,
    StaticPolicy,
    build_controller,
    ramp_arrivals,
    simulate_policy,
)


def make_request(request_id, num_nodes=1, at=0.0):
    return InferenceRequest(
        request_id, np.arange(num_nodes, dtype=np.int64), enqueued_at=at
    )


class TestConfigValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(batch_policy="pid")

    def test_ceilings_must_cover_base(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(max_batch_size=64, batch_size_ceiling=32)
        with pytest.raises(ConfigurationError):
            ServingConfig(max_wait_ms=4.0, wait_ms_ceiling=2.0)

    def test_watermarks_must_leave_a_band(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(pressure_widen_depth=2, pressure_shrink_depth=2)

    def test_marginal_latency_needs_an_slo(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(batch_policy="marginal_latency")
        ServingConfig(batch_policy="marginal_latency", latency_slo_ms=50.0)

    def test_build_controller_maps_policies(self):
        assert build_controller(ServingConfig()).name == "static"
        assert (
            build_controller(
                ServingConfig(batch_policy="queue_pressure", batch_size_ceiling=512)
            ).name
            == "queue_pressure"
        )
        assert (
            build_controller(
                ServingConfig(batch_policy="marginal_latency", latency_slo_ms=20.0)
            ).name
            == "marginal_latency"
        )


class TestStaticPolicy:
    def test_constant_limits_and_zero_adjustments(self):
        policy = StaticPolicy(32, 0.002)
        for depth in (0, 1, 50, 1000):
            limits = policy.limits(queue_depth=depth, oldest_wait_seconds=depth * 1.0)
            assert limits.max_batch_size == 32
            assert limits.max_wait_seconds == 0.002
        assert policy.adjustments == 0
        assert policy.describe()["policy"] == "static"


class TestQueuePressurePolicy:
    def make(self, **overrides):
        params = dict(
            base_batch_size=8,
            batch_size_ceiling=64,
            base_wait_seconds=0.002,
            wait_seconds_ceiling=0.008,
            widen_depth=6,
            shrink_depth=1,
            levels=3,
            hold_decisions=0,
        )
        params.update(overrides)
        return QueuePressurePolicy(**params)

    def test_widens_geometrically_to_the_ceiling(self):
        policy = self.make()
        widths = [
            policy.limits(queue_depth=10, oldest_wait_seconds=0.0).max_batch_size
            for _ in range(4)
        ]
        assert widths == [16, 32, 64, 64]  # 8 * 8**(level/3), clamped at 64
        assert policy.level == 3
        assert policy.adjustments == 3  # the fourth decision changed nothing

    def test_wait_budget_interpolates_linearly(self):
        policy = self.make()
        waits = [
            policy.limits(queue_depth=10, oldest_wait_seconds=0.0).max_wait_seconds
            for _ in range(3)
        ]
        assert waits == pytest.approx([0.004, 0.006, 0.008])

    def test_shrinks_when_the_queue_drains(self):
        policy = self.make()
        for _ in range(3):
            policy.limits(queue_depth=10, oldest_wait_seconds=0.0)
        assert policy.level == 3
        widths = [
            policy.limits(queue_depth=0, oldest_wait_seconds=0.0).max_batch_size
            for _ in range(3)
        ]
        assert widths == [32, 16, 8]
        assert policy.level == 0

    def test_hysteresis_band_holds_the_level(self):
        policy = self.make()
        policy.limits(queue_depth=10, oldest_wait_seconds=0.0)
        assert policy.level == 1
        # Depths inside (shrink_depth, widen_depth) change nothing, forever.
        for _ in range(10):
            limits = policy.limits(queue_depth=3, oldest_wait_seconds=0.0)
        assert policy.level == 1
        assert limits.max_batch_size == 16
        assert policy.adjustments == 1

    def test_hold_decisions_cooldown_blocks_flapping(self):
        policy = self.make(hold_decisions=2)
        policy.limits(queue_depth=10, oldest_wait_seconds=0.0)  # widen to 1
        # Two drained decisions land inside the cooldown: level must hold.
        for _ in range(2):
            assert (
                policy.limits(queue_depth=0, oldest_wait_seconds=0.0).max_batch_size
                == 16
            )
        assert policy.level == 1
        # Cooldown spent: the next drained decision shrinks.
        policy.limits(queue_depth=0, oldest_wait_seconds=0.0)
        assert policy.level == 0

    def test_aging_head_is_pressure_too(self):
        policy = self.make()
        # Depth is low, but the head has waited past the current budget.
        limits = policy.limits(queue_depth=3, oldest_wait_seconds=0.010)
        assert limits.max_batch_size == 16
        assert policy.level == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make(batch_size_ceiling=4)
        with pytest.raises(ConfigurationError):
            self.make(shrink_depth=6)
        with pytest.raises(ConfigurationError):
            self.make(levels=0)
        with pytest.raises(ConfigurationError):
            self.make(wait_seconds_ceiling=0.001)


class TestMarginalLatencyPolicy:
    def make(self, slo=3.0, **overrides):
        params = dict(
            slo_seconds=slo,
            base_batch_size=2,
            batch_size_ceiling=64,
            wait_seconds_ceiling=0.25,
        )
        params.update(overrides)
        return MarginalLatencyPolicy(**params)

    def feed_exact_line(self, policy):
        """Samples on t = 0.5 + 0.25·n — dyadic, so the fit is exact."""
        for nodes, seconds in ((2, 1.0), (4, 1.5), (8, 2.5)):
            policy.observe_batch(
                num_nodes=nodes,
                num_requests=1,
                service_seconds=seconds,
                queue_depth=0,
            )

    def test_base_limits_until_the_model_is_usable(self):
        policy = self.make()
        limits = policy.limits(queue_depth=50, oldest_wait_seconds=0.0)
        assert limits.max_batch_size == 2
        # One width observed repeatedly is not a line yet.
        for _ in range(5):
            policy.observe_batch(
                num_nodes=4, num_requests=1, service_seconds=1.5, queue_depth=0
            )
        assert policy.limits(queue_depth=50, oldest_wait_seconds=0.0).max_batch_size == 2

    def test_picks_the_widest_batch_under_the_slo(self):
        policy = self.make(slo=3.0)
        self.feed_exact_line(policy)
        desc = policy.describe()
        assert desc["model"] == {"intercept": 0.5, "slope": 0.25}
        limits = policy.limits(queue_depth=10, oldest_wait_seconds=0.0)
        # 0.5 + 0.25·w <= 3.0  →  w = 10, with zero slack left to wait.
        assert limits.max_batch_size == 10
        assert limits.max_wait_seconds == 0.0

    def test_ceiling_clamp_turns_slack_into_wait(self):
        policy = self.make(slo=3.0, batch_size_ceiling=8)
        self.feed_exact_line(policy)
        limits = policy.limits(queue_depth=10, oldest_wait_seconds=0.0)
        # Clamped at 8 nodes the estimate is 2.5s; 0.5s of SLO slack remains
        # but the configured wait ceiling caps it at 0.25s.
        assert limits.max_batch_size == 8
        assert limits.max_wait_seconds == 0.25

    def test_blown_slo_degrades_to_latency_first(self):
        policy = self.make(slo=0.75)  # below even service(2) = 1.0
        self.feed_exact_line(policy)
        limits = policy.limits(queue_depth=10, oldest_wait_seconds=0.0)
        assert limits.max_batch_size == 2
        assert limits.max_wait_seconds == 0.0

    def test_inverted_model_is_refused(self):
        policy = self.make()
        # Bigger batches measured *faster* — noise; the policy must not
        # conclude that infinite batches are free.
        for nodes, seconds in ((2, 2.0), (8, 1.0)):
            policy.observe_batch(
                num_nodes=nodes,
                num_requests=1,
                service_seconds=seconds,
                queue_depth=0,
            )
        assert policy.limits(queue_depth=10, oldest_wait_seconds=0.0).max_batch_size == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make(slo=0.0)
        with pytest.raises(ConfigurationError):
            self.make(batch_size_ceiling=1)


class TestBatcherControllerIntegration:
    def test_batcher_records_the_granted_limits(self):
        clock = FakeClock()
        queue = RequestQueue(capacity=16, clock=clock)
        batcher = MicroBatcher(queue, controller=StaticPolicy(4, 0.0), clock=clock)
        queue.put(make_request(0, num_nodes=2))
        batch = batcher.next_batch(poll_timeout=0.1)
        assert batch.limits.max_batch_size == 4
        assert batch.limits.max_wait_seconds == 0.0

    def test_legacy_kwargs_build_a_static_policy(self):
        queue = RequestQueue(capacity=4, clock=FakeClock())
        batcher = MicroBatcher(queue, max_batch_size=8, max_wait_seconds=0.5)
        assert batcher.controller.name == "static"
        with pytest.raises(ConfigurationError):
            MicroBatcher(queue)
        with pytest.raises(ConfigurationError):
            MicroBatcher(queue, max_batch_size=8, controller=StaticPolicy(8, 0.0))

    def test_zero_wait_config_still_drains_the_backlog(self):
        """A zero-wait adaptive policy dispatches immediately yet coalesces
        everything already queued — the expired budget stops waiting only."""
        clock = FakeClock()
        queue = RequestQueue(capacity=16, clock=clock)
        policy = QueuePressurePolicy(
            base_batch_size=4,
            batch_size_ceiling=8,
            base_wait_seconds=0.0,
            wait_seconds_ceiling=0.0,
            widen_depth=6,
            shrink_depth=1,
            hold_decisions=0,
        )
        batcher = MicroBatcher(queue, controller=policy, clock=clock)
        for i in range(8):
            queue.put(make_request(i, num_nodes=1, at=clock.now()))
        first = batcher.next_batch(poll_timeout=0.1)
        # Depth 8 >= widen_depth widened the budget before coalescing.
        assert first.num_nodes == policy._limits_at(1).max_batch_size
        assert first.limits.max_wait_seconds == 0.0
        assert clock.now() == 0.0  # dispatched without consuming any time

    def test_single_request_at_the_ceiling_forms_its_own_batch(self):
        clock = FakeClock()
        queue = RequestQueue(capacity=16, clock=clock)
        policy = QueuePressurePolicy(
            base_batch_size=4,
            batch_size_ceiling=16,
            base_wait_seconds=0.0,
            wait_seconds_ceiling=0.0,
            widen_depth=2,
            shrink_depth=0,
            levels=1,
            hold_decisions=0,
        )
        batcher = MicroBatcher(queue, controller=policy, clock=clock)
        # A ceiling-sized request plus a rider: the big one must ride alone.
        queue.put(make_request(0, num_nodes=16, at=0.0))
        queue.put(make_request(1, num_nodes=1, at=0.0))
        first = batcher.next_batch(poll_timeout=0.1)
        assert first.num_requests == 1
        assert first.num_nodes == 16
        assert first.limits.max_batch_size == 16
        second = batcher.next_batch(poll_timeout=0.1)
        assert second.num_requests == 1
        assert second.num_nodes == 1

    def test_controller_swapped_mid_stream(self):
        clock = FakeClock()
        queue = RequestQueue(capacity=32, clock=clock)
        batcher = MicroBatcher(queue, controller=StaticPolicy(2, 0.0), clock=clock)
        for i in range(9):
            queue.put(make_request(i, num_nodes=1, at=clock.now()))
        assert batcher.next_batch(poll_timeout=0.1).num_nodes == 2
        batcher.controller = StaticPolicy(6, 0.0)
        second = batcher.next_batch(poll_timeout=0.1)
        assert second.num_nodes == 6
        assert [r.request_id for r in second.requests] == [2, 3, 4, 5, 6, 7]
        # The remaining id confirms no request was lost or reordered.
        leftover = batcher.next_batch(poll_timeout=0.1)
        assert [r.request_id for r in leftover.requests] == [8]

    def test_drain_pending_during_a_controller_widened_wait(self):
        """Shutdown during a widened coalescing wait must neither hang the
        batcher nor lose the request it already holds."""
        queue = RequestQueue(capacity=8)  # real clock: this test is concurrent
        policy = QueuePressurePolicy(
            base_batch_size=64,
            batch_size_ceiling=128,
            base_wait_seconds=30.0,  # widened wait far beyond the test budget
            wait_seconds_ceiling=60.0,
            widen_depth=2,
            shrink_depth=0,
            hold_decisions=0,
        )
        batcher = MicroBatcher(queue, controller=policy)
        queue.put(make_request(0, num_nodes=1, at=time.perf_counter()))
        queue.put(make_request(1, num_nodes=1, at=time.perf_counter()))
        batches = []
        worker = threading.Thread(
            target=lambda: batches.append(batcher.next_batch(poll_timeout=5.0)),
            daemon=True,
        )
        worker.start()
        deadline = time.perf_counter() + 5.0
        while queue.depth > 0 and time.perf_counter() < deadline:
            time.sleep(0.001)  # wait for the batcher to pull both requests
        queue.close()  # wakes the coalescing wait; the batcher dispatches
        worker.join(5.0)
        assert not worker.is_alive()
        stranded = queue.drain_pending()
        assert stranded == []  # the batcher already held every request
        assert len(batches) == 1 and batches[0] is not None
        assert batches[0].num_requests == 2


SERVICE = LinearServiceModel(overhead_seconds=0.004, per_node_seconds=0.0001)

RAMP = ramp_arrivals(
    idle_requests=20,
    burst_requests=300,
    drain_requests=10,
    idle_gap_seconds=0.005,
    burst_gap_seconds=0.001,
    nodes_per_request=2,
)

SLO_SECONDS = 0.050


def static_controller():
    return StaticPolicy(8, 0.002)


def pressure_controller():
    return QueuePressurePolicy(
        base_batch_size=8,
        batch_size_ceiling=64,
        base_wait_seconds=0.002,
        wait_seconds_ceiling=0.008,
        widen_depth=6,
        shrink_depth=1,
        levels=3,
        hold_decisions=1,
    )


def marginal_controller():
    return MarginalLatencyPolicy(
        slo_seconds=SLO_SECONDS,
        base_batch_size=8,
        batch_size_ceiling=64,
        base_wait_seconds=0.002,
        wait_seconds_ceiling=0.008,
    )


class TestVirtualTimeLoadRamp:
    """The tentpole scenario: a load ramp in exact virtual time.

    The burst offers 2 nodes/ms while the static configuration can serve at
    most 8 nodes per 4.8 ms ≈ 1.67 nodes/ms — a backlog is guaranteed.
    ``QueuePressurePolicy`` must widen toward 64-node batches (6.15
    nodes/ms), clear the burst as it happens, and hold p95 latency under
    the SLO; the static policy pays for the same burst with a queue that
    only drains after the arrivals stop.
    """

    def test_queue_pressure_beats_static_within_the_slo(self):
        static = simulate_policy(static_controller(), RAMP, SERVICE)
        adaptive = simulate_policy(pressure_controller(), RAMP, SERVICE)
        # Same work served...
        assert adaptive.nodes_served == static.nodes_served == 660
        # ...strictly more throughput (the backlog never piles up)...
        assert adaptive.throughput_nodes_per_second > static.throughput_nodes_per_second
        assert adaptive.wall_seconds < static.wall_seconds
        # ...while holding the latency target the static policy blows.
        assert adaptive.latency.p95 <= SLO_SECONDS
        assert static.latency.p95 > SLO_SECONDS
        # The win came from widening: the static policy saturates its 8-node
        # cap while the adaptive one coalesces past it — note the realized
        # widths settle near the efficiency equilibrium (~14 nodes), well
        # below the 64-node budget, because widening *prevents* the very
        # backlog that would fill wider batches.  Once drained it returns to
        # base-width batches.
        assert max(static.batch_widths) == 8
        assert max(adaptive.batch_widths) > 8
        assert adaptive.batch_widths[-1] <= 8
        assert adaptive.controller_adjustments > 0
        assert static.controller_adjustments == 0

    def test_marginal_latency_beats_static_within_the_slo(self):
        static = simulate_policy(static_controller(), RAMP, SERVICE)
        adaptive = simulate_policy(marginal_controller(), RAMP, SERVICE)
        assert adaptive.nodes_served == static.nodes_served
        assert adaptive.throughput_nodes_per_second > static.throughput_nodes_per_second
        assert adaptive.latency.p95 <= SLO_SECONDS
        # The learned cost line grants a 64-node budget (the SLO admits
        # (0.050 - 0.004) / 0.0001 = 460 nodes, clamped to the ceiling), so
        # realized batches coalesce past the static 8-node cap.
        assert max(adaptive.batch_widths) > 8
        assert adaptive.controller_adjustments > 0

    def test_simulation_is_exactly_deterministic(self):
        for build in (static_controller, pressure_controller, marginal_controller):
            first = simulate_policy(build(), RAMP, SERVICE)
            second = simulate_policy(build(), RAMP, SERVICE)
            assert first == second  # byte-identical reports, virtual time


# --------------------------------------------------------------------- #
# End-to-end: real server, every policy, bit-identical results
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def deployed(trained_nai, tiny_dataset):
    predictor = trained_nai.build_predictor(
        policy="distance",
        config=trained_nai.inference_config(
            distance_threshold=trained_nai.suggest_distance_threshold(0.5),
            batch_size=32,
        ),
    )
    predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
    return predictor


def policy_configs():
    base = dict(num_workers=2, max_batch_size=32, max_wait_ms=0.5, cache_capacity=8)
    return {
        "static": ServingConfig(**base),
        "queue_pressure": ServingConfig(
            **base,
            batch_policy="queue_pressure",
            wait_ms_ceiling=4.0,
            pressure_widen_depth=3,
            pressure_shrink_depth=1,
        ),
        "marginal_latency": ServingConfig(
            **base, batch_policy="marginal_latency", latency_slo_ms=100.0
        ),
    }


class TestPolicyBitEquality:
    def test_streaming_workload_is_bit_identical_under_every_policy(
        self, deployed, tiny_dataset
    ):
        """Full-tick streaming requests pin the batch composition (each tick
        fills the width budget exactly), so all three policies must produce
        bit-identical predictions, depths AND per-batch MAC totals — the
        controllers may only move waiting, never results."""
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        ticks = [test_idx[i:i + 32] for i in range(0, 96, 32)] * 3
        sequential = [deployed.predict(tick) for tick in ticks]
        expected_macs = sum(r.macs.total for r in sequential)
        for name, config in policy_configs().items():
            with InferenceServer(deployed, config) as server:
                responses = server.predict_many(ticks, timeout=60.0)
                stats = server.stats()
            assert stats.batch_policy == name
            np.testing.assert_array_equal(
                np.concatenate([r.predictions for r in responses]),
                np.concatenate([r.predictions for r in sequential]),
            )
            np.testing.assert_array_equal(
                np.concatenate([r.depths for r in responses]),
                np.concatenate([r.depths for r in sequential]),
            )
            per_batch = {r.batch_id: r.batch_macs for r in responses}
            served_macs = sum(m.total for m in per_batch.values())
            assert served_macs == pytest.approx(expected_macs, abs=1e-6), name

    def test_widening_changes_batching_but_never_results(
        self, deployed, tiny_dataset
    ):
        """With a real width ceiling the adaptive policy may merge requests
        into wider batches — predictions and depths must stay bit-identical
        (per-node results are batch-independent); MACs may only drop
        (shared supporting subgraphs)."""
        test_idx = np.asarray(tiny_dataset.split.test_idx)[:60]
        requests = [test_idx[i:i + 4] for i in range(0, 60, 4)]
        sequential = [deployed.predict(request) for request in requests]
        config = ServingConfig(
            num_workers=2,
            max_batch_size=8,
            max_wait_ms=1.0,
            cache_capacity=0,
            batch_policy="queue_pressure",
            batch_size_ceiling=32,
            wait_ms_ceiling=8.0,
            pressure_widen_depth=2,
            pressure_shrink_depth=1,
            pressure_hold_decisions=0,
        )
        with InferenceServer(deployed, config) as server:
            responses = server.predict_many(requests, timeout=60.0)
        np.testing.assert_array_equal(
            np.concatenate([r.predictions for r in responses]),
            np.concatenate([r.predictions for r in sequential]),
        )
        np.testing.assert_array_equal(
            np.concatenate([r.depths for r in responses]),
            np.concatenate([r.depths for r in sequential]),
        )
        per_batch = {r.batch_id: r.batch_macs for r in responses}
        served_macs = sum(m.total for m in per_batch.values())
        sequential_macs = sum(r.macs.total for r in sequential)
        assert served_macs <= sequential_macs + 1e-6

    def test_stats_surface_controller_activity(self, deployed, tiny_dataset):
        test_idx = np.asarray(tiny_dataset.split.test_idx)[:64]
        config = policy_configs()["queue_pressure"]
        with InferenceServer(deployed, config) as server:
            server.predict_many([test_idx[i:i + 32] for i in (0, 32)], timeout=60.0)
            stats = server.stats()
        assert stats.batch_policy == "queue_pressure"
        assert stats.batch_width_p50 > 0
        assert stats.batch_width_p95 >= stats.batch_width_p50
        payload = stats.as_dict()
        assert payload["batch_policy"] == "queue_pressure"
        assert payload["controller_adjustments"] == stats.controller_adjustments
        assert payload["batch_width_p95"] == stats.batch_width_p95
