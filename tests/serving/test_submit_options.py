"""One submit surface: ``SubmitOptions`` across server and router.

Both :meth:`repro.serving.InferenceServer.submit` and
:meth:`repro.shard.ShardRouter.submit` accept the same
:class:`~repro.serving.SubmitOptions` — a caller can swap a single server
for a routed fleet without touching call sites.  The legacy keyword
arguments remain as a compatibility shim, but mixing the two spellings in
one call is ambiguous and raises.
"""

import numpy as np
import pytest

from repro.core import NAIConfig, ServingConfig, ShardConfig
from repro.core.distance_nap import DistanceNAP
from repro.exceptions import ConfigurationError
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.models import SGC
from repro.serving import InferenceServer, SubmitOptions
from repro.shard import ShardRouter, ShardedPredictor


@pytest.fixture(scope="module")
def deployed(trained_nai, tiny_dataset):
    predictor = trained_nai.build_predictor(
        policy="distance",
        config=trained_nai.inference_config(
            distance_threshold=trained_nai.suggest_distance_threshold(0.5),
            batch_size=32,
        ),
    )
    predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
    return predictor


@pytest.fixture(scope="module")
def sharded():
    spec = SyntheticGraphSpec(num_nodes=120, num_classes=4, avg_degree=6.0)
    graph, _ = generate_community_graph(spec, rng=3)
    rng = np.random.default_rng(33)
    features = rng.normal(size=(graph.num_nodes, 6)).astype(np.float32)
    classifiers = SGC(6, 4, depth=3, rng=3).make_all_classifiers()
    predictor = ShardedPredictor(
        classifiers,
        policy=DistanceNAP(0.15),
        config=NAIConfig(t_min=1, t_max=3, batch_size=32),
    )
    return predictor.prepare(
        graph,
        features,
        ShardConfig(num_shards=2, strategy="degree_balanced"),
    )


def serving_config(**overrides) -> ServingConfig:
    base = dict(
        num_workers=2, max_batch_size=32, max_wait_ms=1.0, cache_capacity=16
    )
    base.update(overrides)
    return ServingConfig(**base)


class TestServerSubmitOptions:
    def test_options_and_legacy_keywords_are_equivalent(self, deployed):
        ids = np.arange(8)
        with InferenceServer(deployed, serving_config()) as server:
            via_options = server.submit(
                ids, SubmitOptions(timeout=10.0, tenant="acme")
            ).result(timeout=30.0)
            via_keywords = server.submit(ids, timeout=10.0, tenant="acme").result(
                timeout=30.0
            )
        np.testing.assert_array_equal(
            via_options.predictions, via_keywords.predictions
        )
        np.testing.assert_array_equal(via_options.depths, via_keywords.depths)
        assert via_options.tenant == via_keywords.tenant == "acme"

    def test_tenant_defaults_to_none(self, deployed):
        with InferenceServer(deployed, serving_config()) as server:
            response = server.submit(np.arange(4)).result(timeout=30.0)
        assert response.tenant is None

    def test_mixing_options_and_keywords_raises(self, deployed):
        with InferenceServer(deployed, serving_config()) as server:
            with pytest.raises(ConfigurationError):
                server.submit(np.arange(4), SubmitOptions(), timeout=1.0)
            with pytest.raises(ConfigurationError):
                server.submit(np.arange(4), SubmitOptions(), tenant="acme")

    def test_options_are_frozen(self):
        options = SubmitOptions(tenant="acme")
        with pytest.raises(AttributeError):
            options.tenant = "other"


class TestRouterSubmitOptions:
    def test_tenant_propagates_to_every_shard_response(self, sharded):
        router = ShardRouter(sharded, serving_config())
        try:
            ids = np.arange(0, 40, dtype=np.int64)
            routed = router.submit(
                ids, SubmitOptions(timeout=10.0, tenant="acme")
            ).result(timeout=30.0)
            oracle = sharded.predict(ids)
        finally:
            router.close()
        np.testing.assert_array_equal(routed.predictions, oracle.predictions)
        assert routed.num_shards_touched == 2
        assert all(
            response.tenant == "acme"
            for response in routed.per_shard.values()
        )

    def test_legacy_keywords_still_work(self, sharded):
        router = ShardRouter(sharded, serving_config())
        try:
            routed = router.submit(
                np.arange(6, dtype=np.int64), timeout=10.0, tenant="acme"
            ).result(timeout=30.0)
        finally:
            router.close()
        assert all(
            response.tenant == "acme"
            for response in routed.per_shard.values()
        )

    def test_mixing_options_and_keywords_raises(self, sharded):
        router = ShardRouter(sharded, serving_config())
        try:
            with pytest.raises(ConfigurationError):
                router.submit(
                    np.arange(4, dtype=np.int64), SubmitOptions(), timeout=1.0
                )
            with pytest.raises(ConfigurationError):
                router.submit(
                    np.arange(4, dtype=np.int64), SubmitOptions(), tenant="x"
                )
        finally:
            router.close()
