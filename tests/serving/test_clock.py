"""Tests for the injectable serving clock (real and fake)."""

import threading

import pytest

from repro.core.inference import MACBreakdown, TimingBreakdown
from repro.exceptions import ConfigurationError
from repro.serving import MONOTONIC_CLOCK, FakeClock, MonotonicClock, ServingStats


class TestMonotonicClock:
    def test_now_is_monotonic(self):
        clock = MonotonicClock()
        a, b = clock.now(), clock.now()
        assert b >= a

    def test_wait_on_times_out(self):
        clock = MonotonicClock()
        condition = threading.Condition()
        with condition:
            assert clock.wait_on(condition, 0.0) is False

    def test_shared_default_instance(self):
        assert isinstance(MONOTONIC_CLOCK, MonotonicClock)


class TestFakeClock:
    def test_starts_where_told(self):
        assert FakeClock(5.0).now() == 5.0

    def test_advance_and_sleep_move_time(self):
        clock = FakeClock()
        clock.advance(1.5)
        clock.sleep(0.5)
        assert clock.now() == pytest.approx(2.0)
        assert clock.sleeps == 1

    def test_advance_backwards_rejected(self):
        with pytest.raises(ConfigurationError):
            FakeClock().advance(-1.0)

    def test_wait_consumes_virtual_time_and_reports_timeout(self):
        clock = FakeClock()
        condition = threading.Condition()
        with condition:
            assert clock.wait_on(condition, 0.75) is False
        assert clock.now() == pytest.approx(0.75)
        assert clock.waits == 1

    def test_wait_step_caps_the_consumed_time(self):
        clock = FakeClock(max_wait_step=0.1)
        condition = threading.Condition()
        with condition:
            clock.wait_on(condition, 1.0)
        assert clock.now() == pytest.approx(0.1)

    def test_unbounded_wait_rejected(self):
        clock = FakeClock()
        condition = threading.Condition()
        with condition:
            with pytest.raises(ConfigurationError):
                clock.wait_on(condition, None)

    def test_invalid_wait_step_rejected(self):
        with pytest.raises(ConfigurationError):
            FakeClock(max_wait_step=0.0)


class TestStatsOnFakeClock:
    def test_throughput_window_is_exact_in_virtual_time(self):
        """With an injected clock the throughput maths become deterministic:
        100 nodes over a 2-second virtual window is exactly 50 nodes/s."""
        clock = FakeClock()
        stats = ServingStats(clock=clock)
        stats.mark_submission()
        clock.advance(1.0)
        stats.record_batch(
            worker_id=0, num_nodes=40, num_requests=4,
            macs=MACBreakdown(), timings=TimingBreakdown(),
            latencies=[0.5] * 4, queue_waits=[0.1] * 4,
        )
        clock.advance(1.0)
        stats.record_batch(
            worker_id=1, num_nodes=60, num_requests=6,
            macs=MACBreakdown(), timings=TimingBreakdown(),
            latencies=[0.5] * 6, queue_waits=[0.1] * 6,
        )
        snapshot = stats.snapshot()
        assert snapshot.nodes_completed == 100
        assert snapshot.throughput_nodes_per_second == pytest.approx(50.0)
        assert snapshot.latency.p50 == pytest.approx(0.5)
