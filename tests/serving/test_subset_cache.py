"""Subset-hit lookups on the subgraph cache: ledger and recency semantics.

``SubgraphCache.find_superset`` serves a wave whose union key missed by
slicing a previously cached superset bundle.  The regression surface:

* the match must go through the **peek** path — the caller already
  counted the exact-key miss, so a subset hit must not touch the
  hit/miss ledger (the torn-accounting bug this file pins down);
* it must still refresh the matched entry's recency, or hot supersets
  get evicted under their own subset traffic;
* matches are tallied in the separate ``subset_hits`` counter, which the
  serving stats surface as ``cache_subset_hits``;
* the sliced bundle is bit-identical to a fresh build for the subset.
"""

import numpy as np
import pytest

from repro.core import NAIConfig, ServingConfig, ShardConfig
from repro.core.distance_nap import DistanceNAP
from repro.exceptions import ConfigurationError
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.graph.sampling import slice_support_bundle, support_cache_key
from repro.models import SGC
from repro.serving import InferenceServer, SubgraphCache
from repro.shard import ShardedPredictor

DEPTH = 3


@pytest.fixture(scope="module")
def sharded():
    spec = SyntheticGraphSpec(
        num_nodes=210, num_classes=4, avg_degree=6.0, degree_exponent=2.2
    )
    graph, _ = generate_community_graph(spec, rng=5)
    rng = np.random.default_rng(55)
    features = rng.normal(size=(graph.num_nodes, 6)).astype(np.float32)
    classifiers = SGC(6, 4, depth=DEPTH, rng=5).make_all_classifiers()
    predictor = ShardedPredictor(
        classifiers,
        policy=DistanceNAP(0.15),
        config=NAIConfig(t_min=1, t_max=DEPTH, batch_size=32),
    )
    return predictor.prepare(
        graph,
        features,
        ShardConfig(num_shards=2, strategy="degree_balanced"),
    )


@pytest.fixture()
def engine(sharded):
    return sharded.make_engine(home_shard=0)


def bundle_for(engine, targets):
    return engine.build_support(np.sort(np.asarray(targets, dtype=np.int64)))


class TestFindSuperset:
    def test_miss_on_empty_cache(self):
        cache = SubgraphCache(capacity=4)
        assert cache.find_superset(np.arange(4, dtype=np.int64), DEPTH) is None
        counters = cache.counters()
        assert counters.subset_hits == 0
        assert counters.hits == 0 and counters.misses == 0

    def test_subset_hit_leaves_hit_miss_ledger_untouched(self, engine):
        cache = SubgraphCache(capacity=4)
        superset = np.arange(0, 24, dtype=np.int64)
        cache.put(support_cache_key(superset, DEPTH), bundle_for(engine, superset))
        before = cache.counters()

        subset = np.arange(4, 12, dtype=np.int64)
        match = cache.find_superset(subset, DEPTH)
        assert match is not None
        matched_targets, bundle = match
        np.testing.assert_array_equal(matched_targets, superset)

        after = cache.counters()
        # The torn-accounting regression: a subset hit follows a miss the
        # dispatcher already recorded, so it must not count again.
        assert after.hits == before.hits
        assert after.misses == before.misses
        assert after.subset_hits == before.subset_hits + 1

    def test_equal_size_and_depth_mismatch_do_not_match(self, engine):
        cache = SubgraphCache(capacity=4)
        targets = np.arange(0, 16, dtype=np.int64)
        cache.put(support_cache_key(targets, DEPTH), bundle_for(engine, targets))
        # Exact-size candidates are exact keys: get() already ruled them out.
        assert cache.find_superset(targets, DEPTH) is None
        # A different depth is a different supporting subgraph entirely.
        assert cache.find_superset(targets[:8], DEPTH - 1) is None
        # A non-subset shares no entry.
        assert cache.find_superset(np.array([200, 205], dtype=np.int64), DEPTH) is None

    def test_subset_hit_refreshes_recency(self, engine):
        cache = SubgraphCache(capacity=2)
        superset = np.arange(0, 24, dtype=np.int64)
        other = np.arange(100, 116, dtype=np.int64)
        superset_key = support_cache_key(superset, DEPTH)
        cache.put(superset_key, bundle_for(engine, superset))
        cache.put(support_cache_key(other, DEPTH), bundle_for(engine, other))

        # The subset hit must move the superset to MRU: the next insert
        # then evicts `other`, not the superset.
        assert cache.find_superset(np.arange(2, 10, dtype=np.int64), DEPTH)
        third = np.arange(150, 166, dtype=np.int64)
        cache.put(support_cache_key(third, DEPTH), bundle_for(engine, third))
        assert cache.peek(superset_key) is not None
        assert cache.peek(support_cache_key(other, DEPTH)) is None

    def test_sliced_bundle_is_bit_identical_to_fresh_build(self, engine):
        rng = np.random.default_rng(17)
        superset = np.sort(rng.permutation(210)[:32].astype(np.int64))
        subset = np.sort(rng.choice(superset, size=10, replace=False))

        sliced = slice_support_bundle(bundle_for(engine, superset), subset, DEPTH)
        fresh = bundle_for(engine, subset)
        via_slice = engine.run_batch(subset, bundle=sliced)
        via_fresh = engine.run_batch(subset, bundle=fresh)
        np.testing.assert_array_equal(via_slice.predictions, via_fresh.predictions)
        np.testing.assert_array_equal(via_slice.depths, via_fresh.depths)
        assert via_slice.macs.total == via_fresh.macs.total


class TestServerSurface:
    def test_subset_hits_surface_in_serving_stats(self, sharded, engine):
        config = ServingConfig(
            num_workers=1,
            max_batch_size=8,
            max_wait_ms=0.5,
            cache_capacity=16,
            wave_width=2,
            cache_subset_lookups=True,
        )
        with InferenceServer(sharded.shard_view(0), config) as server:
            superset = np.arange(0, 24, dtype=np.int64)
            server.cache.put(
                support_cache_key(superset, DEPTH), bundle_for(engine, superset)
            )
            assert server.cache.find_superset(
                np.arange(4, 12, dtype=np.int64), DEPTH
            )
            stats = server.stats()
        assert stats.cache_subset_hits == 1

    def test_subset_lookups_require_a_cache(self, sharded):
        with pytest.raises(ConfigurationError):
            InferenceServer(
                sharded.shard_view(0),
                ServingConfig(cache_capacity=0, cache_subset_lookups=True),
            )
