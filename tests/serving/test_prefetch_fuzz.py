"""Prefetch correctness fuzz: bit-identity across transports and faults.

The pipeline moves *where* support bundles are built, never *what* is
built — so for every combination of shard count, transport backend,
injected latency and kill schedule, prefetch-enabled serving must be
bit-identical (predictions, exit depths, MAC totals) to both serialized
serving and the :class:`~repro.shard.ShardedPredictor` oracle, and an
aborted shutdown must cancel pending prefetches without stranding a
single request.
"""

import time

import numpy as np
import pytest

from repro.core import NAIConfig, ServingConfig, ShardConfig
from repro.core.distance_nap import DistanceNAP
from repro.exceptions import ServingError
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.models import SGC
from repro.serving import InferenceServer
from repro.shard import ShardedPredictor
from repro.transport import (
    FaultInjectingTransport,
    LocalTransport,
    ReplicatedTransport,
    RetryPolicy,
)

#: Zero-backoff retries: kill windows are healed by round, not by time, so
#: the sweep never sleeps through a real backoff.
FAST_RETRY = RetryPolicy(
    max_attempts=3,
    backoff_base_seconds=0.0,
    backoff_cap_seconds=0.0,
    jitter_fraction=0.0,
)


def build_sharded(seed: int, num_shards: int) -> ShardedPredictor:
    spec = SyntheticGraphSpec(
        num_nodes=210, num_classes=4, avg_degree=6.0, degree_exponent=2.2
    )
    graph, _ = generate_community_graph(spec, rng=seed)
    rng = np.random.default_rng(seed + 50)
    features = rng.normal(size=(graph.num_nodes, 6)).astype(np.float32)
    classifiers = SGC(6, 4, depth=3, rng=seed).make_all_classifiers()
    predictor = ShardedPredictor(
        classifiers,
        policy=DistanceNAP(0.15),
        config=NAIConfig(t_min=1, t_max=3, batch_size=32),
    )
    return predictor.prepare(
        graph,
        features,
        ShardConfig(num_shards=num_shards, strategy="degree_balanced"),
    )


def make_transport(kind: str, store):
    if kind == "local":
        return LocalTransport(store.shards)
    if kind == "latency":
        return FaultInjectingTransport(
            LocalTransport(store.shards), latency_seconds=0.002
        )
    if kind == "replicated-kills":
        rails = [
            FaultInjectingTransport(
                LocalTransport(store.shards), replica_index=index
            )
            for index in range(2)
        ]
        # Deterministic kill schedule: rail 0 loses shard 0 for rounds
        # [1, 4), rail 1 loses the last shard for rounds [2, 5).
        rails[0].schedule_kill(0, 1, 4, replica_index=0)
        rails[1].schedule_kill(store.num_shards - 1, 2, 5, replica_index=1)
        return ReplicatedTransport(rails, retry_policy=FAST_RETRY)
    raise AssertionError(kind)


def serving_config(prefetch_depth: int, **overrides) -> ServingConfig:
    base = dict(
        num_workers=2,
        max_batch_size=32,
        max_wait_ms=1.0,
        cache_capacity=32,
        prefetch_depth=prefetch_depth,
    )
    base.update(overrides)
    return ServingConfig(**base)


def serve_all(sharded, batches, *, prefetch_depth: int):
    with InferenceServer(
        sharded.shard_view(0), serving_config(prefetch_depth)
    ) as server:
        responses = server.predict_many(batches, timeout=60.0)
        stats = server.stats()
    return responses, stats


def flatten(responses):
    predictions = np.concatenate([r.predictions for r in responses])
    depths = np.concatenate([r.depths for r in responses])
    macs = sum(r.batch_macs.total for r in {r.batch_id: r for r in responses}.values())
    return predictions, depths, macs


class TestPrefetchFuzzEquivalence:
    @pytest.mark.parametrize("transport_kind", ["local", "latency", "replicated-kills"])
    @pytest.mark.parametrize("num_shards", [1, 2])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_bit_identical_across_transports_and_faults(
        self, seed, num_shards, transport_kind
    ):
        sharded = build_sharded(seed, num_shards)
        store = sharded.store
        rng = np.random.default_rng(seed + 9)
        targets = rng.permutation(store.num_nodes)[:96]
        # Batches mirror the oracle's internal batch size (32): MAC totals
        # are batching-dependent, so identical batching is part of the
        # bit-identity contract.
        batches = [targets[start : start + 32] for start in range(0, 96, 32)]
        oracle = sharded.predict(targets)

        store.use_transport(make_transport(transport_kind, store))
        try:
            serialized, _ = serve_all(sharded, batches, prefetch_depth=0)
            # Fresh transport: kill schedules are consumed by round index,
            # and both runs must see the same fault script.
            store.use_transport(make_transport(transport_kind, store))
            prefetched, stats = serve_all(sharded, batches, prefetch_depth=2)
        finally:
            store.use_transport(LocalTransport(store.shards))

        base_pred, base_depth, base_macs = flatten(serialized)
        pre_pred, pre_depth, pre_macs = flatten(prefetched)
        np.testing.assert_array_equal(pre_pred, base_pred)
        np.testing.assert_array_equal(pre_depth, base_depth)
        assert pre_macs == pytest.approx(base_macs, abs=1e-6)
        np.testing.assert_array_equal(pre_pred, oracle.predictions)
        np.testing.assert_array_equal(pre_depth, oracle.depths)
        assert pre_macs == pytest.approx(oracle.macs.total, abs=1e-6)
        # Distinct node-sets on a cold cache: the pipeline actually ran.
        assert stats.prefetch_issued > 0
        assert stats.prefetch_issued == stats.prefetch_completed


class TestPrefetchShutdownFuzz:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_abort_cancels_pending_prefetches_without_stranding(self, seed):
        sharded = build_sharded(seed, 2)
        store = sharded.store
        # Slow fetches (per-round injected latency) so micro-batches pile
        # up behind the pipeline's depth-bounded fetch slots at abort time.
        store.use_transport(
            FaultInjectingTransport(
                LocalTransport(store.shards), latency_seconds=0.05
            )
        )
        rng = np.random.default_rng(seed)
        server = InferenceServer(
            sharded.shard_view(0),
            serving_config(2, max_wait_ms=0.0, queue_capacity=64),
        )
        try:
            handles = [
                server.submit(rng.permutation(store.num_nodes)[:16])
                for _ in range(12)
            ]
            # Give the dispatcher a beat to hand fetches to the pipeline
            # (each fetch needs >= 0.15s of injected latency), then abort
            # mid-flight.
            deadline = time.monotonic() + 2.0
            while (
                server.stats().prefetch_issued == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            server.close(abort=True)
            served = failed = 0
            for handle in handles:
                try:
                    handle.result(timeout=30.0)
                    served += 1
                except ServingError:
                    failed += 1
            assert served + failed == len(handles)  # nothing stranded
            stats = server.stats()
            # Every handed-off fetch resolved exactly one way.
            assert stats.prefetch_issued == (
                stats.prefetch_completed + stats.prefetch_cancelled
            )
            assert stats.requests_completed == served
            assert stats.prefetch_issued > 0  # the pipeline was mid-flight
        finally:
            store.use_transport(LocalTransport(store.shards))
