"""ClusterBuilder: the one fluent entry point for fleet configuration.

Covers build-path validation (prepared vs unprepared predictors, the
transport/replicated exclusivity, single-shot reuse), the wiring each
declaration performs (transport, replica rails, tiered features, wave
width), served equivalence against the :class:`ShardedPredictor` oracle,
and the deprecation shims the builder supersedes.
"""

import numpy as np
import pytest

from repro.core import NAIConfig, ServingConfig, ShardConfig
from repro.core.distance_nap import DistanceNAP
from repro.exceptions import ConfigurationError
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.models import SGC
from repro.serving import Cluster, ClusterBuilder
from repro.transport import FaultInjectingTransport, LocalTransport


def fresh_parts(seed: int = 4):
    spec = SyntheticGraphSpec(num_nodes=150, num_classes=4, avg_degree=6.0)
    graph, _ = generate_community_graph(spec, rng=seed)
    rng = np.random.default_rng(seed + 40)
    features = rng.normal(size=(graph.num_nodes, 6)).astype(np.float32)
    classifiers = SGC(6, 4, depth=3, rng=seed).make_all_classifiers()
    return graph, features, classifiers


def fresh_predictor(seed: int = 4):
    from repro.shard import ShardedPredictor

    graph, features, classifiers = fresh_parts(seed)
    predictor = ShardedPredictor(
        classifiers,
        policy=DistanceNAP(0.15),
        config=NAIConfig(t_min=1, t_max=3, batch_size=32),
    )
    return predictor, graph, features


def serving_config(**overrides) -> ServingConfig:
    base = dict(
        num_workers=2, max_batch_size=32, max_wait_ms=1.0, cache_capacity=16
    )
    base.update(overrides)
    return ServingConfig(**base)


class TestBuildPaths:
    def test_unprepared_predictor_builds_and_serves(self):
        predictor, graph, features = fresh_predictor()
        cluster = (
            ClusterBuilder(predictor, serving_config())
            .graph(graph, features)
            .shards(2)
            .build()
        )
        assert isinstance(cluster, Cluster)
        ids = np.arange(0, 48, dtype=np.int64)
        with cluster:
            routed = cluster.submit(ids).result(timeout=30.0)
        oracle = predictor.predict(ids)
        np.testing.assert_array_equal(routed.predictions, oracle.predictions)
        np.testing.assert_array_equal(routed.depths, oracle.depths)

    def test_prepared_predictor_needs_no_graph(self):
        predictor, graph, features = fresh_predictor()
        predictor.prepare(graph, features, ShardConfig(num_shards=2))
        with ClusterBuilder(predictor, serving_config()).build() as cluster:
            assert cluster.predictor is predictor
            assert len(cluster.servers) == 2

    def test_unprepared_without_graph_or_shards_raises(self):
        predictor, graph, features = fresh_predictor()
        with pytest.raises(ConfigurationError):
            ClusterBuilder(predictor).build()
        with pytest.raises(ConfigurationError):
            ClusterBuilder(predictor).graph(graph, features).build()

    def test_prepared_with_graph_raises(self):
        predictor, graph, features = fresh_predictor()
        predictor.prepare(graph, features, ShardConfig(num_shards=2))
        with pytest.raises(ConfigurationError):
            ClusterBuilder(predictor).graph(graph, features).shards(2).build()

    def test_transport_and_replicated_are_mutually_exclusive(self):
        predictor, graph, features = fresh_predictor()
        builder = (
            ClusterBuilder(predictor)
            .graph(graph, features)
            .shards(2)
            .transport(lambda store: LocalTransport(store.shards))
            .replicated(rails=2)
        )
        with pytest.raises(ConfigurationError):
            builder.build()

    def test_build_predictor_skips_routing_and_consumes_the_builder(self):
        predictor, graph, features = fresh_predictor()
        builder = (
            ClusterBuilder(predictor)
            .graph(graph, features)
            .shards(2)
            .replicated(rails=lambda store: [LocalTransport(store.shards)])
        )
        built = builder.build_predictor()
        assert built is predictor
        assert predictor.prepared
        assert len(predictor.store.transport.rails) == 1
        ids = np.arange(0, 32, dtype=np.int64)
        assert predictor.predict(ids).predictions.shape == ids.shape
        with pytest.raises(ConfigurationError):
            builder.build()

    def test_builder_is_single_shot(self):
        predictor, graph, features = fresh_predictor()
        builder = (
            ClusterBuilder(predictor, serving_config())
            .graph(graph, features)
            .shards(2)
        )
        with builder.build():
            pass
        with pytest.raises(ConfigurationError):
            builder.build()


class TestDeclarationWiring:
    def test_transport_callable_receives_the_store(self):
        predictor, graph, features = fresh_predictor()
        cluster = (
            ClusterBuilder(predictor, serving_config())
            .graph(graph, features)
            .shards(2)
            .transport(
                lambda store: FaultInjectingTransport(
                    LocalTransport(store.shards), latency_seconds=0.0
                )
            )
            .build()
        )
        with cluster:
            assert isinstance(cluster.store.transport, FaultInjectingTransport)

    def test_replicated_int_builds_that_many_rails(self):
        predictor, graph, features = fresh_predictor()
        cluster = (
            ClusterBuilder(predictor, serving_config())
            .graph(graph, features)
            .shards(2)
            .replicated(rails=2)
            .build()
        )
        ids = np.arange(0, 48, dtype=np.int64)
        with cluster:
            assert len(cluster.store.transport.rails) == 2
            routed = cluster.submit(ids).result(timeout=30.0)
        oracle = predictor.predict(ids)
        np.testing.assert_array_equal(routed.predictions, oracle.predictions)

    def test_tiered_features_cap_residency(self):
        predictor, graph, features = fresh_predictor()
        budget = features.nbytes // 4
        cluster = (
            ClusterBuilder(predictor, serving_config())
            .graph(graph, features)
            .shards(2)
            .tiered_features(budget)
            .build()
        )
        ids = np.arange(0, 48, dtype=np.int64)
        with cluster:
            routed = cluster.submit(ids).result(timeout=30.0)
            report = cluster.store.memory_report()
        assert report["feature_peak_resident_nbytes"] <= budget
        oracle = predictor.predict(ids)
        np.testing.assert_array_equal(routed.predictions, oracle.predictions)

    def test_wave_sets_the_serving_width(self):
        predictor, graph, features = fresh_predictor()
        cluster = (
            ClusterBuilder(predictor, serving_config())
            .graph(graph, features)
            .shards(2)
            .wave(4)
            .build()
        )
        with cluster:
            assert all(
                server.config.wave_width == 4
                for server in cluster.servers.values()
            )


class TestDeprecatedShims:
    def test_store_mutators_warn_but_delegate(self):
        predictor, graph, features = fresh_predictor()
        predictor.prepare(graph, features, ShardConfig(num_shards=2))
        store = predictor.store
        with pytest.warns(DeprecationWarning, match="ClusterBuilder"):
            store.use_transport(LocalTransport(store.shards))
        with pytest.warns(DeprecationWarning, match="ClusterBuilder"):
            store.use_replicated_transport()
        with pytest.warns(DeprecationWarning, match="ClusterBuilder"):
            store.use_tiered_features(features.nbytes)
        ids = np.arange(0, 32, dtype=np.int64)
        result = predictor.predict(ids)
        assert result.predictions.shape == ids.shape
