"""Tests for the supporting-subgraph LRU cache and bundle reuse."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.graph.sampling import SupportBundle, build_support_bundle, support_cache_key
from repro.serving import SubgraphCache


@pytest.fixture(scope="module")
def deployed(trained_nai, tiny_dataset):
    predictor = trained_nai.build_predictor(policy="distance")
    predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
    return predictor


def bundle_for(deployed, batch) -> SupportBundle:
    return build_support_bundle(
        deployed._graph,
        deployed._a_hat,
        deployed._features,
        batch,
        deployed.config.t_max,
    )


class TestCacheKey:
    def test_key_is_order_insensitive(self):
        # Canonical keys: any permutation of the same multiset shares one
        # entry (the cached bundle is rebased per use via with_target_order).
        a = support_cache_key(np.array([1, 2, 3]), depth=3)
        b = support_cache_key(np.array([3, 2, 1]), depth=3)
        assert a == b

    def test_key_distinguishes_multisets(self):
        assert support_cache_key(np.array([1, 2, 2]), 3) != support_cache_key(
            np.array([1, 1, 2]), 3
        )
        assert support_cache_key(np.array([1, 2]), 3) != support_cache_key(
            np.array([1, 2, 2]), 3
        )

    def test_key_depends_on_depth(self):
        ids = np.array([1, 2, 3])
        assert support_cache_key(ids, 2) != support_cache_key(ids, 3)

    def test_identical_batches_share_a_key(self):
        assert support_cache_key(np.array([4, 5]), 2) == support_cache_key(
            np.array([4, 5]), 2
        )


class TestCanonicalHitPath:
    """Permuted repeats of a node-set must hit and serve identical results."""

    def test_permuted_batch_shares_the_cache_entry(self, deployed, tiny_dataset):
        cache = SubgraphCache(4)
        batch = tiny_dataset.split.test_idx[:24]
        permuted = np.random.default_rng(3).permutation(batch)
        depth = deployed.config.t_max
        assert cache.get(cache.key_for(batch, depth)) is None  # cold miss
        from repro.graph.sampling import canonical_order

        sorted_ids, _ = canonical_order(batch)
        cache.put(cache.key_for(batch, depth), bundle_for(deployed, sorted_ids))
        assert cache.get(cache.key_for(permuted, depth)) is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_rebased_bundle_gives_bit_identical_results(self, deployed, tiny_dataset):
        from repro.graph.sampling import canonical_order

        engine = deployed.make_engine()
        batch = tiny_dataset.split.test_idx[:24]
        permuted = np.random.default_rng(5).permutation(batch)
        # Canonical bundle built once (what the dispatcher caches)...
        sorted_ids, rank = canonical_order(permuted)
        canonical_bundle = bundle_for(deployed, sorted_ids)
        rebased = canonical_bundle.with_target_order(rank)
        # ...must reproduce a from-scratch run of the permuted order exactly.
        fresh = engine.run_batch(permuted)
        replayed = engine.run_batch(permuted, bundle=rebased)
        assert np.array_equal(replayed.predictions, fresh.predictions)
        assert np.array_equal(replayed.depths, fresh.depths)
        assert replayed.macs.total == fresh.macs.total

    def test_with_target_order_validates_length(self, deployed, tiny_dataset):
        from repro.exceptions import GraphConstructionError

        bundle = bundle_for(deployed, tiny_dataset.split.test_idx[:8])
        with pytest.raises(GraphConstructionError):
            bundle.with_target_order(np.arange(3))

    def test_with_target_order_shares_arrays(self, deployed, tiny_dataset):
        bundle = bundle_for(deployed, tiny_dataset.split.test_idx[:8])
        view = bundle.with_target_order(np.arange(8)[::-1].copy())
        assert view.data is bundle.data
        assert view.local_features is bundle.local_features
        assert view.support.node_ids is bundle.support.node_ids


class TestSubgraphCacheLRU:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SubgraphCache(0)

    def test_miss_then_hit_accounting(self):
        cache = SubgraphCache(4)
        key = support_cache_key(np.array([1]), 1)
        assert cache.get(key) is None
        cache.put(key, "bundle-stub")
        assert cache.get(key) == "bundle-stub"
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = SubgraphCache(2)
        keys = [support_cache_key(np.array([i]), 1) for i in range(3)]
        cache.put(keys[0], "a")
        cache.put(keys[1], "b")
        cache.get(keys[0])  # refresh: key 1 becomes least recently used
        cache.put(keys[2], "c")
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) == "a"
        assert cache.get(keys[2]) == "c"
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_clear_empties_entries_but_keeps_counters(self):
        cache = SubgraphCache(2)
        key = support_cache_key(np.array([7]), 1)
        cache.put(key, "x")
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestBundleReuse:
    def test_bundle_replay_gives_identical_results(self, deployed, tiny_dataset):
        """run_batch with a cached bundle must be bit-identical to a cold run."""
        batch = np.asarray(tiny_dataset.split.test_idx[:25])
        engine = deployed.make_engine()
        cold = engine.run_batch(batch)
        bundle = bundle_for(deployed, batch)
        for _ in range(2):  # replaying twice also proves bundles stay pristine
            warm = engine.run_batch(batch, bundle=bundle)
            np.testing.assert_array_equal(warm.predictions, cold.predictions)
            np.testing.assert_array_equal(warm.depths, cold.depths)
            assert warm.macs.total == pytest.approx(cold.macs.total, abs=1e-9)

    def test_bundle_replay_on_sibling_engine(self, deployed, tiny_dataset):
        """Bundles built by one engine are valid on any sibling engine."""
        batch = np.asarray(tiny_dataset.split.test_idx[:25])
        bundle = deployed.make_engine().build_support(batch)
        sibling = deployed.make_engine()
        cold = deployed.make_engine().run_batch(batch)
        warm = sibling.run_batch(batch, bundle=bundle)
        np.testing.assert_array_equal(warm.predictions, cold.predictions)
        np.testing.assert_array_equal(warm.depths, cold.depths)

    def test_replay_skips_sampling_time(self, deployed, tiny_dataset):
        batch = np.asarray(tiny_dataset.split.test_idx[:25])
        engine = deployed.make_engine()
        cold = engine.run_batch(batch)
        warm = engine.run_batch(batch, bundle=bundle_for(deployed, batch))
        assert cold.timings.sampling > 0
        assert warm.timings.sampling == 0.0

    def test_bundle_nbytes_positive(self, deployed, tiny_dataset):
        bundle = bundle_for(deployed, np.asarray(tiny_dataset.split.test_idx[:10]))
        assert bundle.nbytes > 0
        assert bundle.num_local >= 10

    def test_bundle_drops_graph_sized_lookup(self, deployed, tiny_dataset):
        """Cached bundles must cost O(subgraph), not O(num_nodes): the
        global→local lookup is only needed during extraction and is dropped
        before the bundle is stored."""
        bundle = bundle_for(deployed, np.asarray(tiny_dataset.split.test_idx[:10]))
        assert bundle.support.global_to_local is None

    def test_reference_engine_rejects_bundles(self, trained_nai, tiny_dataset):
        predictor = trained_nai.build_predictor(
            policy="none", config=trained_nai.inference_config(engine="reference")
        )
        predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
        batch = np.asarray(tiny_dataset.split.test_idx[:5])
        bundle = bundle_for(predictor, batch)
        with pytest.raises(ConfigurationError):
            predictor.make_engine().run_batch(batch, bundle=bundle)


class TestPeek:
    def test_peek_refreshes_recency_without_counting(self):
        cache = SubgraphCache(2)
        keys = [support_cache_key(np.array([i]), 1) for i in range(3)]
        cache.put(keys[0], "a")
        cache.put(keys[1], "b")
        assert cache.peek(keys[0]) == "a"      # no hit recorded...
        assert cache.peek(keys[2]) is None     # ...and no miss either
        assert (cache.hits, cache.misses) == (0, 0)
        cache.put(keys[2], "c")                # ...but recency did refresh:
        assert cache.peek(keys[1]) is None     # key 1 was the LRU victim
        assert cache.peek(keys[0]) == "a"


class TestConsistentCounters:
    def test_counters_snapshot_is_internally_consistent(self):
        cache = SubgraphCache(4)
        keys = [support_cache_key(np.array([i]), 1) for i in range(8)]
        for key in keys:
            cache.get(key)
            cache.put(key, "x")
        snapshot = cache.counters()
        assert snapshot.lookups == snapshot.hits + snapshot.misses
        assert snapshot.misses == 8
        assert snapshot.evictions == 4
        assert snapshot.entries == 4
        assert snapshot.hit_rate == 0.0

    def test_counters_stay_consistent_under_concurrent_access(self):
        """Regression: stats() used to read hits/misses/entries one field at
        a time, so a lookup landing between the reads produced snapshots
        where hits + misses != lookups. counters() reads under one lock."""
        import threading

        cache = SubgraphCache(8)
        keys = [support_cache_key(np.array([i]), 1) for i in range(32)]
        stop = threading.Event()
        torn = []

        def hammer(seed):
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                key = keys[int(rng.integers(len(keys)))]
                if cache.get(key) is None:
                    cache.put(key, seed)

        def snapshot_reader():
            while not stop.is_set():
                counters = cache.counters()
                if counters.lookups != counters.hits + counters.misses:
                    torn.append(counters)
                if counters.entries > 8:
                    torn.append(counters)

        workers = [
            threading.Thread(target=hammer, args=(seed,), daemon=True)
            for seed in range(4)
        ] + [threading.Thread(target=snapshot_reader, daemon=True)]
        for worker in workers:
            worker.start()
        import time

        time.sleep(0.5)
        stop.set()
        for worker in workers:
            worker.join(timeout=5.0)
        assert torn == []
        final = cache.counters()
        assert final.lookups == final.hits + final.misses > 0
