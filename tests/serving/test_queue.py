"""Tests for the bounded request queue and the dynamic micro-batcher."""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import BackpressureError, ConfigurationError, ServingError
from repro.serving import InferenceRequest, MicroBatcher, RequestQueue


def make_request(request_id: int, num_nodes: int = 1) -> InferenceRequest:
    return InferenceRequest(request_id, np.arange(num_nodes, dtype=np.int64))


class TestInferenceRequest:
    def test_rejects_empty_node_ids(self):
        with pytest.raises(ConfigurationError):
            InferenceRequest(0, np.array([], dtype=np.int64))

    def test_rejects_2d_node_ids(self):
        with pytest.raises(ConfigurationError):
            InferenceRequest(0, np.zeros((2, 2), dtype=np.int64))

    def test_result_times_out_until_fulfilled(self):
        request = make_request(0)
        with pytest.raises(ServingError):
            request.result(timeout=0.01)
        assert not request.done()

    def test_result_raises_recorded_failure(self):
        request = make_request(0)
        request._fail(BackpressureError("shed"))
        assert request.done()
        with pytest.raises(BackpressureError):
            request.result(timeout=1.0)


class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue(capacity=4)
        for i in range(3):
            queue.put(make_request(i))
        assert [queue.pop(0.01).request_id for _ in range(3)] == [0, 1, 2]
        assert queue.pop(timeout=0.01) is None

    def test_reject_policy_raises_and_counts(self):
        queue = RequestQueue(capacity=1, overflow_policy="reject")
        queue.put(make_request(0))
        with pytest.raises(BackpressureError):
            queue.put(make_request(1))
        assert queue.rejected == 1
        assert queue.depth == 1

    def test_shed_oldest_policy_fails_the_victim(self):
        queue = RequestQueue(capacity=2, overflow_policy="shed_oldest")
        victims = []
        queue.on_shed = victims.append
        first, second, third = make_request(0), make_request(1), make_request(2)
        queue.put(first)
        queue.put(second)
        queue.put(third)
        assert queue.shed == 1
        assert victims == [first]
        with pytest.raises(BackpressureError):
            first.result(timeout=0.1)
        assert [queue.pop(0.01).request_id for _ in range(2)] == [1, 2]

    def test_block_policy_times_out(self):
        queue = RequestQueue(capacity=1, overflow_policy="block")
        queue.put(make_request(0))
        with pytest.raises(BackpressureError):
            queue.put(make_request(1), timeout=0.02)

    def test_block_timeout_bounds_total_wait_across_wakeups(self):
        """A wakeup that finds the queue refilled must not re-arm the timeout."""
        queue = RequestQueue(capacity=1, overflow_policy="block")
        queue.put(make_request(0))
        stop = threading.Event()

        def churn():
            # Keep the queue full: every pop is immediately replaced, so the
            # blocked producer keeps waking up to a full queue.
            refill_id = 100
            nonlocal_refill = [refill_id]
            while not stop.is_set():
                popped = queue.pop(timeout=0.01)
                if popped is not None:
                    nonlocal_refill[0] += 1
                    queue.put(make_request(nonlocal_refill[0]))
                time.sleep(0.005)

        thread = threading.Thread(target=churn, daemon=True)
        thread.start()
        start = time.perf_counter()
        try:
            with pytest.raises(BackpressureError):
                queue.put(make_request(1), timeout=0.1)
        finally:
            stop.set()
            thread.join(2.0)
        assert time.perf_counter() - start < 1.0

    def test_block_policy_unblocks_when_space_frees(self):
        queue = RequestQueue(capacity=1, overflow_policy="block")
        queue.put(make_request(0))
        done = threading.Event()

        def producer():
            queue.put(make_request(1), timeout=2.0)
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.02)
        assert not done.is_set()
        assert queue.pop(0.1).request_id == 0
        assert done.wait(2.0)
        assert queue.pop(0.1).request_id == 1

    def test_pop_within_respects_node_budget(self):
        queue = RequestQueue(capacity=4)
        queue.put(make_request(0, num_nodes=5))
        status, request = queue.pop_within(node_budget=4, timeout=0.01)
        assert (status, request) == ("too_big", None)
        status, request = queue.pop_within(node_budget=5, timeout=0.01)
        assert status == "ok" and request.request_id == 0

    def test_close_wakes_consumers(self):
        queue = RequestQueue(capacity=2)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(queue.pop(timeout=5.0)), daemon=True
        )
        thread.start()
        time.sleep(0.02)
        queue.close()
        thread.join(2.0)
        assert results == [None]
        with pytest.raises(ServingError):
            queue.put(make_request(0))

    def test_max_depth_high_water_mark(self):
        queue = RequestQueue(capacity=8)
        for i in range(5):
            queue.put(make_request(i))
        queue.pop(0.01)
        assert queue.max_depth == 5


class TestMicroBatcher:
    def test_returns_none_when_idle(self):
        queue = RequestQueue(capacity=4)
        batcher = MicroBatcher(queue, max_batch_size=8, max_wait_seconds=0.0)
        assert batcher.next_batch(poll_timeout=0.01) is None

    def test_coalesces_up_to_node_budget(self):
        queue = RequestQueue(capacity=16)
        for i in range(6):
            queue.put(make_request(i, num_nodes=3))
        batcher = MicroBatcher(queue, max_batch_size=10, max_wait_seconds=0.5)
        batch = batcher.next_batch(poll_timeout=0.1)
        # 3 + 3 + 3 fits, the fourth request would overflow the budget.
        assert batch.num_requests == 3
        assert batch.num_nodes == 9
        assert [r.request_id for r in batch.requests] == [0, 1, 2]
        assert batch.request_slice(1) == slice(3, 6)
        np.testing.assert_array_equal(
            batch.node_ids, np.concatenate([r.node_ids for r in batch.requests])
        )

    def test_oversized_request_forms_its_own_batch(self):
        queue = RequestQueue(capacity=4)
        queue.put(make_request(0, num_nodes=20))
        batcher = MicroBatcher(queue, max_batch_size=8, max_wait_seconds=0.0)
        batch = batcher.next_batch(poll_timeout=0.1)
        assert batch.num_requests == 1
        assert batch.num_nodes == 20

    def test_zero_wait_dispatches_immediately(self):
        queue = RequestQueue(capacity=4)
        queue.put(make_request(0, num_nodes=1))
        batcher = MicroBatcher(queue, max_batch_size=100, max_wait_seconds=0.0)
        batch = batcher.next_batch(poll_timeout=0.1)
        assert batch.num_requests == 1

    def test_expired_budget_still_drains_the_backlog(self):
        """An expired latency budget stops waiting, not draining: everything
        already queued is still coalesced up to the node budget (the whole
        point of batching under backlog)."""
        queue = RequestQueue(capacity=16)
        for i in range(6):
            queue.put(make_request(i, num_nodes=1))
        time.sleep(0.01)  # every request is now past a 0-second budget
        batcher = MicroBatcher(queue, max_batch_size=4, max_wait_seconds=0.0)
        first = batcher.next_batch(poll_timeout=0.1)
        second = batcher.next_batch(poll_timeout=0.1)
        assert first.num_requests == 4  # full node budget, not a 1-request batch
        assert second.num_requests == 2
        assert queue.depth == 0

    def test_waits_out_the_latency_budget_for_stragglers(self):
        queue = RequestQueue(capacity=4)
        queue.put(make_request(0, num_nodes=1))
        batcher = MicroBatcher(queue, max_batch_size=100, max_wait_seconds=0.25)

        def straggler():
            time.sleep(0.05)
            queue.put(make_request(1, num_nodes=1))

        thread = threading.Thread(target=straggler, daemon=True)
        thread.start()
        batch = batcher.next_batch(poll_timeout=0.1)
        thread.join()
        assert batch.num_requests == 2

    def test_batch_ids_are_sequential(self):
        queue = RequestQueue(capacity=4)
        batcher = MicroBatcher(queue, max_batch_size=4, max_wait_seconds=0.0)
        queue.put(make_request(0))
        first = batcher.next_batch(poll_timeout=0.1)
        queue.put(make_request(1))
        second = batcher.next_batch(poll_timeout=0.1)
        assert (first.batch_id, second.batch_id) == (0, 1)
