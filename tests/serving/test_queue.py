"""Tests for the bounded request queue and the dynamic micro-batcher.

Time-dependent behavior runs on a :class:`~repro.serving.FakeClock`: timed
waits consume deterministic virtual time instead of blocking, so there is
not a single ``time.sleep`` in this file and every timeout assertion is
exact.  Only the genuinely concurrent tests (a producer thread unblocking,
close waking a consumer) use real threads — event-driven, still sleep-free.
"""

import threading

import numpy as np
import pytest

from repro.exceptions import BackpressureError, ConfigurationError, ServingError
from repro.serving import FakeClock, InferenceRequest, MicroBatcher, RequestQueue


def make_request(
    request_id: int, num_nodes: int = 1, at: float | None = None
) -> InferenceRequest:
    return InferenceRequest(
        request_id, np.arange(num_nodes, dtype=np.int64), enqueued_at=at
    )


class TestInferenceRequest:
    def test_rejects_empty_node_ids(self):
        with pytest.raises(ConfigurationError):
            InferenceRequest(0, np.array([], dtype=np.int64))

    def test_rejects_2d_node_ids(self):
        with pytest.raises(ConfigurationError):
            InferenceRequest(0, np.zeros((2, 2), dtype=np.int64))

    def test_result_times_out_until_fulfilled(self):
        request = make_request(0)
        with pytest.raises(ServingError):
            request.result(timeout=0.01)
        assert not request.done()

    def test_result_raises_recorded_failure(self):
        request = make_request(0)
        request._fail(BackpressureError("shed"))
        assert request.done()
        with pytest.raises(BackpressureError):
            request.result(timeout=1.0)

    def test_explicit_enqueue_stamp_is_kept(self):
        assert make_request(0, at=42.5).enqueued_at == 42.5


class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue(capacity=4, clock=FakeClock())
        for i in range(3):
            queue.put(make_request(i))
        assert [queue.pop(0.01).request_id for _ in range(3)] == [0, 1, 2]
        assert queue.pop(timeout=0.01) is None

    def test_reject_policy_raises_and_counts(self):
        queue = RequestQueue(capacity=1, overflow_policy="reject")
        queue.put(make_request(0))
        with pytest.raises(BackpressureError):
            queue.put(make_request(1))
        assert queue.rejected == 1
        assert queue.depth == 1

    def test_shed_oldest_policy_fails_the_victim(self):
        queue = RequestQueue(capacity=2, overflow_policy="shed_oldest")
        victims = []
        queue.on_shed = victims.append
        first, second, third = make_request(0), make_request(1), make_request(2)
        queue.put(first)
        queue.put(second)
        queue.put(third)
        assert queue.shed == 1
        assert victims == [first]
        with pytest.raises(BackpressureError):
            first.result(timeout=0.1)
        assert [queue.pop(0.01).request_id for _ in range(2)] == [1, 2]

    def test_block_policy_times_out(self):
        clock = FakeClock()
        queue = RequestQueue(capacity=1, overflow_policy="block", clock=clock)
        queue.put(make_request(0))
        with pytest.raises(BackpressureError):
            queue.put(make_request(1), timeout=0.02)
        # The wait consumed exactly the virtual timeout — no real blocking.
        assert clock.now() == pytest.approx(0.02)

    def test_block_timeout_bounds_total_wait_across_wakeups(self):
        """A wakeup that finds the queue still full must resume with the
        *remaining* time only, never re-arm the full timeout."""
        clock = FakeClock(max_wait_step=0.03)
        queue = RequestQueue(capacity=1, overflow_policy="block", clock=clock)
        queue.put(make_request(0))
        with pytest.raises(BackpressureError):
            queue.put(make_request(1), timeout=0.1)
        # Several spurious wakeups happened, but the total virtual wait is
        # the timeout plus at most one wait quantum.
        assert clock.waits >= 3
        assert clock.now() <= 0.1 + 0.03 + 1e-12
        assert queue.rejected == 1

    def test_block_policy_unblocks_when_space_frees(self):
        queue = RequestQueue(capacity=1, overflow_policy="block")
        queue.put(make_request(0))
        done = threading.Event()

        def producer():
            queue.put(make_request(1), timeout=5.0)
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        # Popping the head frees capacity and wakes the blocked producer
        # (or lets it through immediately if it had not blocked yet).
        assert queue.pop(2.0).request_id == 0
        assert done.wait(5.0)
        assert queue.pop(2.0).request_id == 1
        thread.join(2.0)

    def test_pop_within_respects_node_budget(self):
        queue = RequestQueue(capacity=4, clock=FakeClock())
        queue.put(make_request(0, num_nodes=5))
        status, request = queue.pop_within(node_budget=4, timeout=0.01)
        assert (status, request) == ("too_big", None)
        status, request = queue.pop_within(node_budget=5, timeout=0.01)
        assert status == "ok" and request.request_id == 0

    def test_pop_within_times_out_on_fake_clock(self):
        clock = FakeClock()
        queue = RequestQueue(capacity=4, clock=clock)
        status, request = queue.pop_within(node_budget=8, timeout=0.5)
        assert (status, request) == ("empty", None)
        assert clock.now() == pytest.approx(0.5)

    def test_close_wakes_consumers(self):
        queue = RequestQueue(capacity=2)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(queue.pop(timeout=5.0)), daemon=True
        )
        thread.start()
        queue.close()
        thread.join(2.0)
        # Whether the consumer blocked first or saw the closed queue
        # directly, it returns None promptly instead of waiting out 5s.
        assert results == [None]
        with pytest.raises(ServingError):
            queue.put(make_request(0))

    def test_max_depth_high_water_mark(self):
        queue = RequestQueue(capacity=8)
        for i in range(5):
            queue.put(make_request(i))
        queue.pop(0.01)
        assert queue.max_depth == 5


class TestShutdown:
    def test_drain_pending_fails_requests_with_descriptive_error(self):
        """Pending requests must fail immediately at shutdown — callers in
        ``result(timeout=...)`` get the reason, not a timeout."""
        queue = RequestQueue(capacity=4, clock=FakeClock())
        first, second = make_request(7), make_request(8)
        queue.put(first)
        queue.put(second)
        queue.close()
        drained = queue.drain_pending()
        assert [r.request_id for r in drained] == [7, 8]
        assert queue.depth == 0
        assert first.done() and second.done()
        with pytest.raises(ServingError) as excinfo:
            first.result(timeout=0.0)  # done already — returns without waiting
        assert "shut down" in str(excinfo.value)
        assert "7" in str(excinfo.value)

    def test_drain_pending_uses_caller_error_when_given(self):
        queue = RequestQueue(capacity=2)
        request = make_request(3)
        queue.put(request)
        queue.drain_pending(ServingError("server shut down before dispatch"))
        with pytest.raises(ServingError, match="before dispatch"):
            request.result(timeout=0.0)

    def test_drain_pending_on_empty_queue_is_a_noop(self):
        queue = RequestQueue(capacity=2)
        assert queue.drain_pending() == []

    def test_close_alone_keeps_items_poppable_for_the_dispatcher(self):
        """close() stops intake but the dispatcher still drains the backlog;
        only drain_pending fails what is left."""
        queue = RequestQueue(capacity=4, clock=FakeClock())
        queue.put(make_request(0))
        queue.close()
        popped = queue.pop(0.01)
        assert popped.request_id == 0
        assert not popped.done()


class TestMicroBatcher:
    def test_returns_none_when_idle(self):
        clock = FakeClock()
        queue = RequestQueue(capacity=4, clock=clock)
        batcher = MicroBatcher(queue, max_batch_size=8, max_wait_seconds=0.0)
        assert batcher.next_batch(poll_timeout=0.01) is None
        assert clock.now() == pytest.approx(0.01)

    def test_coalesces_up_to_node_budget(self):
        clock = FakeClock()
        queue = RequestQueue(capacity=16, clock=clock)
        for i in range(6):
            queue.put(make_request(i, num_nodes=3, at=clock.now()))
        batcher = MicroBatcher(queue, max_batch_size=10, max_wait_seconds=0.5)
        batch = batcher.next_batch(poll_timeout=0.1)
        # 3 + 3 + 3 fits, the fourth request would overflow the budget.
        assert batch.num_requests == 3
        assert batch.num_nodes == 9
        assert [r.request_id for r in batch.requests] == [0, 1, 2]
        assert batch.request_slice(1) == slice(3, 6)
        np.testing.assert_array_equal(
            batch.node_ids, np.concatenate([r.node_ids for r in batch.requests])
        )

    def test_oversized_request_forms_its_own_batch(self):
        queue = RequestQueue(capacity=4, clock=FakeClock())
        queue.put(make_request(0, num_nodes=20, at=0.0))
        batcher = MicroBatcher(queue, max_batch_size=8, max_wait_seconds=0.0)
        batch = batcher.next_batch(poll_timeout=0.1)
        assert batch.num_requests == 1
        assert batch.num_nodes == 20

    def test_zero_wait_dispatches_immediately(self):
        queue = RequestQueue(capacity=4, clock=FakeClock())
        queue.put(make_request(0, num_nodes=1, at=0.0))
        batcher = MicroBatcher(queue, max_batch_size=100, max_wait_seconds=0.0)
        batch = batcher.next_batch(poll_timeout=0.1)
        assert batch.num_requests == 1

    def test_expired_budget_still_drains_the_backlog(self):
        """An expired latency budget stops waiting, not draining: everything
        already queued is still coalesced up to the node budget (the whole
        point of batching under backlog)."""
        clock = FakeClock()
        queue = RequestQueue(capacity=16, clock=clock)
        for i in range(6):
            queue.put(make_request(i, num_nodes=1, at=clock.now()))
        clock.advance(0.01)  # every request is now past a 0-second budget
        batcher = MicroBatcher(queue, max_batch_size=4, max_wait_seconds=0.0)
        first = batcher.next_batch(poll_timeout=0.1)
        second = batcher.next_batch(poll_timeout=0.1)
        assert first.num_requests == 4  # full node budget, not a 1-request batch
        assert second.num_requests == 2
        assert queue.depth == 0

    def test_waits_out_the_latency_budget_for_stragglers(self):
        """A straggler that arrives within the oldest request's latency
        budget joins the batch; the batcher then waits out the remaining
        budget (in virtual time) before dispatching."""
        clock = FakeClock()
        queue = RequestQueue(capacity=4, clock=clock)
        queue.put(make_request(0, num_nodes=1, at=0.0))
        queue.put(make_request(1, num_nodes=1, at=0.05))  # the straggler
        clock.advance(0.06)
        batcher = MicroBatcher(queue, max_batch_size=100, max_wait_seconds=0.25)
        batch = batcher.next_batch(poll_timeout=0.1)
        assert batch.num_requests == 2
        # The budget of the *oldest* member bounds the batch: the batcher
        # waited (virtually) until exactly enqueue-of-0 + 0.25 seconds.
        assert clock.now() == pytest.approx(0.25)

    def test_batch_ids_are_sequential(self):
        queue = RequestQueue(capacity=4, clock=FakeClock())
        batcher = MicroBatcher(queue, max_batch_size=4, max_wait_seconds=0.0)
        queue.put(make_request(0, at=0.0))
        first = batcher.next_batch(poll_timeout=0.1)
        queue.put(make_request(1, at=0.0))
        second = batcher.next_batch(poll_timeout=0.1)
        assert (first.batch_id, second.batch_id) == (0, 1)
