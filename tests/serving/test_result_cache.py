"""Tests for the opt-in result-level response cache."""

import numpy as np
import pytest

from repro.core import ServingConfig
from repro.exceptions import ConfigurationError
from repro.core.inference import MACBreakdown, TimingBreakdown
from repro.serving import CachedResult, InferenceServer, ResultCache


@pytest.fixture(scope="module")
def deployed(trained_nai, tiny_dataset):
    predictor = trained_nai.build_predictor(policy="distance")
    predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
    return predictor


def _entry(n=4):
    return CachedResult(
        predictions=np.arange(n),
        depths=np.ones(n, dtype=np.int64),
        macs=MACBreakdown(propagation=10.0),
        timings=TimingBreakdown(propagation=0.1),
    )


class TestResultCacheLRU:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ResultCache(0)

    def test_miss_then_hit(self):
        cache = ResultCache(2)
        key = cache.key_for(np.array([3, 1, 2]), 4)
        assert cache.get(key) is None
        cache.put(key, _entry())
        # Any permutation maps to the same canonical key.
        assert cache.get(cache.key_for(np.array([1, 2, 3]), 4)) is not None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_beyond_capacity(self):
        cache = ResultCache(2)
        for ids in ([1], [2], [3]):
            cache.put(cache.key_for(np.array(ids), 1), _entry(1))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(cache.key_for(np.array([1]), 1)) is None

    def test_clear(self):
        cache = ResultCache(2)
        cache.put(cache.key_for(np.array([1]), 1), _entry(1))
        cache.clear()
        assert len(cache) == 0


class TestServedReplay:
    def _serve(self, deployed, batches, **overrides):
        config = ServingConfig(
            num_workers=2,
            max_batch_size=64,
            max_wait_ms=0.0,
            cache_capacity=0,
            result_cache_capacity=8,
            **overrides,
        )
        with InferenceServer(deployed, config) as server:
            responses = [
                server.submit(batch).result(timeout=300.0) for batch in batches
            ]
            stats = server.stats()
        return responses, stats

    def test_replay_is_bit_identical(self, deployed, tiny_dataset):
        batch = tiny_dataset.split.test_idx[:32]
        permuted = np.random.default_rng(0).permutation(batch)
        sequential = [deployed.predict(ids) for ids in (batch, permuted, batch)]
        responses, stats = self._serve(deployed, [batch, permuted, batch])
        for response, reference in zip(responses, sequential):
            assert np.array_equal(response.predictions, reference.predictions)
            assert np.array_equal(response.depths, reference.depths)
        assert not responses[0].result_cache_hit
        assert responses[1].result_cache_hit  # permuted repeat replays
        assert responses[2].result_cache_hit
        assert stats.result_cache_hits == 2
        assert stats.result_cache_misses == 1

    def test_replayed_macs_accounted_separately(self, deployed, tiny_dataset):
        batch = tiny_dataset.split.test_idx[:16]
        _, stats = self._serve(deployed, [batch, batch, batch])
        # One computed execution, two replays of its recorded breakdown.
        assert stats.batches_replayed == 2
        assert stats.requests_replayed == 2
        assert stats.replayed_macs.total == pytest.approx(2 * stats.macs.total)
        payload = stats.as_dict()
        assert payload["computed_macs"] == stats.macs.total
        assert payload["replayed_macs"] == stats.replayed_macs.total
        # Replays still complete requests and count toward throughput.
        assert stats.requests_completed == 3
        assert stats.nodes_completed == 3 * batch.shape[0]

    def test_disabled_by_default(self, deployed, tiny_dataset):
        batch = tiny_dataset.split.test_idx[:8]
        config = ServingConfig(num_workers=1, max_wait_ms=0.0, cache_capacity=0)
        with InferenceServer(deployed, config) as server:
            assert server.result_cache is None
            server.submit(batch).result(timeout=300.0)
            server.submit(batch).result(timeout=300.0)
            stats = server.stats()
        assert stats.result_cache_hits == 0
        assert stats.batches_replayed == 0

    def test_different_node_sets_do_not_collide(self, deployed, tiny_dataset):
        a = tiny_dataset.split.test_idx[:8]
        b = tiny_dataset.split.test_idx[8:16]
        sequential = [deployed.predict(ids) for ids in (a, b)]
        responses, stats = self._serve(deployed, [a, b])
        assert stats.result_cache_hits == 0
        for response, reference in zip(responses, sequential):
            assert np.array_equal(response.predictions, reference.predictions)
