"""End-to-end tests for the InferenceServer (queue → batcher → pool → stats)."""

import numpy as np
import pytest

from repro.core import ServingConfig
from repro.exceptions import BackpressureError, ConfigurationError, ServingError
from repro.graph.sampling import batch_iterator
from repro.serving import InferenceServer


@pytest.fixture(scope="module")
def deployed(trained_nai, tiny_dataset):
    predictor = trained_nai.build_predictor(
        policy="distance",
        config=trained_nai.inference_config(
            distance_threshold=trained_nai.suggest_distance_threshold(0.5),
            batch_size=32,
        ),
    )
    predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
    return predictor


@pytest.fixture(scope="module")
def sequential(deployed, tiny_dataset):
    return deployed.predict(np.asarray(tiny_dataset.split.test_idx))


def serving_config(**overrides) -> ServingConfig:
    base = dict(
        num_workers=3, max_batch_size=32, max_wait_ms=1.0, cache_capacity=16
    )
    base.update(overrides)
    return ServingConfig(**base)


class TestServerValidation:
    def test_requires_prepared_predictor(self, trained_nai):
        with pytest.raises(ServingError):
            InferenceServer(trained_nai.build_predictor(policy="none"))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(num_workers=0)
        with pytest.raises(ConfigurationError):
            ServingConfig(backend="fiber")
        with pytest.raises(ConfigurationError):
            ServingConfig(overflow_policy="drop")
        with pytest.raises(ConfigurationError):
            ServingConfig(max_wait_ms=-1)

    def test_submit_after_close_raises(self, deployed):
        server = InferenceServer(deployed, serving_config())
        server.close()
        with pytest.raises(ServingError):
            server.submit(np.array([0]))


class TestServedEquivalence:
    def test_same_batches_give_bit_identical_results(
        self, deployed, sequential, tiny_dataset
    ):
        """Server responses must reproduce NAIPredictor.predict exactly."""
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        ticks = batch_iterator(test_idx, 32)
        with InferenceServer(deployed, serving_config()) as server:
            responses = server.predict_many(ticks)
        predictions = np.concatenate([r.predictions for r in responses])
        depths = np.concatenate([r.depths for r in responses])
        np.testing.assert_array_equal(predictions, sequential.predictions)
        np.testing.assert_array_equal(depths, sequential.depths)
        per_batch = {r.batch_id: r.batch_macs for r in responses}
        macs = sum(m.total for m in per_batch.values())
        assert macs == pytest.approx(sequential.macs.total, abs=1e-6)

    def test_coalesced_single_node_requests_match_sequential(
        self, deployed, sequential, tiny_dataset
    ):
        """Micro-batching single-node requests must not change any output."""
        test_idx = np.asarray(tiny_dataset.split.test_idx)[:40]
        with InferenceServer(
            deployed, serving_config(max_batch_size=16, max_wait_ms=20.0)
        ) as server:
            responses = server.predict_many([np.array([n]) for n in test_idx])
            batched = {r.batch_num_requests for r in responses}
        predictions = np.concatenate([r.predictions for r in responses])
        depths = np.concatenate([r.depths for r in responses])
        np.testing.assert_array_equal(predictions, sequential.predictions[:40])
        np.testing.assert_array_equal(depths, sequential.depths[:40])
        assert max(batched) > 1  # coalescing actually happened

    def test_recurring_batches_hit_the_cache(self, deployed, tiny_dataset):
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        ticks = batch_iterator(test_idx, 32) * 3
        with InferenceServer(deployed, serving_config()) as server:
            responses = server.predict_many(ticks)
            stats = server.stats()
        assert stats.cache_hits > 0
        assert stats.cache_hit_rate > 0.5
        assert any(r.cache_hit for r in responses)
        # Cache-hit batches skip sampling entirely.
        hit_sampling = [
            r.batch_timings.sampling for r in responses if r.cache_hit
        ]
        assert hit_sampling and max(hit_sampling) == 0.0


class TestServingStats:
    def test_snapshot_counters(self, deployed, tiny_dataset):
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        ticks = batch_iterator(test_idx, 32)
        with InferenceServer(deployed, serving_config()) as server:
            server.predict_many(ticks)
            stats = server.stats()
        assert stats.requests_completed == len(ticks)
        assert stats.nodes_completed == test_idx.shape[0]
        assert stats.batches_dispatched >= 1
        assert stats.latency.count == len(ticks)
        assert stats.latency.p99 >= stats.latency.p50 > 0
        assert stats.throughput_nodes_per_second >= 0
        assert sum(w.nodes for w in stats.per_worker.values()) == stats.nodes_completed
        payload = stats.as_dict()
        assert payload["requests_completed"] == len(ticks)
        assert payload["latency_ms"]["p50"] > 0

    def test_per_worker_breakdowns_merge_to_totals(self, deployed, tiny_dataset):
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        with InferenceServer(deployed, serving_config(cache_capacity=0)) as server:
            server.predict_many(batch_iterator(test_idx, 32))
            stats = server.stats()
        merged = sum((w.macs.total for w in stats.per_worker.values()))
        assert merged == pytest.approx(stats.macs.total, abs=1e-9)


class TestDispatcherResilience:
    @pytest.mark.parametrize("cache_capacity", [16, 0])
    def test_invalid_node_ids_fail_only_their_request(
        self, deployed, tiny_dataset, cache_capacity
    ):
        """A malformed request must not kill the dispatcher or hang close().

        With the cache enabled the out-of-range id surfaces in the
        dispatcher's bundle build; without it, in the worker — either way
        only the offending request fails and the server keeps serving.
        """
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        with InferenceServer(
            deployed, serving_config(cache_capacity=cache_capacity, max_wait_ms=0.0)
        ) as server:
            # Await each response before the next submit so the malformed
            # request cannot be coalesced with a healthy one (a shared
            # micro-batch fails as a unit, by design).
            bad = server.submit(np.array([10**9]))
            with pytest.raises(Exception) as excinfo:
                bad.result(timeout=10.0)
            assert "out of range" in str(excinfo.value)
            response = server.submit(test_idx[:8]).result(timeout=10.0)
            assert response.predictions.shape == (8,)
            late = server.submit(test_idx[8:16]).result(timeout=10.0)
            assert late.predictions.shape == (8,)
            stats = server.stats()
        assert stats.requests_failed == 1
        assert stats.requests_completed == 2


class TestBackpressure:
    def test_reject_policy_surfaces_to_submitter(self, deployed, tiny_dataset):
        config = serving_config(
            queue_capacity=1, overflow_policy="reject", max_wait_ms=50.0,
            num_workers=1,
        )
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        with InferenceServer(deployed, config) as server:
            rejected = 0
            handles = []
            for start in range(0, 64):
                try:
                    handles.append(server.submit(test_idx[start:start + 1]))
                except BackpressureError:
                    rejected += 1
            for handle in handles:
                handle.result(timeout=10.0)
            stats = server.stats()
        assert rejected == stats.requests_rejected
        # Accepted requests all completed despite the pressure.
        assert stats.requests_completed == len(handles)

    def test_shed_oldest_fails_the_oldest_request(self, deployed, tiny_dataset):
        config = serving_config(
            queue_capacity=1, overflow_policy="shed_oldest", max_wait_ms=50.0,
            num_workers=1,
        )
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        with InferenceServer(deployed, config) as server:
            handles = [server.submit(test_idx[i:i + 1]) for i in range(32)]
            outcomes = {"served": 0, "shed": 0}
            for handle in handles:
                try:
                    handle.result(timeout=10.0)
                    outcomes["served"] += 1
                except BackpressureError:
                    outcomes["shed"] += 1
            stats = server.stats()
        assert outcomes["shed"] == stats.requests_shed
        assert outcomes["served"] == stats.requests_completed
        assert outcomes["served"] + outcomes["shed"] == 32


class TestProcessBackend:
    def test_process_pool_matches_sequential(self, deployed, sequential, tiny_dataset):
        pytest.importorskip("multiprocessing")
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        config = serving_config(backend="process", num_workers=2, cache_capacity=16)
        with InferenceServer(deployed, config) as server:
            assert server.cache is None  # bundles do not cross the fork boundary
            responses = server.predict_many(batch_iterator(test_idx, 32), timeout=60.0)
        predictions = np.concatenate([r.predictions for r in responses])
        np.testing.assert_array_equal(predictions, sequential.predictions)
