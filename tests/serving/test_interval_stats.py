"""Interval (delta) windows on ServingStats, driven in virtual time."""

import pytest

from repro.core.inference import MACBreakdown, TimingBreakdown
from repro.serving import FakeClock, ServingStats


def _record(stats, *, nodes=10, requests=2, latencies=(0.01, 0.02), macs=100.0):
    stats.record_batch(
        worker_id=0,
        num_nodes=nodes,
        num_requests=requests,
        macs=MACBreakdown(propagation=macs),
        timings=TimingBreakdown(propagation=0.001),
        latencies=list(latencies),
        queue_waits=[0.001] * len(latencies),
    )


class TestIntervalSnapshot:
    def test_interval_counters_and_throughput_are_exact(self):
        clock = FakeClock()
        stats = ServingStats(clock=clock)
        _record(stats, nodes=10, requests=2, latencies=(0.01, 0.02))
        _record(stats, nodes=30, requests=4, latencies=(0.03, 0.04, 0.05, 0.06))
        clock.advance(8.0)
        interval = stats.interval_snapshot()
        assert interval.requests_completed == 6
        assert interval.nodes_completed == 40
        assert interval.batches_dispatched == 2
        assert interval.avg_batch_nodes == pytest.approx(20.0)
        assert interval.avg_batch_requests == pytest.approx(3.0)
        assert interval.throughput_nodes_per_second == pytest.approx(40 / 8)
        assert interval.latency.count == 6
        assert interval.latency.max == pytest.approx(0.06)
        assert interval.macs.total == pytest.approx(200.0)

    def test_reset_true_makes_back_to_back_calls_a_delta_stream(self):
        clock = FakeClock()
        stats = ServingStats(clock=clock)
        _record(stats, nodes=10)
        clock.advance(5.0)
        first = stats.interval_snapshot()
        assert first.nodes_completed == 10
        # The default reset opened a fresh window at t=5: only what lands
        # after that shows up in the next interval.
        _record(stats, nodes=7, requests=1, latencies=(0.09,))
        clock.advance(2.0)
        second = stats.interval_snapshot()
        assert second.nodes_completed == 7
        assert second.latency.count == 1
        assert second.throughput_nodes_per_second == pytest.approx(7 / 2)

    def test_reset_false_keeps_the_window_open(self):
        clock = FakeClock()
        stats = ServingStats(clock=clock)
        _record(stats, nodes=10)
        clock.advance(5.0)
        peek = stats.interval_snapshot(reset=False)
        again = stats.interval_snapshot(reset=False)
        assert peek.nodes_completed == again.nodes_completed == 10
        assert again.throughput_nodes_per_second == pytest.approx(2.0)

    def test_empty_window_reads_zeros_not_division_errors(self):
        clock = FakeClock()
        stats = ServingStats(clock=clock)
        interval = stats.interval_snapshot()  # zero elapsed, zero events
        assert interval.requests_completed == 0
        assert interval.batches_dispatched == 0
        assert interval.avg_batch_nodes == 0.0
        assert interval.throughput_nodes_per_second == 0.0
        assert interval.latency.count == 0
        assert interval.latency.p95 == 0.0
        assert interval.macs.total == 0.0

    def test_reset_window_is_idempotent_and_clears_pending_deltas(self):
        clock = FakeClock()
        stats = ServingStats(clock=clock)
        _record(stats, nodes=10)
        clock.advance(3.0)
        stats.reset_window()
        stats.reset_window()
        clock.advance(1.0)
        interval = stats.interval_snapshot()
        assert interval.nodes_completed == 0
        assert interval.throughput_nodes_per_second == 0.0

    def test_cumulative_snapshot_is_untouched_by_interval_resets(self):
        clock = FakeClock()
        stats = ServingStats(clock=clock)
        _record(stats, nodes=10, requests=2)
        clock.advance(5.0)
        stats.interval_snapshot()
        stats.reset_window()
        cumulative = stats.snapshot()
        assert cumulative.requests_completed == 2
        assert cumulative.nodes_completed == 10
        assert cumulative.macs.total == pytest.approx(100.0)
        assert cumulative.latency.count == 2

    def test_failures_and_replays_are_interval_accounted(self):
        clock = FakeClock()
        stats = ServingStats(clock=clock)
        stats.record_failure(3)
        stats.record_replayed_batch(
            num_nodes=5,
            num_requests=1,
            macs=MACBreakdown(propagation=50.0),
            latencies=[0.002],
            queue_waits=[0.0],
        )
        clock.advance(1.0)
        interval = stats.interval_snapshot()
        assert interval.requests_failed == 3
        assert interval.requests_replayed == 1
        assert interval.nodes_replayed == 5
        assert interval.batches_replayed == 1
        # Replays complete requests but execute no worker MACs.
        assert interval.requests_completed == 1
        assert interval.macs.total == 0.0
        assert interval.replayed_macs.total == pytest.approx(50.0)
        follow_up = stats.interval_snapshot()
        assert follow_up.requests_failed == 0
        assert follow_up.requests_replayed == 0

    def test_interval_latency_samples_are_non_destructive(self):
        clock = FakeClock()
        stats = ServingStats(clock=clock)
        _record(stats, latencies=(0.01, 0.02))
        assert stats.interval_latency_samples() == (0.01, 0.02)
        assert stats.interval_latency_samples() == (0.01, 0.02)  # still there
        clock.advance(1.0)
        stats.interval_snapshot()  # default reset consumes the interval
        assert stats.interval_latency_samples() == ()
