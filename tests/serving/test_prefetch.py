"""Prefetch pipeline: overlap accounting, lifecycle, and served equivalence."""

import threading

import numpy as np
import pytest

from repro.core import ServingConfig
from repro.exceptions import ConfigurationError, ServingError
from repro.graph.sampling import batch_iterator
from repro.serving import (
    BusyTracker,
    InferenceServer,
    PrefetchPipeline,
    PrefetchTask,
)
from repro.serving.clock import FakeClock


@pytest.fixture(scope="module")
def deployed(trained_nai, tiny_dataset):
    predictor = trained_nai.build_predictor(
        policy="distance",
        config=trained_nai.inference_config(
            distance_threshold=trained_nai.suggest_distance_threshold(0.5),
            batch_size=32,
        ),
    )
    predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
    return predictor


@pytest.fixture(scope="module")
def sequential(deployed, tiny_dataset):
    return deployed.predict(np.asarray(tiny_dataset.split.test_idx))


def serving_config(**overrides) -> ServingConfig:
    base = dict(
        num_workers=3,
        max_batch_size=32,
        max_wait_ms=1.0,
        cache_capacity=16,
        prefetch_depth=2,
    )
    base.update(overrides)
    return ServingConfig(**base)


def task_for(batch_id: int) -> PrefetchTask:
    ids = np.array([batch_id], dtype=np.int64)
    return PrefetchTask(
        micro_batch=batch_id, sorted_ids=ids, rank=np.array([0]),
        cache_key=bytes([batch_id]),
    )


# ---------------------------------------------------------------------- #
# BusyTracker: union-of-intervals busy time in virtual time
# ---------------------------------------------------------------------- #
class TestBusyTracker:
    def test_single_interval(self):
        clock = FakeClock()
        busy = BusyTracker(clock)
        busy.enter()
        clock.advance(5.0)
        busy.exit()
        assert busy.busy_seconds() == pytest.approx(5.0)

    def test_overlapping_intervals_count_their_union(self):
        clock = FakeClock()
        busy = BusyTracker(clock)
        busy.enter()          # [0, ...
        clock.advance(2.0)
        busy.enter()          # nested: must not double-count
        clock.advance(3.0)
        busy.exit()
        clock.advance(1.0)
        busy.exit()           # ... 6]
        assert busy.busy_seconds() == pytest.approx(6.0)

    def test_idle_gaps_do_not_accumulate(self):
        clock = FakeClock()
        busy = BusyTracker(clock)
        busy.enter()
        clock.advance(1.0)
        busy.exit()
        clock.advance(10.0)   # idle gap
        busy.enter()
        clock.advance(2.0)
        busy.exit()
        assert busy.busy_seconds() == pytest.approx(3.0)

    def test_open_interval_is_included(self):
        clock = FakeClock()
        busy = BusyTracker(clock)
        busy.enter()
        clock.advance(4.0)
        assert busy.busy_seconds() == pytest.approx(4.0)
        clock.advance(1.0)
        busy.exit()
        assert busy.busy_seconds() == pytest.approx(5.0)


# ---------------------------------------------------------------------- #
# PrefetchPipeline lifecycle over stub callables
# ---------------------------------------------------------------------- #
class TestPrefetchPipeline:
    def test_depth_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="depth"):
            PrefetchPipeline(
                make_engine=object, execute=lambda t, e: None,
                cancel=lambda t, err: None, depth=0,
            )

    def test_each_fetcher_gets_a_private_engine(self):
        engines = []
        done = threading.Semaphore(0)
        seen = []

        def make_engine():
            engine = object()
            engines.append(engine)
            return engine

        def execute(task, engine):
            seen.append(engine)
            done.release()

        pipeline = PrefetchPipeline(
            make_engine=make_engine, execute=execute,
            cancel=lambda t, err: None, depth=2,
        )
        try:
            for i in range(6):
                pipeline.submit(task_for(i))
            for _ in range(6):
                assert done.acquire(timeout=5.0)
            assert len(engines) == 2
            assert set(seen) <= set(engines)
        finally:
            pipeline.stop()

    def test_execute_error_routes_to_cancel_and_fetchers_survive(self):
        cancelled = []
        done = threading.Semaphore(0)

        def execute(task, engine):
            done.release()
            if task.micro_batch == 0:
                raise RuntimeError("fetch blew up")

        pipeline = PrefetchPipeline(
            make_engine=object, execute=execute,
            cancel=lambda t, err: cancelled.append((t.micro_batch, err)),
            depth=1,
        )
        try:
            pipeline.submit(task_for(0))
            pipeline.submit(task_for(1))  # the fetcher must still be alive
            for _ in range(2):
                assert done.acquire(timeout=5.0)
        finally:
            assert pipeline.stop() == 0
        assert len(cancelled) == 1
        assert cancelled[0][0] == 0
        assert isinstance(cancelled[0][1], RuntimeError)

    def test_submit_blocks_at_depth_then_resumes(self):
        release = threading.Event()
        started = threading.Semaphore(0)

        def execute(task, engine):
            started.release()
            assert release.wait(timeout=10.0)

        pipeline = PrefetchPipeline(
            make_engine=object, execute=execute,
            cancel=lambda t, err: None, depth=1,
        )
        try:
            pipeline.submit(task_for(0))
            assert started.acquire(timeout=5.0)  # slot held by the fetch
            second_in = threading.Event()

            def blocked_submit():
                pipeline.submit(task_for(1))
                second_in.set()

            submitter = threading.Thread(target=blocked_submit, daemon=True)
            submitter.start()
            assert not second_in.wait(timeout=0.3)  # backpressure holds
            release.set()
            assert second_in.wait(timeout=5.0)      # slot freed → admitted
            submitter.join(timeout=5.0)
        finally:
            release.set()
            pipeline.stop()

    def test_stop_cancels_queued_tasks_exactly_once_and_is_idempotent(self):
        # Fetcher 0 gets a real engine; fetcher 1 is held inside
        # make_engine so a queued task deterministically has no taker.
        gate = threading.Event()
        busy = threading.Event()
        started = threading.Semaphore(0)
        engines = 0
        executed, cancelled = [], []
        lock = threading.Lock()

        def make_engine():
            nonlocal engines
            with lock:
                engines += 1
                first = engines == 1
            if not first:
                assert gate.wait(timeout=10.0)
            return object()

        def execute(task, engine):
            executed.append(task.micro_batch)
            started.release()
            assert busy.wait(timeout=10.0)

        pipeline = PrefetchPipeline(
            make_engine=make_engine, execute=execute,
            cancel=lambda t, err: cancelled.append((t.micro_batch, err)),
            depth=2,
        )
        pipeline.submit(task_for(0))
        assert started.acquire(timeout=5.0)  # fetcher 0 busy on task 0
        pipeline.submit(task_for(1))         # queued: fetcher 1 is gated

        stopper = threading.Thread(target=pipeline.stop, daemon=True)
        stopper.start()
        busy.set()   # task 0's execute completes normally
        gate.set()   # fetcher 1 wakes, sees the stop, exits
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()

        assert executed == [0]
        assert [batch for batch, _ in cancelled] == [1]
        assert isinstance(cancelled[0][1], ServingError)
        assert pipeline.stop() == 0          # idempotent, nothing re-cancelled
        assert len(cancelled) == 1

    def test_submit_after_stop_raises(self):
        pipeline = PrefetchPipeline(
            make_engine=object, execute=lambda t, e: None,
            cancel=lambda t, err: None, depth=1,
        )
        pipeline.stop()
        assert pipeline.stopped
        with pytest.raises(ServingError, match="stopped"):
            pipeline.submit(task_for(0))

    def test_stop_passes_the_given_error_to_cancel(self):
        gate = threading.Event()
        started = threading.Semaphore(0)
        cancelled = []

        def execute(task, engine):
            started.release()
            assert gate.wait(timeout=10.0)

        pipeline = PrefetchPipeline(
            make_engine=object, execute=execute,
            cancel=lambda t, err: cancelled.append(err), depth=2,
        )
        pipeline.submit(task_for(0))
        assert started.acquire(timeout=5.0)
        pipeline.submit(task_for(1))
        assert started.acquire(timeout=5.0)
        # Both fetchers are mid-execute; a third task can only be queued by
        # a submitter that races stop — skip it and stop with both busy.
        stopper = threading.Thread(
            target=pipeline.stop,
            args=(ServingError("shutting down"),),
            daemon=True,
        )
        stopper.start()
        gate.set()
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()
        assert cancelled == []  # in-flight fetches complete, never cancel


# ---------------------------------------------------------------------- #
# Server integration: prefetch-enabled serving is bit-identical
# ---------------------------------------------------------------------- #
class TestPrefetchGating:
    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigurationError, match="prefetch_depth"):
            ServingConfig(prefetch_depth=-1)

    def test_prefetch_requires_the_subgraph_cache(self, deployed):
        with pytest.raises(ConfigurationError, match="cache"):
            InferenceServer(
                deployed, serving_config(prefetch_depth=1, cache_capacity=0)
            )

    def test_prefetch_requires_the_thread_backend(self, deployed):
        with pytest.raises(ConfigurationError, match="thread"):
            InferenceServer(
                deployed, serving_config(prefetch_depth=1, backend="process")
            )


class TestPrefetchedServingEquivalence:
    def test_bit_identical_to_sequential_predict(
        self, deployed, sequential, tiny_dataset
    ):
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        ticks = batch_iterator(test_idx, 32)
        with InferenceServer(deployed, serving_config()) as server:
            responses = server.predict_many(ticks)
        predictions = np.concatenate([r.predictions for r in responses])
        depths = np.concatenate([r.depths for r in responses])
        np.testing.assert_array_equal(predictions, sequential.predictions)
        np.testing.assert_array_equal(depths, sequential.depths)
        per_batch = {r.batch_id: r.batch_macs for r in responses}
        macs = sum(m.total for m in per_batch.values())
        assert macs == pytest.approx(sequential.macs.total, abs=1e-6)

    def test_bit_identical_to_prefetch_off_serving(self, deployed, tiny_dataset):
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        ticks = batch_iterator(test_idx, 32)
        with InferenceServer(deployed, serving_config(prefetch_depth=0)) as server:
            baseline = server.predict_many(ticks)
        with InferenceServer(deployed, serving_config(prefetch_depth=3)) as server:
            prefetched = server.predict_many(ticks)
        for off, on in zip(baseline, prefetched):
            np.testing.assert_array_equal(off.predictions, on.predictions)
            np.testing.assert_array_equal(off.depths, on.depths)

    def test_permuted_repeats_stay_bit_identical(self, deployed, tiny_dataset):
        batch = np.asarray(tiny_dataset.split.test_idx)[:24]
        permuted = np.random.default_rng(11).permutation(batch)
        with InferenceServer(deployed, serving_config()) as server:
            first = server.submit(batch).result(timeout=30.0)
            second = server.submit(permuted).result(timeout=30.0)
        order = np.argsort(permuted, kind="stable")
        base = np.argsort(batch, kind="stable")
        np.testing.assert_array_equal(
            first.predictions[base], second.predictions[order]
        )
        np.testing.assert_array_equal(first.depths[base], second.depths[order])

    def test_prefetch_counters_populate(self, deployed, tiny_dataset):
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        ticks = batch_iterator(test_idx, 32)
        with InferenceServer(deployed, serving_config()) as server:
            server.predict_many(ticks)
            stats = server.stats()
        assert stats.prefetch_issued > 0
        assert stats.prefetch_completed == stats.prefetch_issued
        assert stats.prefetch_cancelled == 0
        assert stats.prefetch_fetch_seconds >= 0.0
        assert 0.0 <= stats.prefetch_overlap_seconds <= stats.prefetch_fetch_seconds
        assert stats.prefetch_hits <= stats.prefetch_completed
        assert "prefetch_issued" in stats.as_dict()

    def test_prefetch_off_leaves_counters_at_zero(self, deployed, tiny_dataset):
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        with InferenceServer(deployed, serving_config(prefetch_depth=0)) as server:
            server.predict_many(batch_iterator(test_idx, 32))
            stats = server.stats()
        assert stats.prefetch_issued == 0
        assert stats.prefetch_completed == 0


class TestPrefetchShutdown:
    def test_normal_close_drains_with_no_cancellations(self, deployed, tiny_dataset):
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        server = InferenceServer(deployed, serving_config())
        handles = [
            server.submit(batch) for batch in batch_iterator(test_idx, 16)
        ]
        server.close()
        for handle in handles:
            assert handle.result(timeout=10.0).predictions.size > 0
        assert server.stats().prefetch_cancelled == 0

    def test_abort_close_strands_no_request(self, deployed, tiny_dataset):
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        server = InferenceServer(
            deployed, serving_config(max_wait_ms=50.0, queue_capacity=256)
        )
        handles = [
            server.submit(batch) for batch in batch_iterator(test_idx, 8)
        ]
        server.close(abort=True)
        served = failed = 0
        for handle in handles:
            try:
                handle.result(timeout=10.0)
                served += 1
            except ServingError:
                failed += 1
        assert served + failed == len(handles)  # nothing stranded
        stats = server.stats()
        assert stats.prefetch_cancelled == stats.prefetch_issued - (
            stats.prefetch_completed
        )
        with pytest.raises(ServingError):
            server.submit(np.array([0]))
