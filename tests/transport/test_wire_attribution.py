"""Transport-error attribution: wire failures must name their endpoint.

Regression suite for the failover-attribution bug: ``wire.read_frame`` used
to raise anonymous :class:`~repro.exceptions.TransportError`\\ s, so a
replica dying mid-frame could only be attributed by the *wrapping* call
site — and any path that surfaced the raw wire error made
:class:`~repro.transport.ReplicatedTransport` implicate every endpoint of
the sub-round instead of exactly the dead one.  Every error raised at the
wire layer now carries ``op``/``shard_id`` when the caller knows them.
"""

import socket
import struct
import threading
from collections import deque

import numpy as np
import pytest

from repro.core import ShardConfig
from repro.exceptions import TransportError
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.serving import FakeClock
from repro.shard import ShardedGraphStore
from repro.transport import (
    NO_RETRY,
    LocalTransport,
    ReplicatedTransport,
    ShardServer,
    SocketTransport,
)
from repro.transport import wire


class ScriptedSocket:
    """Replays a fixed recv script; raises anything placed in the script."""

    def __init__(self, chunks):
        self._chunks = deque(chunks)

    def recv(self, count):
        if not self._chunks:
            return b""
        item = self._chunks.popleft()
        if isinstance(item, Exception):
            raise item
        return item[:count] if len(item) > count else item


class TestReadFrameAttribution:
    def test_mid_frame_eof_carries_op_and_shard(self):
        sock = ScriptedSocket([wire._LEN.pack(100), b"only ten b"])
        with pytest.raises(TransportError, match="mid-frame") as info:
            wire.read_frame(sock, op="feature_rows", shard_id=3)
        assert info.value.op == "feature_rows"
        assert info.value.shard_id == 3

    def test_partial_header_eof_carries_op_and_shard(self):
        sock = ScriptedSocket([b"\x00\x00"])  # half a length prefix
        with pytest.raises(TransportError, match="mid-frame") as info:
            wire.read_frame(sock, op="frontier", shard_id=1)
        assert info.value.op == "frontier"
        assert info.value.shard_id == 1

    def test_oversized_frame_length_carries_op_and_shard(self):
        sock = ScriptedSocket([wire._LEN.pack(wire.MAX_FRAME_BYTES + 1)])
        with pytest.raises(TransportError, match="cap") as info:
            wire.read_frame(sock, op="adjacency_rows", shard_id=0)
        assert info.value.op == "adjacency_rows"
        assert info.value.shard_id == 0
        assert info.value.retryable is False

    def test_os_error_carries_op_and_shard(self):
        sock = ScriptedSocket([OSError("connection reset")])
        with pytest.raises(TransportError, match="read failed") as info:
            wire.read_frame(sock, op="feature_rows", shard_id=2)
        assert info.value.op == "feature_rows"
        assert info.value.shard_id == 2

    def test_clean_eof_at_frame_boundary_is_none(self):
        assert wire.read_frame(ScriptedSocket([]), op="frontier", shard_id=5) is None

    def test_context_is_optional(self):
        sock = ScriptedSocket([wire._LEN.pack(8), b"1234"])
        with pytest.raises(TransportError) as info:
            wire.read_frame(sock)
        assert info.value.op is None
        assert info.value.shard_id is None


# ---------------------------------------------------------------------- #
# End to end: a replica killed mid-frame is the only endpoint implicated
# ---------------------------------------------------------------------- #
class MidFrameKillServer:
    """Accepts like a shard server, then dies ten bytes into every answer."""

    def __init__(self):
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = self._listener.getsockname()
        self._stopped = False
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _accept_loop(self):
        while not self._stopped:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                wire.read_frame(conn)  # consume one request frame
                # A frame header promising 1000 bytes, then the kill.
                conn.sendall(wire._LEN.pack(1000) + b"x" * 10)
            except Exception:
                pass
            finally:
                conn.close()

    def stop(self):
        self._stopped = True
        try:
            self._listener.close()
        except OSError:
            pass


@pytest.fixture()
def two_shard_store():
    spec = SyntheticGraphSpec(
        num_nodes=200, num_classes=4, avg_degree=6.0, degree_exponent=2.1
    )
    graph, _ = generate_community_graph(spec, rng=9)
    features = (
        np.random.default_rng(2).normal(size=(graph.num_nodes, 5)).astype(np.float32)
    )
    return ShardedGraphStore.from_graph(
        graph, features, ShardConfig(num_shards=2, strategy="degree_balanced"),
        gamma=0.5, dtype=np.float32,
    )


class TestMidFrameKillFailover:
    def test_exactly_the_culpable_replica_goes_unhealthy(self, two_shard_store):
        store = two_shard_store
        targets = np.arange(24)
        oracle = store.build_support_bundle(targets, 3)

        rogue = MidFrameKillServer()
        real = ShardServer(store.shards[1]).start()
        rail0 = SocketTransport(
            [rogue.address, real.address], timeout_seconds=10.0
        )
        rail1 = LocalTransport(store.shards)
        transport = ReplicatedTransport(
            [rail0, rail1], retry_policy=NO_RETRY, clock=FakeClock()
        )
        store.use_transport(transport)
        try:
            bundle = store.build_support_bundle(targets, 3)
            health = transport.describe()
            stats = transport.stats.as_dict()
        finally:
            store.use_transport(LocalTransport(store.shards))
            rail0.disconnect()
            real.stop()
            rogue.stop()

        # The round survived by failing over, bit-identically.
        np.testing.assert_array_equal(bundle.indptr, oracle.indptr)
        np.testing.assert_array_equal(bundle.indices, oracle.indices)
        np.testing.assert_array_equal(bundle.data, oracle.data)
        np.testing.assert_array_equal(bundle.local_features, oracle.local_features)
        assert stats["failovers"] >= 1

        # Exactly one endpoint is implicated: shard 0 on the rogue rail.
        healthy = {
            (shard_id, endpoint["rail"]): endpoint["healthy"]
            for shard_id, endpoints in health["shards"].items()
            for endpoint in endpoints
        }
        assert healthy[(0, 0)] is False
        assert healthy[(0, 1)] is True
        assert healthy[(1, 0)] is True
        assert healthy[(1, 1)] is True

    def test_the_raised_wire_error_names_the_shard(self, two_shard_store):
        """Without replication the surfaced error itself must attribute."""
        store = two_shard_store
        rogue = MidFrameKillServer()
        real = ShardServer(store.shards[1]).start()
        transport = SocketTransport(
            [rogue.address, real.address], timeout_seconds=10.0
        )
        store.use_transport(transport)
        try:
            with pytest.raises(TransportError) as info:
                store.build_support_bundle(np.arange(24), 3)
        finally:
            store.use_transport(LocalTransport(store.shards))
            transport.disconnect()
            real.stop()
            rogue.stop()
        assert info.value.shard_id == 0
        assert info.value.op is not None
