"""Seeded-random transport-equivalence fuzz: the subsystem's core guarantee.

For random synthetic graphs, random (untrained) classifiers and a live NAP
policy, every combination of shard count {1, 2, 4} × partition strategy ×
permuted batch order × transport backend (local / socket / fault-wrapped)
must produce **bit-identical** predictions, exit depths and MAC breakdowns
versus the unsharded :class:`~repro.core.inference.NAIPredictor` run on the
same batch order.  The fault-wrapped backend runs with request reordering
on, proving no caller depends on issue order.
"""

import numpy as np
import pytest

from repro.core import ShardConfig
from repro.shard import ShardedPredictor
from repro.transport import (
    FaultInjectingTransport,
    LocalTransport,
    ShardServerGroup,
)

SHARD_COUNTS = (1, 2, 4)
STRATEGIES = ("hash", "degree_balanced")
MAC_FIELDS = ("stationary", "propagation", "decision", "classification")


@pytest.fixture(scope="module")
def deployment(fuzz_deployment):
    return fuzz_deployment


def _assert_bit_identical(label, mine, oracle):
    np.testing.assert_array_equal(
        mine.predictions, oracle.predictions, err_msg=f"{label}: predictions"
    )
    np.testing.assert_array_equal(
        mine.depths, oracle.depths, err_msg=f"{label}: depths"
    )
    for name in MAC_FIELDS:
        assert getattr(mine.macs, name) == getattr(oracle.macs, name), (
            f"{label}: MAC field {name} diverged"
        )
    assert mine.macs.total == oracle.macs.total, f"{label}: MAC totals diverged"


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_all_transports_bit_identical_across_permuted_batches(
    deployment, num_shards, strategy
):
    graph, features, predictor = deployment
    sharded = ShardedPredictor.from_predictor(predictor).prepare(
        graph, features, ShardConfig(num_shards=num_shards, strategy=strategy)
    )
    rng = np.random.default_rng(1000 * num_shards + len(strategy))
    # Two independently permuted orders of an identical node multiset: batch
    # composition changes with order, so the oracle runs on the same order.
    node_pool = rng.choice(graph.num_nodes, size=120, replace=False)
    batch_orders = [rng.permutation(node_pool) for _ in range(2)]

    with ShardServerGroup(sharded.store.shards) as group:
        transports = {
            "local": LocalTransport(sharded.store.shards),
            "socket": group.connect(),
            "fault_wrapped": FaultInjectingTransport(
                group.connect(pipeline=False), reorder=True
            ),
        }
        try:
            for order_index, node_ids in enumerate(batch_orders):
                oracle = predictor.predict(node_ids)
                for name, transport in transports.items():
                    sharded.use_transport(transport)
                    mine = sharded.predict(node_ids)
                    _assert_bit_identical(
                        f"x{num_shards}/{strategy}/order{order_index}/{name}",
                        mine,
                        oracle,
                    )
        finally:
            for transport in transports.values():
                transport.close()


def test_mixed_exit_depths_are_exercised(deployment):
    """The fuzz sweep means little if every node exits at the same depth."""
    graph, _, predictor = deployment
    depths = predictor.predict(np.arange(graph.num_nodes)).depths
    assert np.unique(depths).shape[0] > 1


def test_socket_transport_moves_real_bytes(deployment):
    graph, features, predictor = deployment
    sharded = ShardedPredictor.from_predictor(predictor).prepare(
        graph, features, ShardConfig(num_shards=2, strategy="hash")
    )
    with ShardServerGroup(sharded.store.shards) as group:
        with group.connect() as transport:
            sharded.use_transport(transport)
            sharded.predict(np.arange(0, graph.num_nodes, 5))
            assert transport.wire_bytes_sent > 0
            assert transport.wire_bytes_received > 0
            stats = transport.stats.as_dict()
            assert stats["rounds"] > 0
            assert stats["total_bytes"] > 0
