"""Fault-injection tests: clean failures, no partial state, retry recovery."""

import numpy as np
import pytest

from repro.core import ServingConfig, ShardConfig
from repro.exceptions import TransportError
from repro.serving import InferenceServer
from repro.shard import ShardedPredictor
from repro.transport import (
    FaultInjectingTransport,
    LocalTransport,
    ShardServerGroup,
)


@pytest.fixture(scope="module")
def sharded(small_deployment):
    graph, features, predictor = small_deployment
    return ShardedPredictor.from_predictor(predictor).prepare(
        graph, features, ShardConfig(num_shards=2, strategy="degree_balanced")
    )


def _bundle_arrays(bundle):
    return (
        ("indptr", bundle.indptr),
        ("indices", bundle.indices),
        ("data", bundle.data),
        ("local_features", bundle.local_features),
        ("node_ids", bundle.support.node_ids),
        ("target_local", bundle.support.target_local),
        ("hops", bundle.support.hops),
    )


class TestBundleAssemblyFaults:
    def test_drop_mid_assembly_raises_cleanly_and_retry_is_identical(self, sharded):
        """A drop in the *middle* of bundle assembly (after the BFS rounds,
        during the adjacency fetch) must surface TransportError without
        corrupting the store; the retried build is bit-identical."""
        store = sharded.store
        targets = np.arange(12)
        oracle = store.build_support_bundle(targets, 3)

        # Rounds of a depth-3 build: 3 frontier hops, 1 adjacency, 1 features.
        fault = FaultInjectingTransport(
            LocalTransport(store.shards),
            script=["ok", "ok", "ok", "drop"],
        )
        store.use_transport(fault)
        try:
            with pytest.raises(TransportError, match="injected drop"):
                store.build_support_bundle(targets, 3)
            retried = store.build_support_bundle(targets, 3)
        finally:
            store.use_transport(LocalTransport(store.shards))
        for name, mine in _bundle_arrays(retried):
            np.testing.assert_array_equal(
                mine, dict(_bundle_arrays(oracle))[name], err_msg=name
            )

    def test_disconnect_fails_every_round_until_reconnect(self, sharded):
        store = sharded.store
        fault = FaultInjectingTransport(LocalTransport(store.shards))
        store.use_transport(fault)
        try:
            fault.disconnect()
            with pytest.raises(TransportError):
                store.build_support_bundle(np.arange(4), 2)
            with pytest.raises(TransportError):
                store.fetch_degrees(np.arange(4))
            fault.reconnect()
            oracle = store.build_support_bundle(np.arange(4), 2)
            assert oracle.num_local > 0
        finally:
            store.use_transport(LocalTransport(store.shards))


class TestSocketFaults:
    def test_killed_connections_surface_error_then_lazy_reconnect_recovers(
        self, sharded
    ):
        store = sharded.store
        targets = np.arange(10)
        oracle = store.build_support_bundle(targets, 3)
        with ShardServerGroup(store.shards) as group:
            transport = group.connect(timeout_seconds=10.0)
            store.use_transport(transport)
            try:
                first = store.build_support_bundle(targets, 3)
                opened = transport.reconnects
                for server in group.servers:
                    server.drop_connections()
                with pytest.raises(TransportError):
                    store.build_support_bundle(targets, 3)
                # Retry once: the transport redials the still-listening
                # servers and the rebuilt bundle is bit-identical.
                retried = store.build_support_bundle(targets, 3)
                assert transport.reconnects > opened
            finally:
                store.use_transport(LocalTransport(store.shards))
                transport.close()
        for name, mine in _bundle_arrays(retried):
            reference = dict(_bundle_arrays(oracle))[name]
            np.testing.assert_array_equal(mine, reference, err_msg=name)
            np.testing.assert_array_equal(
                dict(_bundle_arrays(first))[name], reference, err_msg=name
            )

    def test_stopped_fleet_raises_instead_of_hanging(self, sharded):
        store = sharded.store
        group = ShardServerGroup(store.shards).start()
        transport = group.connect(timeout_seconds=5.0)
        store.use_transport(transport)
        try:
            store.build_support_bundle(np.arange(6), 2)
            group.stop()
            with pytest.raises(TransportError):
                store.build_support_bundle(np.arange(6), 2)
        finally:
            store.use_transport(LocalTransport(store.shards))
            transport.close()


class TestKillWindows:
    def test_kill_fires_only_on_target_shard_and_heals(self, sharded):
        store = sharded.store
        fault = FaultInjectingTransport(LocalTransport(store.shards))
        # Shard 1 is down for this wrapper's rounds [0, 3); shard-0-only
        # fetches sail through, and round 3 onward everything works again.
        fault.schedule_kill(1, 0, 3)
        store.use_transport(fault)
        try:
            only_shard0 = store.shards[0].owned[:4]
            store.fetch_degrees(only_shard0)  # round 0: no shard-1 request
            with pytest.raises(TransportError, match="shard 1 is down"):
                store.fetch_degrees(np.arange(8))  # round 1 touches shard 1
            with pytest.raises(TransportError, match="shard 1 is down"):
                store.fetch_degrees(np.arange(8))  # round 2 still inside
            healed = store.fetch_degrees(np.arange(8))  # round 3: healed
            assert healed.shape == (8,)
            assert fault.faults_injected == 2
        finally:
            store.use_transport(LocalTransport(store.shards))

    def test_kill_targets_one_replica_wrapper_only(self, sharded):
        store = sharded.store
        replica0 = FaultInjectingTransport(
            LocalTransport(store.shards), replica_index=0
        )
        replica1 = FaultInjectingTransport(
            LocalTransport(store.shards), replica_index=1
        )
        for wrapper in (replica0, replica1):
            wrapper.schedule_kill(0, 0, replica_index=0)
        with pytest.raises(TransportError, match="replica 0 of shard 0"):
            store.use_transport(replica0).fetch_degrees(np.arange(6))
        # The same window on the replica-1 wrapper never applies.
        degrees = store.use_transport(replica1).fetch_degrees(np.arange(6))
        assert degrees.shape == (6,)
        store.use_transport(LocalTransport(store.shards))

    def test_kill_window_validation(self, sharded):
        fault = FaultInjectingTransport(LocalTransport(sharded.store.shards))
        with pytest.raises(ValueError, match="start_round"):
            fault.schedule_kill(0, -1)
        with pytest.raises(ValueError, match="heal_round"):
            fault.schedule_kill(0, 5, 5)

    def test_clear_kills(self, sharded):
        store = sharded.store
        fault = FaultInjectingTransport(LocalTransport(store.shards))
        fault.schedule_kill(0, 0)
        fault.clear_kills()
        degrees = store.use_transport(fault).fetch_degrees(np.arange(5))
        assert degrees.shape == (5,)
        store.use_transport(LocalTransport(store.shards))


class TestServingUnderFaults:
    def test_failed_bundle_leaves_no_partial_cache_entry_and_retry_recovers(
        self, sharded, small_deployment
    ):
        """Transport disconnect mid-bundle fails only the affected request —
        no hang, no partial subgraph-cache entry — and the resubmitted
        request recovers with results identical to the unsharded oracle."""
        _, _, predictor = small_deployment
        store = sharded.store
        fault = FaultInjectingTransport(LocalTransport(store.shards))
        store.use_transport(fault)
        node_ids = np.arange(8)
        oracle = predictor.predict(node_ids)
        config = ServingConfig(
            num_workers=2, max_batch_size=64, max_wait_ms=0.0, cache_capacity=8
        )
        try:
            with InferenceServer(sharded.shard_view(0), config) as server:
                assert server.cache is not None
                fault.fail_next(1)
                failing = server.submit(node_ids)
                with pytest.raises(TransportError):
                    failing.result(timeout=30.0)
                # The dispatcher inserted nothing for the failed build.
                assert len(server.cache) == 0
                retried = server.submit(node_ids).result(timeout=30.0)
                stats = server.stats()
            np.testing.assert_array_equal(retried.predictions, oracle.predictions)
            np.testing.assert_array_equal(retried.depths, oracle.depths)
            assert stats.requests_failed == 1
            assert stats.requests_completed == 1
        finally:
            store.use_transport(LocalTransport(store.shards))
