"""Unit tests for RetryPolicy, call_with_retry and ReplicatedTransport."""

import numpy as np
import pytest

from repro.core import ShardConfig
from repro.exceptions import ConfigurationError, TransportError
from repro.serving.clock import FakeClock
from repro.shard import GraphPartitioner, ShardedPredictor
from repro.transport import (
    NO_RETRY,
    FaultInjectingTransport,
    LocalTransport,
    ReplicatedTransport,
    RetryPolicy,
    call_with_retry,
)


@pytest.fixture(scope="module")
def sharded(small_deployment):
    graph, features, predictor = small_deployment
    return ShardedPredictor.from_predictor(predictor).prepare(
        graph, features, ShardConfig(num_shards=2, strategy="degree_balanced")
    )


class TestRetryPolicy:
    def test_delay_sequence_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5,
            backoff_base_seconds=0.01,
            backoff_cap_seconds=0.03,
            jitter_fraction=0.2,
            seed=42,
        )
        first = list(policy.delays())
        second = list(policy.delays())
        assert first == second  # re-seeded per call
        assert len(first) == 4
        assert all(0 < d <= 0.03 for d in first)

    def test_zero_jitter_is_a_pure_capped_exponential(self):
        policy = RetryPolicy(
            max_attempts=4,
            backoff_base_seconds=0.01,
            backoff_cap_seconds=0.025,
            jitter_fraction=0.0,
        )
        assert list(policy.delays()) == [0.01, 0.02, 0.025]

    def test_no_retry_yields_no_delays(self):
        assert list(NO_RETRY.delays()) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_seconds=0.1, backoff_cap_seconds=0.01)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.0)

    def test_with_updates(self):
        assert RetryPolicy().with_updates(max_attempts=7).max_attempts == 7


class TestCallWithRetry:
    def test_retries_retryable_errors_in_virtual_time(self):
        policy = RetryPolicy(max_attempts=3, jitter_fraction=0.0)
        clock = FakeClock()
        calls = []
        retried = []

        def flaky():
            calls.append(None)
            if len(calls) < 3:
                raise TransportError("transient", retryable=True)
            return "done"

        result = call_with_retry(
            policy, clock, flaky, on_retry=lambda e, d: retried.append(d)
        )
        assert result == "done"
        assert len(calls) == 3
        assert retried == list(policy.delays())[:2]
        assert clock.now() == pytest.approx(sum(retried))

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def poisoned():
            calls.append(None)
            raise TransportError("permanent", retryable=False)

        with pytest.raises(TransportError, match="permanent"):
            call_with_retry(RetryPolicy(max_attempts=5), FakeClock(), poisoned)
        assert len(calls) == 1

    def test_exhausted_budget_propagates_last_error(self):
        def always_failing():
            raise TransportError("still down", retryable=True)

        clock = FakeClock()
        with pytest.raises(TransportError, match="still down"):
            call_with_retry(
                RetryPolicy(max_attempts=3, jitter_fraction=0.0),
                clock,
                always_failing,
            )
        assert clock.now() > 0  # both backoff waits happened


def _fault_rails(shards, count, **kwargs):
    return [
        FaultInjectingTransport(
            LocalTransport(shards), replica_index=index, **kwargs
        )
        for index in range(count)
    ]


class TestReplicatedTransport:
    def test_bundles_bit_identical_to_plain_local_transport(self, sharded):
        store = sharded.store
        targets = np.arange(14)
        oracle = store.build_support_bundle(targets, 3)
        store.use_transport(ReplicatedTransport(_fault_rails(store.shards, 2)))
        try:
            mine = store.build_support_bundle(targets, 3)
        finally:
            store.use_transport(LocalTransport(store.shards))
        np.testing.assert_array_equal(mine.indptr, oracle.indptr)
        np.testing.assert_array_equal(mine.indices, oracle.indices)
        np.testing.assert_array_equal(mine.data, oracle.data)
        np.testing.assert_array_equal(mine.local_features, oracle.local_features)
        np.testing.assert_array_equal(
            mine.support.node_ids, oracle.support.node_ids
        )

    def test_least_loaded_routing_spreads_rows_across_rails(self, sharded):
        store = sharded.store
        store.use_transport(ReplicatedTransport(_fault_rails(store.shards, 2)))
        try:
            transport = store.transport
            for start in range(0, 60, 12):
                store.build_support_bundle(np.arange(start, start + 12), 2)
            health = transport.describe()
        finally:
            store.use_transport(LocalTransport(store.shards))
        for shard_id, endpoints in health["shards"].items():
            served = [endpoint["rows_served"] for endpoint in endpoints]
            assert all(count > 0 for count in served), (
                f"shard {shard_id}: a rail served nothing ({served})"
            )

    def test_failover_marks_unhealthy_and_counts(self, sharded):
        store = sharded.store
        rails = _fault_rails(store.shards, 2)
        # Rail 0 loses shard 0 permanently; every request must fail over.
        rails[0].schedule_kill(0, 0, replica_index=0)
        clock = FakeClock()
        store.use_transport(
            ReplicatedTransport(
                rails, retry_policy=RetryPolicy(max_attempts=2), clock=clock
            )
        )
        try:
            transport = store.transport
            oracle_free = store.build_support_bundle(np.arange(10), 3)
            health = transport.describe()
            stats = transport.stats.as_dict()
        finally:
            store.use_transport(LocalTransport(store.shards))
        assert oracle_free.num_local > 0
        assert stats["failovers"] > 0
        assert stats["retries"] > 0  # retryable kill consumed the budget first
        assert stats["health_transitions"] >= 1
        rail_health = {
            endpoint["rail"]: endpoint["healthy"]
            for endpoint in health["shards"][0]
        }
        assert rail_health[0] is False
        assert rail_health[1] is True

    def test_all_replicas_dead_raises_clean_nonretryable_error(self, sharded):
        store = sharded.store
        rails = _fault_rails(store.shards, 2)
        rails[0].schedule_kill(1, 0, replica_index=0)
        rails[1].schedule_kill(1, 0, replica_index=1)
        store.use_transport(
            ReplicatedTransport(rails, retry_policy=NO_RETRY, clock=FakeClock())
        )
        try:
            with pytest.raises(TransportError, match="all 2 replica") as info:
                store.build_support_bundle(np.arange(20), 3)
        finally:
            store.use_transport(LocalTransport(store.shards))
        assert info.value.retryable is False
        assert info.value.shard_id == 1

    def test_healed_replica_returns_after_probation(self, sharded):
        store = sharded.store
        rails = _fault_rails(store.shards, 2)
        # Rail 0's shard 0 dies on its first two rounds, then heals.
        rails[0].schedule_kill(0, 0, 2, replica_index=0)
        store.use_transport(
            ReplicatedTransport(
                rails,
                retry_policy=NO_RETRY,
                clock=FakeClock(),
                probe_after_rounds=2,
            )
        )
        try:
            transport = store.transport
            for start in range(0, 72, 8):
                store.build_support_bundle(np.arange(start, start + 8), 2)
            health = transport.describe()
        finally:
            store.use_transport(LocalTransport(store.shards))
        shard0 = {e["rail"]: e for e in health["shards"][0]}
        assert shard0[0]["healthy"] is True  # probed and healed
        assert shard0[0]["rows_served"] > 0
        # Unhealthy → healthy counts as a transition too.
        assert health["health_transitions"] >= 2

    def test_replica_map_from_plan_is_honored(self, small_deployment):
        graph, _, _ = small_deployment
        config = ShardConfig(
            num_shards=4,
            strategy="degree_balanced",
            replication_factor=1,
            hot_shard_boost=1,
            hot_shard_fraction=0.25,
        )
        plan = GraphPartitioner(config).partition(graph)
        assert plan.max_replication == 2
        boosted = [
            shard
            for shard in range(plan.num_shards)
            if len(plan.replicas_of(shard)) == 2
        ]
        assert len(boosted) == 1  # ceil(0.25 * 4) hot shards
        # The hot shard is the one with the highest accumulated degree.
        degrees = graph.degrees()
        loads = [degrees[plan.owned[s]].sum() for s in range(4)]
        assert boosted[0] == int(np.argmax(loads))

    def test_validation(self, sharded):
        shards = sharded.store.shards
        with pytest.raises(ConfigurationError, match="at least one rail"):
            ReplicatedTransport([])
        with pytest.raises(ConfigurationError, match="no replicas"):
            ReplicatedTransport([LocalTransport(shards)], ((0,), ()))
        with pytest.raises(ConfigurationError, match="only 1 rails"):
            ReplicatedTransport([LocalTransport(shards)], ((0,), (1,)))
        with pytest.raises(ConfigurationError, match="probe_after_rounds"):
            ReplicatedTransport([LocalTransport(shards)], probe_after_rounds=0)
