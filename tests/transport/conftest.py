"""Shared fixtures for the transport suite: a CI watchdog and tiny deployments.

The watchdog is the ``pytest --timeout``-style guard the socket tests need:
a stuck socket (lost wakeup, deadlocked round, unreachable server) must
fail CI loudly instead of hanging it.  Every test in this directory runs
under a timer that dumps all thread stacks and aborts the process if the
test exceeds the budget — generous enough that only a genuine hang trips
it.
"""

from __future__ import annotations

import faulthandler
import os
import sys
import threading

import numpy as np
import pytest

from repro.core import NAIConfig
from repro.core.distance_nap import DistanceNAP
from repro.core.inference import NAIPredictor
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.models import SGC

#: Per-test budget.  The whole transport suite runs in seconds; a test that
#: is still going after this long is hung, not slow.  Slow shared CI runners
#: can raise the budget via REPRO_WATCHDOG_SECONDS (see ci.yml) without
#: touching the code.
WATCHDOG_SECONDS = float(os.environ.get("REPRO_WATCHDOG_SECONDS", "90"))


def _dump_and_abort() -> None:  # pragma: no cover - only fires on a hang
    sys.stderr.write(
        f"\n*** transport-test watchdog fired after {WATCHDOG_SECONDS}s — "
        "dumping all thread stacks and aborting ***\n"
    )
    faulthandler.dump_traceback(all_threads=True)
    os._exit(3)


@pytest.fixture(autouse=True)
def transport_watchdog():
    """Abort the run (with stacks) if a single test hangs — CI cannot stall."""
    timer = threading.Timer(WATCHDOG_SECONDS, _dump_and_abort)
    timer.daemon = True
    timer.start()
    yield
    timer.cancel()


def build_deployment(seed: int, *, num_nodes: int = 230, num_features: int = 6,
                     depth: int = 3, batch_size: int = 37):
    """A small random deployment: graph, features, prepared ``NAIPredictor``.

    The classifiers are randomly initialised (untrained) — equivalence
    checks compare deterministic outputs, not accuracy.  The NAP threshold
    is swept until exit depths actually mix, so early-exit pruning (the
    hardest path to keep bit-identical) is exercised whenever the graph
    allows it.
    """
    spec = SyntheticGraphSpec(
        num_nodes=num_nodes, num_classes=5, avg_degree=6.0, degree_exponent=2.2
    )
    graph, _ = generate_community_graph(spec, rng=seed)
    rng = np.random.default_rng(seed + 100)
    features = rng.normal(size=(graph.num_nodes, num_features)).astype(np.float32)
    classifiers = SGC(num_features, 5, depth=depth, rng=seed).make_all_classifiers()
    config = NAIConfig(t_min=1, t_max=depth, batch_size=batch_size)
    predictor = None
    for threshold in (0.05, 0.15, 0.4, 1.0, 3.0):
        predictor = NAIPredictor(
            classifiers, policy=DistanceNAP(threshold), config=config
        ).prepare(graph, features)
        depths = predictor.predict(np.arange(graph.num_nodes)).depths
        if np.unique(depths).shape[0] > 1:
            break
    return graph, features, predictor


@pytest.fixture(scope="session")
def small_deployment():
    return build_deployment(0)


@pytest.fixture(scope="session", params=[0, 7])
def fuzz_deployment(request):
    """Two independently seeded random deployments for the fuzz sweep."""
    return build_deployment(request.param)
