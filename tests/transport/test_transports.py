"""Unit tests for the transport layer: wire format, backends, stats."""

import numpy as np
import pytest

from repro.core import ShardConfig
from repro.exceptions import GraphConstructionError, TransportError
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.serving import FakeClock
from repro.shard import ShardedGraphStore
from repro.transport import (
    ALL_OPS,
    OP_ADJACENCY,
    OP_FEATURES,
    OP_FRONTIER,
    AdjacencyRows,
    FaultInjectingTransport,
    LocalTransport,
    ShardServerGroup,
    SocketTransport,
)
from repro.transport import wire
from repro.transport.base import answer_from_shard


@pytest.fixture(scope="module")
def store():
    spec = SyntheticGraphSpec(
        num_nodes=180, num_classes=4, avg_degree=6.0, degree_exponent=2.0
    )
    graph, _ = generate_community_graph(spec, rng=5)
    features = np.random.default_rng(1).normal(
        size=(graph.num_nodes, 7)
    ).astype(np.float32)
    return ShardedGraphStore.from_graph(
        graph, features, ShardConfig(num_shards=3, strategy="hash"),
        gamma=0.5, dtype=np.float32,
    )


class TestWireFormat:
    def test_request_roundtrip(self):
        for op in ALL_OPS:
            rows = np.array([3, 1, 4, 1, 5], dtype=np.int64)
            decoded_op, decoded_rows = wire.decode_request(
                wire.encode_request(op, rows)
            )
            assert decoded_op == op
            np.testing.assert_array_equal(decoded_rows, rows)

    def test_empty_rows_roundtrip(self):
        op, rows = wire.decode_request(
            wire.encode_request(OP_FRONTIER, np.empty(0, dtype=np.int64))
        )
        assert op == OP_FRONTIER and rows.shape == (0,)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_response_roundtrips(self, dtype):
        rng = np.random.default_rng(0)
        cases = {
            OP_FRONTIER: np.array([9, 2, 2, 7], dtype=np.int64),
            OP_ADJACENCY: AdjacencyRows(
                lengths=np.array([2, 0, 3], dtype=np.int64),
                columns=np.array([1, 5, 0, 2, 6], dtype=np.int64),
                data=rng.normal(size=5).astype(dtype),
            ),
            OP_FEATURES: rng.normal(size=(4, 3)).astype(dtype),
            "degree_rows": np.array([2.0, 5.0, 1.0]),
        }
        for op, payload in cases.items():
            decoded = wire.decode_response(op, wire.encode_response(op, payload))
            if isinstance(payload, AdjacencyRows):
                for name in ("lengths", "columns", "data"):
                    np.testing.assert_array_equal(
                        getattr(decoded, name), getattr(payload, name)
                    )
                    assert getattr(decoded, name).dtype == getattr(payload, name).dtype
            else:
                np.testing.assert_array_equal(decoded, payload)
                assert decoded.dtype == np.asarray(payload).dtype

    def test_error_response_raises_at_decode(self):
        with pytest.raises(TransportError, match="boom"):
            wire.decode_response(OP_FRONTIER, wire.encode_error("boom"))

    def test_corrupt_dtype_code_raises_transport_error(self):
        encoded = bytearray(
            wire.encode_response(OP_FEATURES, np.zeros((1, 2), dtype=np.float32))
        )
        encoded[1 + 16] = 99  # status byte + two u64 dims, then the dtype code
        with pytest.raises(TransportError, match="dtype code"):
            wire.decode_response(OP_FEATURES, bytes(encoded))

    def test_oversized_frame_rejected_on_read(self):
        import struct

        class FakeSocket:
            def __init__(self, data):
                self.data = data

            def recv(self, count):
                chunk, self.data = self.data[:count], self.data[count:]
                return chunk

        corrupt = struct.pack("<I", wire.MAX_FRAME_BYTES + 1)
        with pytest.raises(TransportError, match="cap"):
            wire.read_frame(FakeSocket(corrupt))


class TestLocalTransport:
    def test_matches_direct_shard_answers(self, store):
        transport = LocalTransport(store.shards)
        rows = np.array([0, 2, 5], dtype=np.int64)
        for op in ALL_OPS:
            payloads = transport.fetch(op, [(1, rows)])
            expected = answer_from_shard(store.shards[1], op, rows)
            if isinstance(expected, AdjacencyRows):
                for name in ("lengths", "columns", "data"):
                    np.testing.assert_array_equal(
                        getattr(payloads[0], name), getattr(expected, name)
                    )
            else:
                np.testing.assert_array_equal(payloads[0], expected)

    def test_out_of_range_shard_raises(self, store):
        transport = LocalTransport(store.shards)
        with pytest.raises(TransportError):
            transport.frontier_columns([(9, np.array([0]))])

    def test_closed_transport_raises(self, store):
        transport = LocalTransport(store.shards)
        transport.close()
        with pytest.raises(TransportError):
            transport.feature_rows([(0, np.array([0]))])

    def test_stats_count_rounds_and_bytes(self, store):
        transport = LocalTransport(store.shards)
        transport.feature_rows([(0, np.array([0, 1])), (1, np.array([0]))])
        stats = transport.stats.as_dict()
        assert stats["rounds"] == 1
        assert stats["requests"][OP_FEATURES] == 2
        assert stats["response_bytes"] == 3 * store.num_features * 4
        assert stats["request_bytes"] == 3 * 8


class TestSocketTransport:
    def test_pipelined_round_matches_local(self, store):
        local = LocalTransport(store.shards)
        rows = np.array([1, 3], dtype=np.int64)
        requests = [(0, rows), (2, rows), (0, np.array([4], dtype=np.int64))]
        with ShardServerGroup(store.shards) as group:
            with group.connect() as remote:
                for op in ALL_OPS:
                    mine = remote.fetch(op, requests)
                    reference = local.fetch(op, requests)
                    for got, expected in zip(mine, reference):
                        if isinstance(expected, AdjacencyRows):
                            for name in ("lengths", "columns", "data"):
                                np.testing.assert_array_equal(
                                    getattr(got, name), getattr(expected, name)
                                )
                        else:
                            np.testing.assert_array_equal(got, expected)
                # One connection per touched shard, reused across 4 rounds;
                # nothing failed, so no re-dials happened.
                assert remote.connections_opened == 2
                assert remote.reconnects == 0
                assert remote.wire_bytes_sent > 0
                assert remote.wire_bytes_received > 0

    def test_sequential_mode_matches_pipelined(self, store):
        rows = np.array([0, 1, 2], dtype=np.int64)
        requests = [(0, rows), (1, rows)]
        with ShardServerGroup(store.shards) as group:
            with group.connect(pipeline=True) as pipelined, group.connect(
                pipeline=False
            ) as sequential:
                a = pipelined.feature_rows(requests)
                b = sequential.feature_rows(requests)
        for got, expected in zip(a, b):
            np.testing.assert_array_equal(got, expected)

    def test_server_side_error_propagates_and_connection_survives(self, store):
        with ShardServerGroup(store.shards) as group:
            with group.connect() as remote:
                with pytest.raises(TransportError, match="out of range"):
                    remote.feature_rows([(0, np.array([10 ** 6]))])
                opened = remote.connections_opened
                # The error travelled as a response frame — the connection is
                # still healthy and the next round reuses it.
                payloads = remote.feature_rows([(0, np.array([0]))])
                assert payloads[0].shape == (1, store.num_features)
                assert remote.connections_opened == opened
                assert remote.reconnects == 0

    def test_unreachable_server_raises_not_hangs(self):
        transport = SocketTransport(
            [("127.0.0.1", 1)], timeout_seconds=2.0
        )
        with pytest.raises(TransportError, match="connect"):
            transport.frontier_columns([(0, np.array([0]))])

    def test_serve_shard_as_forked_process_target(self, store):
        """One shard served from a *separate process*, fetched over TCP."""
        multiprocessing = pytest.importorskip("multiprocessing")
        from repro.transport import serve_shard

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("fork start method unavailable")
        ready = context.Event()
        port_out = context.Value("i", 0)
        process = context.Process(
            target=serve_shard,
            kwargs={"shard": store.shards[0], "ready": ready, "port_out": port_out},
            daemon=True,
        )
        process.start()
        try:
            assert ready.wait(10.0)
            transport = SocketTransport(
                [("127.0.0.1", port_out.value)], timeout_seconds=10.0
            )
            with transport:
                rows = np.array([0, 1, 2], dtype=np.int64)
                payloads = transport.feature_rows([(0, rows)])
            np.testing.assert_array_equal(
                payloads[0], store.shards[0].features[rows]
            )
        finally:
            process.terminate()
            process.join(5.0)


class TestFaultInjectingTransport:
    def test_script_validation(self, store):
        with pytest.raises(ValueError):
            FaultInjectingTransport(
                LocalTransport(store.shards), script=["ok", "explode"]
            )

    def test_scripted_drop_then_recovery(self, store):
        fault = FaultInjectingTransport(
            LocalTransport(store.shards), script=["drop", "ok"]
        )
        rows = np.array([0], dtype=np.int64)
        with pytest.raises(TransportError, match="injected drop"):
            fault.feature_rows([(0, rows)])
        assert fault.faults_injected == 1
        payloads = fault.feature_rows([(0, rows)])
        np.testing.assert_array_equal(payloads[0], store.shards[0].features[:1])

    def test_disconnect_blocks_until_reconnect(self, store):
        fault = FaultInjectingTransport(LocalTransport(store.shards))
        fault.disconnect()
        with pytest.raises(TransportError):
            fault.degree_rows([(0, np.array([0]))])
        with pytest.raises(TransportError):
            fault.degree_rows([(0, np.array([0]))])
        fault.reconnect()
        payloads = fault.degree_rows([(0, np.array([0]))])
        np.testing.assert_array_equal(
            payloads[0], store.shards[0].degrees_with_loops[:1]
        )

    def test_latency_charged_to_injected_clock(self, store):
        clock = FakeClock()
        fault = FaultInjectingTransport(
            LocalTransport(store.shards), latency_seconds=0.25, clock=clock
        )
        fault.feature_rows([(0, np.array([0]))])
        fault.feature_rows([(1, np.array([0]))])
        assert clock.now() == pytest.approx(0.5)

    def test_reorder_returns_caller_order(self, store):
        fault = FaultInjectingTransport(LocalTransport(store.shards), reorder=True)
        requests = [
            (0, np.array([0, 1], dtype=np.int64)),
            (1, np.array([2], dtype=np.int64)),
            (2, np.array([0], dtype=np.int64)),
        ]
        reference = LocalTransport(store.shards).feature_rows(requests)
        mine = fault.feature_rows(requests)
        for got, expected in zip(mine, reference):
            np.testing.assert_array_equal(got, expected)


class TestStoreTransportPlumbing:
    def test_use_transport_validates_shard_count(self, store):
        with pytest.raises(GraphConstructionError):
            store.use_transport(LocalTransport(store.shards[:1]))

    def test_fetch_degrees_matches_owner_slices(self, store):
        node_ids = np.arange(0, store.num_nodes, 3)
        degrees = store.fetch_degrees(node_ids, home_shard=0)
        owners = store.plan.owner[node_ids]
        rows = store.local_rows(node_ids)
        expected = np.empty(node_ids.shape[0])
        for shard in store.shards:
            mask = owners == shard.shard_id
            expected[mask] = shard.degrees_with_loops[rows[mask]]
        np.testing.assert_array_equal(degrees, expected)
        assert store.traffic.degree_rows_local + store.traffic.degree_rows_remote > 0

    def test_traffic_counts_bytes_with_home_shard(self, store):
        before = store.traffic.bytes_local + store.traffic.bytes_remote
        store.build_support_bundle(store.shards[0].owned[:6], 2, home_shard=0)
        after = store.traffic.bytes_local + store.traffic.bytes_remote
        assert after > before
        payload = store.traffic.as_dict()
        for key in ("bytes_local", "bytes_remote", "remote_byte_fraction"):
            assert key in payload
