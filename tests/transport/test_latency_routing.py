"""Windowed-latency read spreading in ReplicatedTransport (route_by="latency")."""

import numpy as np
import pytest

from repro.core import ShardConfig
from repro.exceptions import ConfigurationError
from repro.serving.clock import FakeClock
from repro.shard import ShardedPredictor
from repro.transport import (
    OP_FEATURES,
    LocalTransport,
    ReplicatedTransport,
    ShardTransport,
)


class ScriptedRail(ShardTransport):
    """Echoes the requested rows and charges a fixed virtual-time delay.

    Both rails of a test return byte-identical payloads (the rows
    themselves), so routing can only change *placement*, never results —
    exactly the replicated-read contract.  The delay advances the shared
    FakeClock, which is also the transport's latency-measurement clock,
    so observed sub-round latency equals the scripted delay exactly.
    """

    def __init__(self, num_shards: int, delay: float, clock: FakeClock):
        super().__init__()
        self._num_shards = num_shards
        self.delay = delay
        self.clock = clock
        self.calls: list[tuple[str, list[int]]] = []

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def fetch(self, op, requests):
        self.calls.append((op, [int(shard) for shard, _ in requests]))
        if self.delay > 0.0:
            self.clock.advance(self.delay)
        return [np.asarray(rows, dtype=np.int64).copy() for _, rows in requests]

    def close(self) -> None:
        pass


def _pair(clock, *, slow=0.05, fast=0.001, **kwargs):
    rails = [ScriptedRail(2, slow, clock), ScriptedRail(2, fast, clock)]
    transport = ReplicatedTransport(
        rails, clock=clock, route_by="latency", **kwargs
    )
    return transport, rails


ROWS = np.arange(3, dtype=np.int64)


class TestLatencyRouting:
    def test_empty_windows_tie_to_rail_zero_then_traffic_shifts(self):
        clock = FakeClock()
        transport, (slow, fast) = _pair(clock)
        # First pick: both windows are empty (mean 0), rows served tie at
        # zero, so the lowest rail id wins — deterministically rail 0.
        transport.fetch(OP_FEATURES, [(0, ROWS)])
        assert [len(r.calls) for r in (slow, fast)] == [1, 0]
        # Rail 0 now carries a 50ms sample; rail 1 still reads 0 — every
        # subsequent pick lands on rail 1 and keeps re-confirming it.
        for _ in range(4):
            transport.fetch(OP_FEATURES, [(0, ROWS)])
        assert [len(r.calls) for r in (slow, fast)] == [1, 4]

    def test_payloads_come_back_regardless_of_placement(self):
        clock = FakeClock()
        transport, _ = _pair(clock)
        first = transport.fetch(OP_FEATURES, [(0, ROWS), (1, ROWS + 10)])
        second = transport.fetch(OP_FEATURES, [(0, ROWS), (1, ROWS + 10)])
        for payloads in (first, second):
            np.testing.assert_array_equal(payloads[0], ROWS)
            np.testing.assert_array_equal(payloads[1], ROWS + 10)

    def test_slow_rail_is_probed_again_once_its_sample_ages_out(self):
        clock = FakeClock()
        transport, (slow, fast) = _pair(clock, latency_window_seconds=30.0)
        transport.fetch(OP_FEATURES, [(0, ROWS)])  # rail 0 observes 50ms
        transport.fetch(OP_FEATURES, [(0, ROWS)])  # rail 1 takes over
        clock.advance(31.0)  # both windows empty again
        # Ties now break by rows served: rail 0 and rail 1 each served one
        # sub-round (3 rows), so rail id decides — the slow rail gets a
        # fresh probe instead of being exiled on stale evidence.
        transport.fetch(OP_FEATURES, [(0, ROWS)])
        assert len(slow.calls) == 2
        assert len(fast.calls) == 1

    def test_routing_follows_whichever_rail_is_currently_faster(self):
        clock = FakeClock()
        transport, (slow, fast) = _pair(clock)
        transport.fetch(OP_FEATURES, [(0, ROWS)])  # rail 0: 50ms sample
        transport.fetch(OP_FEATURES, [(0, ROWS)])  # rail 1: 1ms sample
        # The fast rail degrades (cold cache, noisy neighbour): its next
        # sub-round costs 200ms and the window mean jumps above rail 0's.
        fast.delay = 0.2
        transport.fetch(OP_FEATURES, [(0, ROWS)])
        assert len(fast.calls) == 2
        transport.fetch(OP_FEATURES, [(0, ROWS)])
        assert len(slow.calls) == 2  # traffic came back

    def test_describe_exposes_windowed_means_per_endpoint(self):
        clock = FakeClock()
        transport, _ = _pair(clock)
        transport.fetch(OP_FEATURES, [(0, ROWS)])
        transport.fetch(OP_FEATURES, [(0, ROWS)])
        description = transport.describe()
        assert description["route_by"] == "latency"
        by_rail = {
            entry["rail"]: entry for entry in description["shards"][0]
        }
        assert by_rail[0]["latency_mean_window"] == pytest.approx(0.05)
        assert by_rail[1]["latency_mean_window"] == pytest.approx(0.001)

    def test_rows_routing_has_no_latency_windows(self):
        clock = FakeClock()
        rails = [ScriptedRail(2, 0.0, clock), ScriptedRail(2, 0.0, clock)]
        transport = ReplicatedTransport(rails, clock=clock, route_by="rows")
        transport.fetch(OP_FEATURES, [(0, ROWS)])
        for entry in transport.describe()["shards"][0]:
            assert "latency_mean_window" not in entry

    def test_route_by_validation(self):
        clock = FakeClock()
        rails = [ScriptedRail(2, 0.0, clock)]
        with pytest.raises(ConfigurationError, match="route_by"):
            ReplicatedTransport(rails, clock=clock, route_by="speed")

    def test_latency_routing_is_result_identical_to_rows_routing(
        self, small_deployment
    ):
        graph, features, predictor = small_deployment
        config = ShardConfig(num_shards=2, strategy="degree_balanced")

        def sharded(route_by):
            out = ShardedPredictor.from_predictor(predictor).prepare(
                graph, features, config
            )
            out.store.use_replicated_transport(
                [LocalTransport(out.store.shards) for _ in range(2)],
                route_by=route_by,
            )
            return out

        rng = np.random.default_rng(3)
        nodes = rng.choice(graph.num_nodes, size=48, replace=False)
        baseline = sharded("rows").predict(nodes)
        routed = sharded("latency").predict(nodes)
        np.testing.assert_array_equal(baseline.predictions, routed.predictions)
        np.testing.assert_array_equal(baseline.depths, routed.depths)
