"""Failover fuzz: bit-identical serving through replica deaths, clean errors.

The replication layer's guarantee is the transport guarantee one level up:
whatever replicas die (and whenever), a served request either completes with
predictions, exit depths and MAC totals **bit-identical** to the unsharded
:class:`~repro.core.inference.NAIPredictor`, or — when every replica of a
shard is gone — fails with one clean, descriptive
:class:`~repro.exceptions.TransportError`, never a hang (the directory-wide
watchdog enforces that) and never a corrupted store.  The sweep covers shard
counts × replica counts {1, 2, 3} × kill schedules, on in-process rails with
virtual-time retries and on real TCP rails with a server killed mid-stream.
"""

import numpy as np
import pytest

from repro.core import ShardConfig
from repro.exceptions import TransportError
from repro.serving.clock import FakeClock
from repro.shard import ShardedPredictor
from repro.transport import (
    NO_RETRY,
    FaultInjectingTransport,
    LocalTransport,
    ReplicatedTransport,
    RetryPolicy,
    ShardServerGroup,
)

MAC_FIELDS = ("stationary", "propagation", "decision", "classification")

#: Retries with zero backoff: exercises the retry ladder without waiting.
FAST_RETRY = RetryPolicy(
    max_attempts=2,
    backoff_base_seconds=0.0,
    backoff_cap_seconds=0.0,
    jitter_fraction=0.0,
)


def _assert_bit_identical(label, mine, oracle):
    np.testing.assert_array_equal(
        mine.predictions, oracle.predictions, err_msg=f"{label}: predictions"
    )
    np.testing.assert_array_equal(
        mine.depths, oracle.depths, err_msg=f"{label}: depths"
    )
    for name in MAC_FIELDS:
        assert getattr(mine.macs, name) == getattr(oracle.macs, name), (
            f"{label}: MAC field {name} diverged"
        )
    assert mine.macs.total == oracle.macs.total, f"{label}: MAC totals diverged"


def _prepare(deployment, num_shards, replicas):
    graph, features, predictor = deployment
    sharded = ShardedPredictor.from_predictor(predictor).prepare(
        graph,
        features,
        ShardConfig(
            num_shards=num_shards,
            strategy="degree_balanced",
            replication_factor=replicas,
        ),
    )
    assert sharded.store.plan.max_replication == replicas
    return graph, predictor, sharded


def _fault_rails(shards, count):
    return [
        FaultInjectingTransport(LocalTransport(shards), replica_index=index)
        for index in range(count)
    ]


@pytest.mark.parametrize("replicas", [2, 3])
@pytest.mark.parametrize("num_shards", [2, 3])
def test_replica_deaths_mid_bundle_stay_bit_identical(
    fuzz_deployment, num_shards, replicas
):
    """Kill one replica of every shard mid-stream (staggered, some healing):
    serving completes every request bit-identical to the unsharded oracle,
    with zero client-visible failures and failovers actually counted."""
    graph, predictor, sharded = _prepare(fuzz_deployment, num_shards, replicas)
    rails = _fault_rails(sharded.store.shards, replicas)
    for shard_id in range(num_shards):
        rail = shard_id % replicas
        # Rail `rail` loses this shard after a couple of its rounds — i.e.
        # in the middle of some bundle's assembly — and half the windows
        # later heal, exercising the probation path too.
        heal = 8 if shard_id % 2 == 0 else None
        rails[rail].schedule_kill(shard_id, 2, heal, replica_index=rail)
    sharded.store.use_replicated_transport(
        rails, retry_policy=FAST_RETRY, clock=FakeClock(), probe_after_rounds=3
    )

    rng = np.random.default_rng(10 * num_shards + replicas)
    node_ids = rng.permutation(graph.num_nodes)
    oracle = predictor.predict(node_ids)
    mine = sharded.predict(node_ids)
    _assert_bit_identical(f"x{num_shards}r{replicas}", mine, oracle)
    stats = sharded.store.transport.stats.as_dict()
    assert stats["failovers"] > 0
    assert stats["health_transitions"] > 0


def test_replication_factor_one_fails_clean_and_recovers(fuzz_deployment):
    """With no redundancy the same kill schedule must surface one clean,
    descriptive TransportError — no hang, store still consistent: healing
    the shard makes the retried prediction bit-identical to the oracle."""
    graph, predictor, sharded = _prepare(fuzz_deployment, 2, 1)
    rails = _fault_rails(sharded.store.shards, 1)
    rails[0].schedule_kill(0, 2, replica_index=0)
    sharded.store.use_replicated_transport(
        rails, retry_policy=NO_RETRY, clock=FakeClock()
    )

    node_ids = np.arange(graph.num_nodes)
    with pytest.raises(TransportError, match=r"all 1 replica\(s\) of shard 0"):
        sharded.predict(node_ids)
    rails[0].clear_kills()
    oracle = predictor.predict(node_ids)
    _assert_bit_identical("post-heal", sharded.predict(node_ids), oracle)


def test_server_death_during_pipelined_round_fails_over_to_sibling_rail(
    small_deployment,
):
    """Two real TCP fleets as rails; one rail's servers are killed between
    predictions.  The next hop-pipelined round hits dead connections, the
    lazy reconnect sees connection-refused (retryable), the retry budget
    drains, and every request fails over to the surviving rail —
    bit-identical results throughout."""
    graph, features, predictor = small_deployment
    sharded = ShardedPredictor.from_predictor(predictor).prepare(
        graph,
        features,
        ShardConfig(num_shards=2, strategy="hash", replication_factor=2),
    )
    shards = sharded.store.shards
    node_ids = np.arange(0, graph.num_nodes, 3)
    oracle = predictor.predict(node_ids)
    with ShardServerGroup(shards) as rail0_servers:
        with ShardServerGroup(shards) as rail1_servers:
            rails = [
                rail0_servers.connect(timeout_seconds=10.0),
                rail1_servers.connect(timeout_seconds=10.0),
            ]
            sharded.store.use_replicated_transport(rails, retry_policy=FAST_RETRY)
            try:
                _assert_bit_identical(
                    "both-rails-up", sharded.predict(node_ids), oracle
                )
                rail0_servers.stop()  # rail 0 dies, connections included
                _assert_bit_identical(
                    "rail0-dead", sharded.predict(node_ids), oracle
                )
                stats = sharded.store.transport.stats.as_dict()
                assert stats["failovers"] > 0
                assert stats["health_transitions"] > 0
            finally:
                sharded.store.use_transport(LocalTransport(shards))
                for rail in rails:
                    rail.close()


def test_all_socket_replicas_dead_raises_instead_of_hanging(small_deployment):
    graph, features, predictor = small_deployment
    sharded = ShardedPredictor.from_predictor(predictor).prepare(
        graph,
        features,
        ShardConfig(num_shards=2, strategy="hash", replication_factor=2),
    )
    shards = sharded.store.shards
    rail0_servers = ShardServerGroup(shards).start()
    rail1_servers = ShardServerGroup(shards).start()
    rails = [
        rail0_servers.connect(timeout_seconds=5.0),
        rail1_servers.connect(timeout_seconds=5.0),
    ]
    sharded.store.use_replicated_transport(rails, retry_policy=NO_RETRY)
    try:
        sharded.predict(np.arange(12))
        rail0_servers.stop()
        rail1_servers.stop()
        with pytest.raises(TransportError, match="all 2 replica"):
            sharded.predict(np.arange(12))
    finally:
        sharded.store.use_transport(LocalTransport(shards))
        for rail in rails:
            rail.close()
        rail0_servers.stop()
        rail1_servers.stop()
