"""Unit tests for the zero-copy sparse kernels behind the NAI hot path."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ShapeError
from repro.graph import (
    CSRGraph,
    auto_masked_spmm,
    contiguous_runs,
    extract_local_csr_arrays,
    extract_submatrix,
    gather_columns,
    gathered_row_spmm,
    global_to_local_map,
    hop_distances,
    k_hop_neighborhood,
    masked_row_spmm,
    masked_row_spmm_reference,
    runs_nnz,
)


@pytest.fixture(scope="module")
def random_csr():
    rng = np.random.default_rng(42)
    dense = (rng.random((60, 60)) < 0.1).astype(np.float64)
    dense *= rng.random((60, 60))
    return sp.csr_matrix(dense)


@pytest.fixture(scope="module")
def source_matrix():
    rng = np.random.default_rng(7)
    return np.ascontiguousarray(rng.standard_normal((60, 9)))


class TestContiguousRuns:
    def test_empty_mask(self):
        assert contiguous_runs(np.zeros(5, dtype=bool)).shape == (0, 2)

    def test_full_mask_single_run(self):
        assert contiguous_runs(np.ones(4, dtype=bool)).tolist() == [[0, 4]]

    def test_fragmented_mask(self):
        mask = np.array([True, False, True, True, False, True])
        assert contiguous_runs(mask).tolist() == [[0, 1], [2, 4], [5, 6]]

    def test_runs_nnz_matches_mask(self, random_csr):
        rng = np.random.default_rng(0)
        mask = rng.random(60) < 0.4
        runs = contiguous_runs(mask)
        expected = int(np.diff(random_csr.indptr)[mask].sum())
        assert runs_nnz(random_csr.indptr, runs) == expected


class TestMaskedSpMM:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_matches_naive_submatrix_product(self, random_csr, source_matrix, dtype):
        matrix = random_csr.astype(dtype)
        source = np.ascontiguousarray(source_matrix, dtype=dtype)
        rng = np.random.default_rng(3)
        mask = rng.random(60) < 0.5
        rows = np.flatnonzero(mask)
        out = np.full((60, 9), np.nan, dtype=dtype)
        nnz = masked_row_spmm(
            matrix.indptr, matrix.indices, matrix.data, source, out, contiguous_runs(mask)
        )
        expected = masked_row_spmm_reference(matrix, source, rows)
        tol = 1e-12 if dtype == np.float64 else 1e-5
        assert np.allclose(out[rows], expected, atol=tol)
        # Untouched rows keep their previous (NaN) contents.
        assert np.isnan(out[~mask]).all()
        assert nnz == int(np.diff(matrix.indptr)[mask].sum())

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_gathered_matches_naive(self, random_csr, source_matrix, dtype):
        matrix = random_csr.astype(dtype)
        source = np.ascontiguousarray(source_matrix, dtype=dtype)
        rows = np.array([0, 3, 4, 11, 30, 59])
        out = np.full((60, 9), np.nan, dtype=dtype)
        nnz = gathered_row_spmm(
            matrix.indptr, matrix.indices, matrix.data, source, out, rows
        )
        expected = masked_row_spmm_reference(matrix, source, rows)
        tol = 1e-12 if dtype == np.float64 else 1e-5
        assert np.allclose(out[rows], expected, atol=tol)
        assert nnz == int(np.diff(matrix.indptr)[rows].sum())

    def test_auto_dispatch_agrees_with_reference_on_any_mask(self, random_csr, source_matrix):
        rng = np.random.default_rng(11)
        for density in (0.05, 0.5, 0.95):
            mask = rng.random(60) < density
            if not mask.any():
                continue
            out = np.zeros((60, 9))
            auto_masked_spmm(
                random_csr.indptr, random_csr.indices, random_csr.data,
                source_matrix, out, mask,
            )
            rows = np.flatnonzero(mask)
            expected = masked_row_spmm_reference(random_csr, source_matrix, rows)
            assert np.allclose(out[rows], expected, atol=1e-12)

    def test_run_dispatch_threshold_is_a_pure_perf_knob(self, random_csr, source_matrix):
        """Both dispatch strategies compute identical rows and nnz counts.

        ``max_zero_copy_runs=0`` forces the compacting gather for every mask;
        a huge threshold forces per-run zero-copy dispatch.  The tunable
        (exposed as ``NAIConfig.run_dispatch_threshold``) must never change
        results, only performance.
        """
        rng = np.random.default_rng(23)
        mask = rng.random(60) < 0.4
        rows = np.flatnonzero(mask)
        expected = masked_row_spmm_reference(random_csr, source_matrix, rows)
        nnz_counts = []
        for threshold in (0, 1_000_000):
            out = np.zeros((60, 9))
            nnz = auto_masked_spmm(
                random_csr.indptr, random_csr.indices, random_csr.data,
                source_matrix, out, mask, max_zero_copy_runs=threshold,
            )
            nnz_counts.append(nnz)
            assert np.allclose(out[rows], expected, atol=1e-12)
        assert nnz_counts[0] == nnz_counts[1]

    def test_assume_bounded_skips_only_the_bounds_scan(self, random_csr, source_matrix):
        """assume_bounded must not change results for in-bounds arrays."""
        mask = np.zeros(60, dtype=bool)
        mask[5:25] = True
        rows = np.flatnonzero(mask)
        expected = masked_row_spmm_reference(random_csr, source_matrix, rows)
        out = np.zeros((60, 9))
        auto_masked_spmm(
            random_csr.indptr, random_csr.indices, random_csr.data,
            source_matrix, out, mask, assume_bounded=True,
        )
        assert np.allclose(out[rows], expected, atol=1e-12)

    def test_empty_runs_are_noops(self, random_csr, source_matrix):
        out = np.full((60, 9), 3.14)
        nnz = masked_row_spmm(
            random_csr.indptr, random_csr.indices, random_csr.data,
            source_matrix, out, np.empty((0, 2), dtype=np.int64),
        )
        assert nnz == 0
        assert (out == 3.14).all()

    def test_dtype_mismatch_rejected(self, random_csr, source_matrix):
        out = np.zeros((60, 9), dtype=np.float32)
        with pytest.raises(ShapeError):
            masked_row_spmm(
                random_csr.indptr, random_csr.indices, random_csr.data,
                source_matrix, out, np.array([[0, 60]]),
            )

    def test_short_source_rejected_instead_of_oob_read(self, random_csr, source_matrix):
        out = np.zeros((60, 9))
        short_source = np.ascontiguousarray(source_matrix[:40])
        with pytest.raises(ShapeError):
            masked_row_spmm(
                random_csr.indptr, random_csr.indices, random_csr.data,
                short_source, out, np.array([[0, 60]]),
            )

    def test_shape_mismatch_rejected(self, random_csr, source_matrix):
        out = np.zeros((10, 9))
        with pytest.raises(ShapeError):
            masked_row_spmm(
                random_csr.indptr, random_csr.indices, random_csr.data,
                source_matrix, out, np.array([[0, 10]]),
            )


class TestGatherAndDistances:
    def test_gather_columns_matches_scipy_slicing(self, random_csr):
        rows = np.array([2, 5, 7, 40])
        expected = random_csr[rows].indices
        assert np.array_equal(
            gather_columns(random_csr.indptr, random_csr.indices, rows), expected
        )

    def test_gather_columns_empty_rows(self):
        matrix = sp.csr_matrix((5, 5))
        out = gather_columns(matrix.indptr, matrix.indices, np.array([0, 3]))
        assert out.size == 0

    def test_hop_distances_on_path_graph(self):
        graph = CSRGraph.from_edges([(i, i + 1) for i in range(5)], num_nodes=6)
        adj = graph.adjacency
        dist = hop_distances(adj.indptr, adj.indices, np.array([0]), 6, max_hops=3)
        assert dist.tolist() == [0, 1, 2, 3, 7, 7]  # 7 == sentinel num_nodes + 1

    def test_hop_distances_multi_source(self):
        graph = CSRGraph.from_edges([(i, i + 1) for i in range(5)], num_nodes=6)
        adj = graph.adjacency
        dist = hop_distances(adj.indptr, adj.indices, np.array([0, 5]), 6, max_hops=5)
        assert dist.tolist() == [0, 1, 2, 2, 1, 0]


class TestExtraction:
    def test_global_to_local_roundtrip(self):
        node_ids = np.array([7, 3, 9])
        lookup = global_to_local_map(node_ids, 12)
        assert lookup[7] == 0 and lookup[3] == 1 and lookup[9] == 2
        assert (lookup[[0, 1, 2, 4]] == -1).all()

    def test_extract_submatrix_matches_double_fancy_index(self, random_csr):
        node_ids = np.array([5, 0, 17, 44, 3])
        ours = extract_submatrix(random_csr, node_ids)
        expected = random_csr[node_ids][:, node_ids]
        assert np.allclose(ours.toarray(), expected.toarray())

    def test_extract_local_arrays_feed_the_kernel(self, random_csr, source_matrix):
        node_ids = np.arange(60)[::-1].copy()  # a permutation
        indptr, indices, data = extract_local_csr_arrays(random_csr, node_ids)
        out = np.zeros((60, 9))
        masked_row_spmm(indptr, indices, data, source_matrix, out, np.array([[0, 60]]))
        permuted = random_csr[node_ids][:, node_ids]
        assert np.allclose(out, permuted @ source_matrix)

    def test_extract_empty_selection_rows(self):
        matrix = sp.csr_matrix((6, 6))
        sub = extract_submatrix(matrix, np.array([1, 4]))
        assert sub.shape == (2, 2)
        assert sub.nnz == 0

    def test_k_hop_local_adjacency_uses_fast_extraction(self):
        graph = CSRGraph.from_edges([(i, i + 1) for i in range(5)], num_nodes=6)
        sub = k_hop_neighborhood(graph, np.array([2]), 2)
        dense = graph.adjacency.toarray()[np.ix_(sub.node_ids, sub.node_ids)]
        assert np.allclose(sub.adjacency.toarray(), dense)

    def test_k_hop_hops_are_sorted_and_prefix_counts_match(self):
        graph = CSRGraph.from_edges([(i, i + 1) for i in range(5)], num_nodes=6)
        sub = k_hop_neighborhood(graph, np.array([0]), 4)
        assert (np.diff(sub.hops) >= 0).all()
        for hop in range(5):
            assert sub.prefix_within(hop) == int(np.count_nonzero(sub.hops <= hop))

    def test_k_hop_without_adjacency(self):
        graph = CSRGraph.from_edges([(i, i + 1) for i in range(5)], num_nodes=6)
        sub = k_hop_neighborhood(graph, np.array([2]), 1, include_adjacency=False)
        assert sub.adjacency is None
        with pytest.raises(Exception):
            sub.as_graph()
