"""Tests for the normalized adjacency operators (Eq. 1)."""

import numpy as np
import pytest

from repro.exceptions import InvalidNormalizationError
from repro.graph import (
    CSRGraph,
    NormalizationScheme,
    laplacian,
    normalized_adjacency,
    resolve_gamma,
    second_largest_eigenvalue_magnitude,
)

PATH = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)], num_nodes=4)


class TestResolveGamma:
    @pytest.mark.parametrize(
        "scheme, expected",
        [("transition", 1.0), ("symmetric", 0.5), ("reverse", 0.0), (0.3, 0.3)],
    )
    def test_accepted_values(self, scheme, expected):
        assert resolve_gamma(scheme) == pytest.approx(expected)

    def test_enum_value(self):
        assert resolve_gamma(NormalizationScheme.SYMMETRIC) == 0.5

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidNormalizationError):
            resolve_gamma("bogus")

    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_out_of_range_rejected(self, value):
        with pytest.raises(InvalidNormalizationError):
            resolve_gamma(value)


class TestNormalizedAdjacency:
    def test_transition_matrix_columns_sum_to_one(self):
        # gamma=1: A~ D~^-1 has columns summing to 1.
        a_hat = normalized_adjacency(PATH, gamma="transition").toarray()
        assert np.allclose(a_hat.sum(axis=0), 1.0)

    def test_reverse_transition_rows_sum_to_one(self):
        # gamma=0: D~^-1 A~ has rows summing to 1.
        a_hat = normalized_adjacency(PATH, gamma="reverse").toarray()
        assert np.allclose(a_hat.sum(axis=1), 1.0)

    def test_symmetric_is_symmetric(self):
        a_hat = normalized_adjacency(PATH, gamma="symmetric").toarray()
        assert np.allclose(a_hat, a_hat.T)

    def test_symmetric_spectral_radius_at_most_one(self):
        a_hat = normalized_adjacency(PATH, gamma="symmetric").toarray()
        eigenvalues = np.linalg.eigvalsh(a_hat)
        assert np.max(np.abs(eigenvalues)) <= 1.0 + 1e-10

    def test_self_loops_added_by_default(self):
        a_hat = normalized_adjacency(PATH).toarray()
        assert np.all(a_hat.diagonal() > 0)

    def test_without_self_loops(self):
        a_hat = normalized_adjacency(PATH, add_self_loops=False).toarray()
        assert np.allclose(a_hat.diagonal(), 0.0)

    def test_isolated_node_without_self_loops_is_safe(self):
        graph = CSRGraph.from_edges([(0, 1)], num_nodes=3)
        a_hat = normalized_adjacency(graph, add_self_loops=False).toarray()
        assert np.all(np.isfinite(a_hat))

    def test_matches_manual_symmetric_formula(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], num_nodes=3)
        adjacency = graph.add_self_loops().adjacency.toarray()
        degrees = adjacency.sum(axis=1)
        expected = adjacency / np.sqrt(np.outer(degrees, degrees))
        assert np.allclose(normalized_adjacency(graph).toarray(), expected)


class TestLaplacianAndSpectrum:
    def test_normalized_laplacian_psd(self):
        lap = laplacian(PATH).toarray()
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() >= -1e-10

    def test_combinatorial_laplacian_row_sums_zero(self):
        lap = laplacian(PATH, normalized=False).toarray()
        assert np.allclose(lap.sum(axis=1), 0.0)

    def test_second_eigenvalue_below_one(self):
        value = second_largest_eigenvalue_magnitude(PATH)
        assert 0.0 <= value <= 1.0

    def test_second_eigenvalue_trivial_graph(self):
        tiny = CSRGraph.from_edges([(0, 1)], num_nodes=2)
        assert second_largest_eigenvalue_magnitude(tiny) == 0.0
