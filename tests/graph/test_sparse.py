"""Unit tests for the CSRGraph container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphConstructionError
from repro.graph import CSRGraph

TRIANGLE = [(0, 1), (1, 2), (2, 0)]


class TestConstruction:
    def test_from_edges_builds_symmetric_adjacency(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        dense = graph.adjacency.toarray()
        assert np.allclose(dense, dense.T)
        assert graph.num_nodes == 3
        assert graph.num_edges == 3

    def test_from_edges_directed(self):
        graph = CSRGraph.from_edges([(0, 1)], num_nodes=2, undirected=False)
        dense = graph.adjacency.toarray()
        assert dense[0, 1] == 1.0
        assert dense[1, 0] == 0.0

    def test_from_edges_infers_num_nodes(self):
        graph = CSRGraph.from_edges([(0, 4)])
        assert graph.num_nodes == 5

    def test_from_edges_empty_requires_num_nodes(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph.from_edges([])

    def test_from_edges_empty_with_num_nodes(self):
        graph = CSRGraph.from_edges([], num_nodes=4)
        assert graph.num_nodes == 4
        assert graph.num_directed_edges == 0

    def test_from_edges_rejects_negative_ids(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph.from_edges([(-1, 0)])

    def test_from_edges_rejects_bad_shape(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph.from_edges(np.array([[0, 1, 2]]))

    def test_from_edges_rejects_too_small_num_nodes(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph.from_edges([(0, 5)], num_nodes=3)

    def test_duplicate_edges_collapse_to_binary(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 1), (1, 0)], num_nodes=2)
        assert graph.adjacency[0, 1] == 1.0

    def test_weighted_edges_preserved(self):
        graph = CSRGraph.from_edges([(0, 1)], num_nodes=2, weights=[2.5])
        assert graph.adjacency[0, 1] == 2.5

    def test_weights_length_mismatch(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph.from_edges([(0, 1)], num_nodes=2, weights=[1.0, 2.0])

    def test_from_dense_roundtrip(self):
        dense = np.array([[0.0, 1.0], [1.0, 0.0]])
        graph = CSRGraph.from_dense(dense)
        assert np.allclose(graph.adjacency.toarray(), dense)

    def test_non_square_rejected(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(sp.csr_matrix(np.ones((2, 3))))


class TestProperties:
    def test_degrees(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        assert np.allclose(graph.degrees(), [2, 2, 2])

    def test_degrees_with_self_loops(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        assert np.allclose(graph.degrees(with_self_loops=True), [3, 3, 3])

    def test_degree_matrix_diagonal(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        assert np.allclose(graph.degree_matrix().diagonal(), [2, 2, 2])

    def test_num_edges_counts_undirected(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], num_nodes=3)
        assert graph.num_edges == 2
        assert graph.num_directed_edges == 4

    def test_num_edges_with_multiple_self_loops(self):
        """Regression: nnz // 2 + diag overcounted once >= 2 self loops exist.

        Three self loops plus one undirected edge store 5 nonzeros; the true
        undirected edge count is 4, the old formula reported 5.
        """
        graph = CSRGraph.from_edges(
            [(0, 0), (1, 1), (2, 2), (0, 1)], num_nodes=3
        )
        assert graph.num_directed_edges == 5
        assert graph.num_edges == 4

    def test_num_edges_with_even_self_loops(self):
        graph = CSRGraph.from_edges([(0, 0), (1, 1), (0, 1)], num_nodes=2)
        assert graph.num_edges == 3

    def test_num_edges_single_self_loop_unchanged(self):
        graph = CSRGraph.from_edges(TRIANGLE + [(0, 0)], num_nodes=3)
        assert graph.num_edges == 4

    def test_has_self_loops(self):
        plain = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        assert not plain.has_self_loops()
        assert plain.add_self_loops().has_self_loops()

    def test_neighbors(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2)], num_nodes=4)
        assert set(graph.neighbors(0)) == {1, 2}
        assert graph.neighbors(3).size == 0

    def test_neighbors_out_of_range(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        with pytest.raises(GraphConstructionError):
            graph.neighbors(10)

    def test_repr_mentions_size(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        assert "num_nodes=3" in repr(graph)


class TestTransformations:
    def test_add_self_loops_sets_diagonal(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3).add_self_loops()
        assert np.allclose(graph.adjacency.diagonal(), 1.0)

    def test_add_self_loops_does_not_mutate_original(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        graph.add_self_loops()
        assert not graph.has_self_loops()

    def test_remove_self_loops(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3).add_self_loops()
        assert not graph.remove_self_loops().has_self_loops()

    def test_add_self_loops_preserves_larger_diagonal(self):
        graph = CSRGraph.from_dense(
            np.array([[5.0, 1.0], [1.0, 0.0]])
        ).add_self_loops()
        assert graph.adjacency[0, 0] == 5.0
        assert graph.adjacency[1, 1] == 1.0

    def test_add_self_loops_custom_weight(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3).add_self_loops(weight=2.0)
        assert np.allclose(graph.adjacency.diagonal(), 2.0)

    def test_add_remove_roundtrip_preserves_off_diagonal(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        roundtrip = graph.add_self_loops().remove_self_loops()
        assert roundtrip == graph

    def test_remove_self_loops_keeps_weights(self):
        graph = CSRGraph.from_dense(
            np.array([[3.0, 2.5], [2.5, 0.0]])
        ).remove_self_loops()
        assert graph.adjacency[0, 1] == 2.5
        assert graph.adjacency.diagonal().sum() == 0.0

    def test_subgraph_relabels(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)], num_nodes=4)
        sub = graph.subgraph([1, 2])
        assert sub.num_nodes == 2
        assert sub.adjacency[0, 1] == 1.0

    def test_subgraph_out_of_range(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        with pytest.raises(GraphConstructionError):
            graph.subgraph([0, 7])

    def test_to_networkx_roundtrip(self):
        graph = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 3

    def test_equality(self):
        a = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        b = CSRGraph.from_edges(TRIANGLE, num_nodes=3)
        c = CSRGraph.from_edges([(0, 1)], num_nodes=3)
        assert a == b
        assert a != c
