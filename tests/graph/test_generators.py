"""Tests for the synthetic graph / feature generators."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.graph import SyntheticGraphSpec, generate_community_graph, generate_features

SPEC = SyntheticGraphSpec(num_nodes=300, num_classes=5, avg_degree=8.0, homophily=0.8)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"num_classes": 1},
            {"num_classes": 500},
            {"avg_degree": 0.0},
            {"homophily": 0.0},
            {"homophily": 1.5},
            {"degree_exponent": 1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        base = dict(num_nodes=300, num_classes=5, avg_degree=8.0)
        base.update(kwargs)
        with pytest.raises(DatasetError):
            SyntheticGraphSpec(**base)


class TestGenerateCommunityGraph:
    def test_shapes_and_label_range(self):
        graph, labels = generate_community_graph(SPEC, rng=0)
        assert graph.num_nodes == SPEC.num_nodes
        assert labels.shape == (SPEC.num_nodes,)
        assert labels.min() >= 0 and labels.max() < SPEC.num_classes

    def test_every_class_present(self):
        _, labels = generate_community_graph(SPEC, rng=1)
        assert len(np.unique(labels)) == SPEC.num_classes

    def test_no_self_loops(self):
        graph, _ = generate_community_graph(SPEC, rng=2)
        assert not graph.has_self_loops()

    def test_average_degree_close_to_target(self):
        graph, _ = generate_community_graph(SPEC, rng=3)
        avg_degree = graph.degrees().mean()
        assert SPEC.avg_degree * 0.5 <= avg_degree <= SPEC.avg_degree * 2.0

    def test_homophily_dominates_edges(self):
        graph, labels = generate_community_graph(SPEC, rng=4)
        coo = graph.adjacency.tocoo()
        same = (labels[coo.row] == labels[coo.col]).mean()
        assert same > 0.5

    def test_degree_distribution_has_hubs(self):
        graph, _ = generate_community_graph(SPEC, rng=5)
        degrees = graph.degrees()
        assert degrees.max() > 3 * degrees.mean()

    def test_deterministic_given_seed(self):
        graph_a, labels_a = generate_community_graph(SPEC, rng=6)
        graph_b, labels_b = generate_community_graph(SPEC, rng=6)
        assert graph_a == graph_b
        assert np.array_equal(labels_a, labels_b)

    def test_connected_single_component(self):
        graph, _ = generate_community_graph(SPEC, rng=7)
        import networkx as nx

        assert nx.number_connected_components(graph.to_networkx()) == 1


class TestGenerateFeatures:
    def test_shape(self):
        labels = np.array([0, 0, 1, 1, 2])
        features = generate_features(labels, 16, rng=0)
        assert features.shape == (5, 16)

    def test_class_conditional_means_differ(self):
        labels = np.repeat([0, 1], 500)
        features = generate_features(labels, 8, class_separation=2.0, noise_scale=0.1, rng=0)
        mean_gap = np.abs(features[:500].mean(axis=0) - features[500:].mean(axis=0)).mean()
        assert mean_gap > 0.5

    def test_separation_zero_gives_overlapping_classes(self):
        labels = np.repeat([0, 1], 500)
        features = generate_features(labels, 8, class_separation=0.0, noise_scale=1.0, rng=0)
        mean_gap = np.abs(features[:500].mean(axis=0) - features[500:].mean(axis=0)).mean()
        assert mean_gap < 0.2

    def test_invalid_dimension_rejected(self):
        with pytest.raises(DatasetError):
            generate_features(np.array([0, 1]), 0)

    def test_deterministic_given_seed(self):
        labels = np.array([0, 1, 2, 0])
        a = generate_features(labels, 4, rng=9)
        b = generate_features(labels, 4, rng=9)
        assert np.allclose(a, b)
