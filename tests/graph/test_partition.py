"""Tests for the inductive train/val/test partitioning."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.graph import (
    CSRGraph,
    InductiveSplit,
    build_inductive_partition,
    make_inductive_split,
)

GRAPH = CSRGraph.from_edges([(i, i + 1) for i in range(9)], num_nodes=10)


class TestInductiveSplit:
    def test_observed_is_union_of_train_and_val(self):
        split = InductiveSplit(np.array([0, 1]), np.array([2]), np.array([3, 4]))
        assert split.observed_idx.tolist() == [0, 1, 2]
        assert split.num_observed == 3
        assert split.num_test == 2

    def test_overlapping_sets_rejected(self):
        with pytest.raises(DatasetError):
            InductiveSplit(np.array([0, 1]), np.array([1]), np.array([2]))


class TestMakeInductiveSplit:
    def test_sizes_match_fractions(self):
        split = make_inductive_split(100, train_fraction=0.5, val_fraction=0.25, rng=0)
        assert split.train_idx.shape[0] == 50
        assert split.val_idx.shape[0] == 25
        assert split.test_idx.shape[0] == 25

    def test_covers_all_nodes_exactly_once(self):
        split = make_inductive_split(57, train_fraction=0.6, val_fraction=0.2, rng=3)
        combined = np.concatenate([split.train_idx, split.val_idx, split.test_idx])
        assert sorted(combined.tolist()) == list(range(57))

    def test_deterministic_given_seed(self):
        a = make_inductive_split(40, rng=11)
        b = make_inductive_split(40, rng=11)
        assert np.array_equal(a.train_idx, b.train_idx)
        assert np.array_equal(a.test_idx, b.test_idx)

    @pytest.mark.parametrize("train, val", [(0.0, 0.2), (1.0, 0.0), (0.7, 0.4)])
    def test_invalid_fractions_rejected(self, train, val):
        with pytest.raises(DatasetError):
            make_inductive_split(30, train_fraction=train, val_fraction=val)


class TestBuildInductivePartition:
    def test_train_graph_excludes_test_nodes(self):
        split = make_inductive_split(10, train_fraction=0.5, val_fraction=0.2, rng=0)
        partition = build_inductive_partition(GRAPH, split)
        assert partition.train_graph.num_nodes == split.num_observed
        assert partition.full_graph.num_nodes == 10

    def test_mapping_roundtrip(self):
        split = make_inductive_split(10, train_fraction=0.5, val_fraction=0.2, rng=0)
        partition = build_inductive_partition(GRAPH, split)
        local = partition.train_local(split.train_idx)
        assert np.array_equal(split.observed_idx[local], split.train_idx)

    def test_unseen_node_lookup_rejected(self):
        split = make_inductive_split(10, train_fraction=0.5, val_fraction=0.2, rng=0)
        partition = build_inductive_partition(GRAPH, split)
        with pytest.raises(DatasetError):
            partition.train_local(split.test_idx[:1])

    def test_split_beyond_graph_rejected(self):
        split = make_inductive_split(20, train_fraction=0.5, val_fraction=0.2, rng=0)
        with pytest.raises(DatasetError):
            build_inductive_partition(GRAPH, split)

    def test_edges_within_observed_are_preserved(self):
        split = InductiveSplit(
            train_idx=np.array([0, 1, 2]), val_idx=np.array([3]), test_idx=np.arange(4, 10)
        )
        partition = build_inductive_partition(GRAPH, split)
        # Path edges 0-1, 1-2, 2-3 survive in the induced subgraph.
        assert partition.train_graph.num_edges == 3
