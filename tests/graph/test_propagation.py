"""Tests for feature propagation (Eq. 2) and the backbone aggregators."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.graph import (
    CSRGraph,
    normalized_adjacency,
    propagate_features,
    propagation_steps,
    s2gc_aggregate,
    sign_concatenate,
    smoothness_distance,
)

GRAPH = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_nodes=4)
FEATURES = np.arange(8, dtype=float).reshape(4, 2)


class TestPropagateFeatures:
    def test_depth_zero_returns_input(self):
        outputs = propagate_features(GRAPH, FEATURES, 0)
        assert len(outputs) == 1
        assert np.allclose(outputs[0], FEATURES)

    def test_returns_k_plus_one_matrices(self):
        outputs = propagate_features(GRAPH, FEATURES, 3)
        assert len(outputs) == 4
        assert all(matrix.shape == FEATURES.shape for matrix in outputs)

    def test_matches_manual_matrix_power(self):
        a_hat = normalized_adjacency(GRAPH).toarray()
        outputs = propagate_features(GRAPH, FEATURES, 2)
        assert np.allclose(outputs[2], a_hat @ a_hat @ FEATURES)

    def test_return_last_only(self):
        last = propagate_features(GRAPH, FEATURES, 2, return_all=False)
        assert isinstance(last, np.ndarray)
        assert last.shape == FEATURES.shape

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            propagate_features(GRAPH, FEATURES, -1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            propagate_features(GRAPH, FEATURES[:2], 1)

    def test_one_dimensional_features_rejected(self):
        with pytest.raises(ShapeError):
            propagate_features(GRAPH, FEATURES[:, 0], 1)

    def test_propagation_is_linear(self):
        a = propagate_features(GRAPH, FEATURES, 2)[2]
        b = propagate_features(GRAPH, 3.0 * FEATURES, 2)[2]
        assert np.allclose(b, 3.0 * a)

    def test_constant_features_are_fixed_point_for_row_stochastic(self):
        constant = np.ones((4, 3))
        outputs = propagate_features(GRAPH, constant, 3, gamma="reverse")
        assert np.allclose(outputs[3], constant)


class TestPropagationSteps:
    def test_steps_match_batch_propagation(self):
        a_hat = normalized_adjacency(GRAPH)
        expected = propagate_features(GRAPH, FEATURES, 3)
        for depth, step in enumerate(propagation_steps(a_hat, FEATURES, 3), start=1):
            assert np.allclose(step, expected[depth])

    def test_steps_count(self):
        a_hat = normalized_adjacency(GRAPH)
        assert len(list(propagation_steps(a_hat, FEATURES, 5))) == 5


class TestAggregators:
    def test_s2gc_average(self):
        matrices = [np.full((2, 2), value) for value in (1.0, 2.0, 3.0)]
        assert np.allclose(s2gc_aggregate(matrices), 2.0)

    def test_s2gc_empty_rejected(self):
        with pytest.raises(ShapeError):
            s2gc_aggregate([])

    def test_sign_concatenation_shape(self):
        matrices = [np.zeros((3, 2)), np.ones((3, 2))]
        combined = sign_concatenate(matrices)
        assert combined.shape == (3, 4)
        assert np.allclose(combined[:, 2:], 1.0)

    def test_sign_empty_rejected(self):
        with pytest.raises(ShapeError):
            sign_concatenate([])


class TestSmoothnessDistance:
    def test_zero_for_identical_matrices(self):
        assert np.allclose(smoothness_distance(FEATURES, FEATURES), 0.0)

    def test_matches_manual_norm(self):
        other = FEATURES + 1.0
        assert np.allclose(smoothness_distance(FEATURES, other), np.sqrt(FEATURES.shape[1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            smoothness_distance(FEATURES, FEATURES[:2])
