"""Tests for supporting-node sampling (k-hop neighbourhoods)."""

import numpy as np
import pytest

from repro.exceptions import GraphConstructionError
from repro.graph import (
    CSRGraph,
    batch_iterator,
    k_hop_neighborhood,
    supporting_node_counts,
)

# A path graph 0-1-2-3-4-5 makes hop counts easy to reason about.
PATH = CSRGraph.from_edges([(i, i + 1) for i in range(5)], num_nodes=6)


class TestKHopNeighborhood:
    def test_zero_hops_keeps_only_targets(self):
        sub = k_hop_neighborhood(PATH, np.array([2]), 0)
        assert sub.num_supporting_nodes == 1
        assert sub.node_ids.tolist() == [2]

    def test_one_hop_from_middle(self):
        sub = k_hop_neighborhood(PATH, np.array([2]), 1)
        assert set(sub.node_ids.tolist()) == {1, 2, 3}

    def test_hops_recorded_correctly(self):
        sub = k_hop_neighborhood(PATH, np.array([0]), 3)
        hop_of = dict(zip(sub.node_ids.tolist(), sub.hops.tolist()))
        assert hop_of == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_targets_come_first(self):
        sub = k_hop_neighborhood(PATH, np.array([4, 1]), 2)
        assert set(sub.node_ids[sub.target_local].tolist()) == {4, 1}

    def test_local_adjacency_matches_global(self):
        sub = k_hop_neighborhood(PATH, np.array([2]), 2)
        global_dense = PATH.adjacency.toarray()[np.ix_(sub.node_ids, sub.node_ids)]
        assert np.allclose(sub.adjacency.toarray(), global_dense)

    def test_exhausts_component(self):
        sub = k_hop_neighborhood(PATH, np.array([0]), 10)
        assert sub.num_supporting_nodes == 6

    def test_empty_batch_rejected(self):
        with pytest.raises(GraphConstructionError):
            k_hop_neighborhood(PATH, np.array([], dtype=int), 2)

    def test_out_of_range_target_rejected(self):
        with pytest.raises(GraphConstructionError):
            k_hop_neighborhood(PATH, np.array([99]), 2)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            k_hop_neighborhood(PATH, np.array([0]), -1)

    def test_as_graph_wrapper(self):
        sub = k_hop_neighborhood(PATH, np.array([2]), 1)
        assert sub.as_graph().num_nodes == sub.num_supporting_nodes


class TestSupportingNodeCounts:
    def test_counts_monotonically_increase(self):
        counts = supporting_node_counts(PATH, np.array([0]), 4)
        assert counts == sorted(counts)
        assert counts[0] == 1

    def test_counts_saturate_at_component_size(self):
        counts = supporting_node_counts(PATH, np.array([0]), 10)
        assert counts[-1] == 6


class TestBatchIterator:
    def test_splits_into_expected_sizes(self):
        batches = batch_iterator(np.arange(10), 4)
        assert [len(batch) for batch in batches] == [4, 4, 2]

    def test_preserves_order(self):
        batches = batch_iterator(np.arange(5), 2)
        assert np.concatenate(batches).tolist() == list(range(5))

    def test_rejects_non_positive_batch(self):
        with pytest.raises(ValueError):
            batch_iterator(np.arange(5), 0)
