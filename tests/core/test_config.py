"""Tests for the configuration dataclasses."""

import pytest

from repro.core import DistillationConfig, GateTrainingConfig, NAIConfig, TrainingConfig
from repro.exceptions import ConfigurationError


class TestTrainingConfig:
    def test_defaults_valid(self):
        config = TrainingConfig()
        assert config.epochs > 0

    @pytest.mark.parametrize(
        "kwargs",
        [{"epochs": 0}, {"lr": 0.0}, {"weight_decay": -1.0}, {"patience": 0}],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainingConfig(**kwargs)

    def test_with_updates(self):
        config = TrainingConfig().with_updates(lr=0.5)
        assert config.lr == 0.5


class TestDistillationConfig:
    def test_defaults_valid(self):
        config = DistillationConfig()
        assert config.enable_single_scale and config.enable_multi_scale

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"temperature_single": 0.0},
            {"temperature_multi": -1.0},
            {"lambda_single": 1.5},
            {"lambda_multi": -0.1},
            {"ensemble_size": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DistillationConfig(**kwargs)

    def test_with_updates_preserves_training(self):
        config = DistillationConfig(training=TrainingConfig(epochs=5))
        updated = config.with_updates(lambda_single=0.2)
        assert updated.training.epochs == 5
        assert updated.lambda_single == 0.2


class TestNAIConfig:
    def test_defaults_valid(self):
        config = NAIConfig()
        assert config.t_min == config.t_max == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"t_min": 0},
            {"t_min": 3, "t_max": 2},
            {"distance_threshold": -0.1},
            {"batch_size": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            NAIConfig(**kwargs)

    def test_validated_against_depth(self):
        config = NAIConfig(t_min=1, t_max=4)
        with pytest.raises(ConfigurationError):
            config.validated_against_depth(3)
        assert config.validated_against_depth(5) is config

    def test_with_updates(self):
        config = NAIConfig(t_min=1, t_max=3).with_updates(batch_size=17)
        assert config.batch_size == 17
        assert config.t_max == 3


class TestGateTrainingConfig:
    def test_defaults_valid(self):
        assert GateTrainingConfig().epochs > 0

    @pytest.mark.parametrize(
        "kwargs",
        [{"epochs": 0}, {"lr": 0.0}, {"gumbel_temperature": 0.0}, {"penalty_mu": 0.0}],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GateTrainingConfig(**kwargs)

    def test_with_updates(self):
        assert GateTrainingConfig().with_updates(epochs=3).epochs == 3
