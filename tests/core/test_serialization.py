"""Tests for saving / loading trained NAI pipelines."""

import numpy as np
import pytest

from repro import NAI, SGC, load_pipeline, save_pipeline
from repro.core import DistillationConfig, TrainingConfig
from repro.exceptions import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory, trained_nai):
    path = tmp_path_factory.mktemp("archives") / "pipeline.npz"
    return save_pipeline(trained_nai, path)


class TestSavePipeline:
    def test_unfitted_pipeline_rejected(self, tiny_dataset, tmp_path):
        backbone = SGC(tiny_dataset.num_features, tiny_dataset.num_classes, depth=2, rng=0)
        pipeline = NAI(backbone, rng=0)
        with pytest.raises(NotFittedError):
            save_pipeline(pipeline, tmp_path / "nope.npz")

    def test_archive_created_with_npz_suffix(self, trained_nai, tmp_path):
        path = save_pipeline(trained_nai, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_archive_contains_header_and_weights(self, archive_path):
        with np.load(archive_path) as archive:
            assert "__header__" in archive.files
            assert any(key.startswith("classifier/1/") for key in archive.files)
            assert any(key.startswith("gate/") for key in archive.files)


class TestLoadPipeline:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_pipeline(tmp_path / "missing.npz")

    def test_non_pipeline_archive_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, values=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_pipeline(path)

    def test_roundtrip_restores_structure(self, archive_path, trained_nai):
        restored = load_pipeline(archive_path)
        assert restored.backbone.depth == trained_nai.backbone.depth
        assert len(restored.classifiers) == len(trained_nai.classifiers)
        assert restored.gate_nap is not None
        assert restored.report.classifier_val_accuracy.keys() == (
            trained_nai.report.classifier_val_accuracy.keys()
        )

    def test_roundtrip_preserves_predictions(self, archive_path, trained_nai, tiny_dataset):
        restored = load_pipeline(archive_path)
        original = trained_nai.evaluate(tiny_dataset, policy="none")
        recovered = restored.evaluate(tiny_dataset, policy="none")
        assert np.array_equal(original.predictions, recovered.predictions)

    def test_roundtrip_preserves_gate_decisions(self, archive_path, trained_nai, tiny_dataset):
        restored = load_pipeline(archive_path)
        original = trained_nai.evaluate(tiny_dataset, policy="gate")
        recovered = restored.evaluate(tiny_dataset, policy="gate")
        assert np.array_equal(original.predictions, recovered.predictions)
        assert np.array_equal(original.depths, recovered.depths)

    def test_roundtrip_preserves_threshold_calibration(self, archive_path, trained_nai):
        restored = load_pipeline(archive_path)
        assert restored.suggest_distance_threshold(0.5) == pytest.approx(
            trained_nai.suggest_distance_threshold(0.5)
        )

    def test_restored_pipeline_without_refit_supports_distance_policy(
        self, archive_path, tiny_dataset
    ):
        restored = load_pipeline(archive_path)
        result = restored.evaluate(
            tiny_dataset,
            policy="distance",
            config=restored.inference_config(
                distance_threshold=restored.suggest_distance_threshold(0.6)
            ),
        )
        assert result.num_nodes == tiny_dataset.split.num_test


class TestRoundtripWithoutGates:
    def test_pipeline_without_gates(self, tiny_dataset, tmp_path):
        backbone = SGC(tiny_dataset.num_features, tiny_dataset.num_classes, depth=2, rng=1)
        pipeline = NAI(
            backbone,
            distillation_config=DistillationConfig(training=TrainingConfig(epochs=10)),
            train_gates=False,
            rng=1,
        ).fit(tiny_dataset)
        path = save_pipeline(pipeline, tmp_path / "no_gates.npz")
        restored = load_pipeline(path)
        assert restored.gate_nap is None
        original = pipeline.evaluate(tiny_dataset, policy="none")
        recovered = restored.evaluate(tiny_dataset, policy="none")
        assert np.array_equal(original.predictions, recovered.predictions)
