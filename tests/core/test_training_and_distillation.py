"""Tests for the classifier training loop and Inception Distillation."""

import numpy as np
import pytest

from repro.core import (
    DistillationConfig,
    InceptionDistillation,
    TrainingConfig,
    evaluate_classifier,
    predict_logits,
    train_classifier,
)
from repro.exceptions import ConfigurationError
from repro.models import SGC
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def small_problem():
    dataset = load_dataset("flickr-sim", scale=0.2)
    partition = dataset.partition()
    backbone = SGC(dataset.num_features, dataset.num_classes, depth=3, rng=0)
    propagated = backbone.precompute(partition.train_graph, dataset.observed_features())
    labels = dataset.observed_labels()
    labeled = partition.train_local(dataset.split.train_idx)
    val = partition.train_local(dataset.split.val_idx)
    return backbone, propagated, labels, labeled, val


class TestTrainClassifier:
    def test_loss_decreases(self, small_problem):
        backbone, propagated, labels, labeled, val = small_problem
        classifier = backbone.make_classifier(3)
        history = train_classifier(
            classifier, propagated, labels, labeled, val,
            config=TrainingConfig(epochs=40, lr=0.05, patience=40),
        )
        assert history.train_loss[-1] < history.train_loss[0]

    def test_early_stopping_limits_epochs(self, small_problem):
        backbone, propagated, labels, labeled, val = small_problem
        classifier = backbone.make_classifier(1)
        history = train_classifier(
            classifier, propagated, labels, labeled, val,
            config=TrainingConfig(epochs=500, lr=0.05, patience=5),
        )
        assert history.num_epochs < 500

    def test_best_weights_restored(self, small_problem):
        backbone, propagated, labels, labeled, val = small_problem
        classifier = backbone.make_classifier(2)
        history = train_classifier(
            classifier, propagated, labels, labeled, val,
            config=TrainingConfig(epochs=40, lr=0.05, patience=40),
        )
        final_val = evaluate_classifier(classifier, propagated, labels, val)
        assert final_val == pytest.approx(history.best_val_accuracy, abs=1e-9)

    def test_validation_accuracy_reasonable(self, small_problem):
        backbone, propagated, labels, labeled, val = small_problem
        classifier = backbone.make_classifier(3)
        train_classifier(
            classifier, propagated, labels, labeled, val,
            config=TrainingConfig(epochs=60, lr=0.05, patience=60),
        )
        assert evaluate_classifier(classifier, propagated, labels, val) > 0.6

    def test_predict_logits_shape(self, small_problem):
        backbone, propagated, labels, labeled, val = small_problem
        classifier = backbone.make_classifier(1)
        logits = predict_logits(classifier, propagated, val)
        assert logits.shape == (val.shape[0], backbone.num_classes)

    def test_predict_logits_all_nodes_by_default(self, small_problem):
        backbone, propagated, labels, labeled, val = small_problem
        classifier = backbone.make_classifier(1)
        logits = predict_logits(classifier, propagated)
        assert logits.shape[0] == propagated[0].shape[0]


class TestInceptionDistillation:
    def _train(self, small_problem, **config_overrides):
        backbone, propagated, labels, labeled, val = small_problem
        config = DistillationConfig(
            training=TrainingConfig(epochs=30, lr=0.05, patience=30), **config_overrides
        )
        distiller = InceptionDistillation(backbone, config=config, rng=0)
        distill_idx = np.arange(propagated[0].shape[0])
        return distiller.train(propagated, labels, labeled, distill_idx, val), (
            backbone, propagated, labels, val
        )

    def test_produces_one_classifier_per_depth(self, small_problem):
        result, (backbone, *_rest) = self._train(small_problem)
        assert len(result.classifiers) == backbone.depth
        assert result.classifier_at(1).depth == 1

    def test_invalid_depth_lookup_rejected(self, small_problem):
        result, _ = self._train(small_problem)
        with pytest.raises(ConfigurationError):
            result.classifier_at(0)

    def test_histories_cover_all_stages(self, small_problem):
        result, (backbone, *_rest) = self._train(small_problem)
        assert "base" in result.histories
        for depth in range(1, backbone.depth):
            assert f"single:{depth}" in result.histories
            assert f"multi:{depth}" in result.histories

    def test_multi_scale_disabled_skips_stage(self, small_problem):
        result, _ = self._train(small_problem, enable_multi_scale=False)
        assert not any(key.startswith("multi:") for key in result.histories)

    def test_all_classifiers_better_than_chance(self, small_problem):
        result, (backbone, propagated, labels, val) = self._train(small_problem)
        chance = 1.0 / backbone.num_classes
        for classifier in result.classifiers:
            accuracy = evaluate_classifier(classifier, propagated, labels, val)
            assert accuracy > chance + 0.1

    def test_distillation_helps_shallowest_classifier(self, small_problem):
        """Table VIII's headline effect: ID improves f^(1) over plain CE."""
        with_id, (backbone, propagated, labels, val) = self._train(small_problem)
        without_id, _ = self._train(
            small_problem, enable_single_scale=False, enable_multi_scale=False
        )
        acc_with = evaluate_classifier(with_id.classifiers[0], propagated, labels, val)
        acc_without = evaluate_classifier(without_id.classifiers[0], propagated, labels, val)
        assert acc_with >= acc_without - 0.02

    def test_wrong_propagation_length_rejected(self, small_problem):
        backbone, propagated, labels, labeled, val = small_problem
        distiller = InceptionDistillation(
            backbone,
            config=DistillationConfig(training=TrainingConfig(epochs=2)),
            rng=0,
        )
        with pytest.raises(ConfigurationError):
            distiller.train(propagated[:2], labels, labeled, np.arange(10), val)
