"""Tests for the Algorithm-1 inference engine (NAIPredictor)."""

import numpy as np
import pytest

from repro.core import NAIConfig, NAIPredictor
from repro.exceptions import ConfigurationError, NotFittedError
from repro.graph import propagate_features


@pytest.fixture(scope="module")
def deployed(trained_nai, tiny_dataset):
    """A predictor with no early exit (vanilla fixed depth), prepared on the full graph."""
    predictor = trained_nai.build_predictor(policy="none")
    predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
    return predictor


class TestPredictorValidation:
    def test_requires_classifiers(self):
        with pytest.raises(ConfigurationError):
            NAIPredictor([])

    def test_requires_prepare_before_predict(self, trained_nai):
        predictor = trained_nai.build_predictor(policy="none")
        with pytest.raises(NotFittedError):
            predictor.predict(np.array([0]))

    def test_config_depth_checked(self, trained_nai):
        with pytest.raises(ConfigurationError):
            NAIPredictor(trained_nai.classifiers, config=NAIConfig(t_min=1, t_max=99))

    def test_empty_batch_rejected(self, deployed):
        with pytest.raises(ConfigurationError):
            deployed.predict(np.array([], dtype=np.int64))


class TestVanillaInference:
    def test_predictions_cover_all_requested_nodes(self, deployed, tiny_dataset):
        test_idx = tiny_dataset.split.test_idx
        result = deployed.predict(test_idx)
        assert result.num_nodes == test_idx.shape[0]
        assert (result.predictions >= 0).all()
        assert np.array_equal(result.node_ids, test_idx)

    def test_fixed_depth_assigns_everything_to_t_max(self, deployed, tiny_dataset):
        result = deployed.predict(tiny_dataset.split.test_idx)
        assert set(np.unique(result.depths)) == {deployed.config.t_max}
        distribution = result.depth_distribution()
        assert distribution[-1] == result.num_nodes
        assert sum(distribution) == result.num_nodes

    def test_accuracy_beats_chance_substantially(self, deployed, tiny_dataset):
        result = deployed.predict(tiny_dataset.split.test_idx)
        assert result.accuracy(tiny_dataset.labels) > 0.6

    def test_matches_offline_full_graph_propagation(self, trained_nai, tiny_dataset):
        """Online per-batch propagation equals whole-graph propagation for the batch."""
        predictor = trained_nai.build_predictor(policy="none")
        predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
        test_idx = tiny_dataset.split.test_idx[:40]
        online = predictor.predict(test_idx, keep_logits=True)

        depth = trained_nai.backbone.depth
        propagated = propagate_features(tiny_dataset.graph, tiny_dataset.features, depth)
        classifier = trained_nai.classifiers[depth - 1]
        from repro.nn import Tensor

        offline_logits = classifier([Tensor(m[test_idx]) for m in propagated]).data
        online_logits = np.stack([online.logits[int(n)] for n in test_idx])
        assert np.allclose(online_logits, offline_logits, atol=1e-8)

    def test_macs_and_time_positive(self, deployed, tiny_dataset):
        result = deployed.predict(tiny_dataset.split.test_idx)
        assert result.macs.total > 0
        assert result.macs.propagation > 0
        assert result.timings.total > 0
        assert result.macs_per_node() > 0

    def test_batches_do_not_change_predictions(self, trained_nai, tiny_dataset):
        test_idx = tiny_dataset.split.test_idx
        small = trained_nai.build_predictor(
            policy="none", config=trained_nai.inference_config(batch_size=16)
        ).prepare(tiny_dataset.graph, tiny_dataset.features).predict(test_idx)
        large = trained_nai.build_predictor(
            policy="none", config=trained_nai.inference_config(batch_size=1000)
        ).prepare(tiny_dataset.graph, tiny_dataset.features).predict(test_idx)
        assert np.array_equal(small.predictions, large.predictions)


class TestAdaptiveInference:
    def test_zero_threshold_matches_vanilla(self, trained_nai, tiny_dataset, deployed):
        adaptive = trained_nai.build_predictor(
            policy="distance",
            config=trained_nai.inference_config(distance_threshold=0.0),
        ).prepare(tiny_dataset.graph, tiny_dataset.features)
        test_idx = tiny_dataset.split.test_idx
        assert np.array_equal(
            adaptive.predict(test_idx).predictions, deployed.predict(test_idx).predictions
        )

    def test_huge_threshold_exits_at_t_min(self, trained_nai, tiny_dataset):
        predictor = trained_nai.build_predictor(
            policy="distance",
            config=trained_nai.inference_config(distance_threshold=1e9),
        ).prepare(tiny_dataset.graph, tiny_dataset.features)
        result = predictor.predict(tiny_dataset.split.test_idx)
        assert set(np.unique(result.depths)) == {1}

    def test_early_exit_reduces_macs(self, trained_nai, tiny_dataset, deployed):
        threshold = trained_nai.suggest_distance_threshold(0.7)
        adaptive = trained_nai.build_predictor(
            policy="distance",
            config=trained_nai.inference_config(distance_threshold=threshold),
        ).prepare(tiny_dataset.graph, tiny_dataset.features)
        test_idx = tiny_dataset.split.test_idx
        adaptive_result = adaptive.predict(test_idx)
        vanilla_result = deployed.predict(test_idx)
        assert adaptive_result.macs.total < vanilla_result.macs.total
        assert adaptive_result.average_depth() < vanilla_result.average_depth()

    def test_t_min_respected(self, trained_nai, tiny_dataset):
        predictor = trained_nai.build_predictor(
            policy="distance",
            config=trained_nai.inference_config(t_min=2, distance_threshold=1e9),
        ).prepare(tiny_dataset.graph, tiny_dataset.features)
        result = predictor.predict(tiny_dataset.split.test_idx)
        assert result.depths.min() >= 2

    def test_t_max_caps_depth(self, trained_nai, tiny_dataset):
        predictor = trained_nai.build_predictor(
            policy="distance",
            config=trained_nai.inference_config(t_max=2, distance_threshold=0.0),
        ).prepare(tiny_dataset.graph, tiny_dataset.features)
        result = predictor.predict(tiny_dataset.split.test_idx)
        assert result.depths.max() <= 2

    def test_gate_policy_runs_end_to_end(self, trained_nai, tiny_dataset):
        predictor = trained_nai.build_predictor(policy="gate")
        predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
        result = predictor.predict(tiny_dataset.split.test_idx)
        assert result.accuracy(tiny_dataset.labels) > 0.4
        assert result.depths.min() >= 1

    def test_depth_distribution_sums_to_batch(self, trained_nai, tiny_dataset):
        threshold = trained_nai.suggest_distance_threshold(0.5)
        predictor = trained_nai.build_predictor(
            policy="distance",
            config=trained_nai.inference_config(distance_threshold=threshold),
        ).prepare(tiny_dataset.graph, tiny_dataset.features)
        result = predictor.predict(tiny_dataset.split.test_idx)
        assert sum(result.depth_distribution()) == result.num_nodes

    def test_feature_processing_macs_below_total(self, trained_nai, tiny_dataset):
        predictor = trained_nai.build_predictor(
            policy="distance",
            config=trained_nai.inference_config(
                distance_threshold=trained_nai.suggest_distance_threshold(0.5)
            ),
        ).prepare(tiny_dataset.graph, tiny_dataset.features)
        result = predictor.predict(tiny_dataset.split.test_idx)
        assert result.macs.feature_processing < result.macs.total


class TestEngineAndDtypeEquivalence:
    """The fused zero-copy engine must reproduce the reference engine exactly."""

    @pytest.mark.parametrize("policy", ["none", "distance", "gate"])
    def test_fused_matches_reference(self, trained_nai, tiny_dataset, policy):
        kwargs = {}
        if policy == "distance":
            kwargs["distance_threshold"] = trained_nai.suggest_distance_threshold(0.6)
        test_idx = tiny_dataset.split.test_idx
        results = {}
        for engine in ("reference", "fused"):
            predictor = trained_nai.build_predictor(
                policy=policy,
                config=trained_nai.inference_config(engine=engine, **kwargs),
            ).prepare(tiny_dataset.graph, tiny_dataset.features)
            results[engine] = predictor.predict(test_idx)
        ref, fused = results["reference"], results["fused"]
        assert np.array_equal(ref.predictions, fused.predictions)
        assert np.array_equal(ref.depths, fused.depths)
        assert ref.macs.total == pytest.approx(fused.macs.total)
        assert ref.macs.propagation == pytest.approx(fused.macs.propagation)

    @pytest.mark.parametrize("policy", ["none", "distance"])
    def test_float32_matches_float64_predictions(self, trained_nai, tiny_dataset, policy):
        kwargs = {}
        if policy == "distance":
            kwargs["distance_threshold"] = trained_nai.suggest_distance_threshold(0.6)
        test_idx = tiny_dataset.split.test_idx
        results = {}
        for dtype in ("float64", "float32"):
            predictor = trained_nai.build_predictor(
                policy=policy,
                config=trained_nai.inference_config(dtype=dtype, **kwargs),
            ).prepare(tiny_dataset.graph, tiny_dataset.features)
            results[dtype] = predictor.predict(test_idx)
        assert np.array_equal(
            results["float64"].predictions, results["float32"].predictions
        )
        assert np.array_equal(results["float64"].depths, results["float32"].depths)

    def test_float32_logits_close_to_float64(self, trained_nai, tiny_dataset):
        test_idx = tiny_dataset.split.test_idx[:25]
        logits = {}
        for dtype in ("float64", "float32"):
            predictor = trained_nai.build_predictor(
                policy="none", config=trained_nai.inference_config(dtype=dtype)
            ).prepare(tiny_dataset.graph, tiny_dataset.features)
            result = predictor.predict(test_idx, keep_logits=True)
            logits[dtype] = np.stack([result.logits[int(n)] for n in test_idx])
        assert np.allclose(logits["float64"], logits["float32"], atol=1e-3)

    def test_invalid_dtype_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            NAIConfig(dtype="float16")

    def test_invalid_engine_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            NAIConfig(engine="turbo")
