"""Merging semantics of TimingBreakdown / MACBreakdown.

The serving layer's contract is that fanning batches out across N workers
and merging their per-worker breakdowns reproduces the sequential
accounting: MAC counts are deterministic per batch, so the merge must be
*exact*; timings are additive by construction.
"""

import numpy as np
import pytest

from repro.core import ServingConfig
from repro.core.inference import MACBreakdown, TimingBreakdown
from repro.graph.sampling import batch_iterator
from repro.serving import InferenceServer


class TestBreakdownAlgebra:
    def test_mac_merge_is_fieldwise_addition(self):
        left = MACBreakdown(stationary=1.0, propagation=2.0, decision=3.0, classification=4.0)
        right = MACBreakdown(stationary=10.0, propagation=20.0, decision=30.0, classification=40.0)
        merged = left.merged_with(right)
        assert merged.stationary == 11.0
        assert merged.propagation == 22.0
        assert merged.decision == 33.0
        assert merged.classification == 44.0
        assert merged.total == 110.0
        assert merged.feature_processing == 55.0

    def test_timing_merge_is_fieldwise_addition(self):
        left = TimingBreakdown(sampling=0.1, stationary=0.2, propagation=0.3,
                               decision=0.4, classification=0.5)
        right = TimingBreakdown(sampling=1.0, stationary=2.0, propagation=3.0,
                                decision=4.0, classification=5.0)
        merged = left.merged_with(right)
        assert merged.sampling == pytest.approx(1.1)
        assert merged.total == pytest.approx(16.5)
        assert merged.feature_processing == pytest.approx(7.7)

    def test_merge_does_not_mutate_operands(self):
        left = MACBreakdown(propagation=1.0)
        right = MACBreakdown(propagation=2.0)
        left.merged_with(right)
        assert left.propagation == 1.0 and right.propagation == 2.0

    def test_merge_is_associative_and_commutative(self):
        parts = [
            TimingBreakdown(sampling=s, propagation=p)
            for s, p in [(0.5, 1.5), (0.25, 0.75), (1.0, 2.0)]
        ]
        forward = parts[0].merged_with(parts[1]).merged_with(parts[2])
        backward = parts[2].merged_with(parts[1]).merged_with(parts[0])
        assert forward.total == pytest.approx(backward.total)
        assert forward.sampling == pytest.approx(backward.sampling)


class TestMergedEqualsSequential:
    """Merging per-batch / per-worker breakdowns == one sequential breakdown."""

    @pytest.fixture(scope="class")
    def deployed(self, trained_nai, tiny_dataset):
        predictor = trained_nai.build_predictor(
            policy="distance",
            config=trained_nai.inference_config(
                distance_threshold=trained_nai.suggest_distance_threshold(0.5),
                batch_size=25,
            ),
        )
        predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
        return predictor

    def test_per_batch_merge_matches_predict(self, deployed, tiny_dataset):
        """predict() merges its internal batches; doing it by hand must agree."""
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        sequential = deployed.predict(test_idx)
        engine = deployed.make_engine()
        merged = MACBreakdown()
        for batch in batch_iterator(test_idx, deployed.config.batch_size):
            merged = merged.merged_with(engine.run_batch(batch).macs)
        assert merged.stationary == pytest.approx(sequential.macs.stationary)
        assert merged.propagation == pytest.approx(sequential.macs.propagation)
        assert merged.decision == pytest.approx(sequential.macs.decision)
        assert merged.classification == pytest.approx(sequential.macs.classification)

    def test_n_worker_merge_matches_sequential(self, deployed, tiny_dataset):
        """The served pool's merged per-worker MACs equal the sequential run."""
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        sequential = deployed.predict(test_idx)
        config = ServingConfig(
            num_workers=4, max_batch_size=25, max_wait_ms=1.0, cache_capacity=0
        )
        with InferenceServer(deployed, config) as server:
            server.predict_many(batch_iterator(test_idx, 25))
            stats = server.stats()
        assert len(stats.per_worker) >= 1
        merged = MACBreakdown()
        for worker in stats.per_worker.values():
            merged = merged.merged_with(worker.macs)
        assert merged.stationary == pytest.approx(sequential.macs.stationary)
        assert merged.propagation == pytest.approx(sequential.macs.propagation)
        assert merged.decision == pytest.approx(sequential.macs.decision)
        assert merged.classification == pytest.approx(sequential.macs.classification)
        assert merged.total == pytest.approx(sequential.macs.total)
        # Timing merges are additive: worker totals sum to the stats total.
        timing_sum = sum(w.timings.total for w in stats.per_worker.values())
        assert timing_sum == pytest.approx(stats.timings.total)
