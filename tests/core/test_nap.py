"""Tests for the node-adaptive propagation policies (NAP_d and NAP_g)."""

import numpy as np
import pytest

from repro.core import DistanceNAP, GateNAP, GateTrainingConfig, compute_stationary_state
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.graph import CSRGraph, propagate_features
from repro.nn import MLP, Adam, Tensor, cross_entropy


# --------------------------------------------------------------------------- #
# Distance-based NAP
# --------------------------------------------------------------------------- #
class TestDistanceNAP:
    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            DistanceNAP(-1.0)

    def test_zero_threshold_never_exits(self):
        nap = DistanceNAP(0.0)
        propagated = np.random.default_rng(0).normal(size=(5, 3))
        stationary = np.zeros((5, 3))
        assert not nap.should_exit(propagated, stationary, depth=1).any()

    def test_large_threshold_exits_everything(self):
        nap = DistanceNAP(1e9)
        propagated = np.random.default_rng(0).normal(size=(5, 3))
        assert nap.should_exit(propagated, np.zeros((5, 3)), depth=1).all()

    def test_exit_mask_matches_manual_distances(self):
        nap = DistanceNAP(1.0)
        propagated = np.array([[0.5, 0.0], [3.0, 0.0]])
        stationary = np.zeros((2, 2))
        mask = nap.should_exit(propagated, stationary, depth=2)
        assert mask.tolist() == [True, False]

    def test_shape_mismatch_rejected(self):
        nap = DistanceNAP(1.0)
        with pytest.raises(ShapeError):
            nap.should_exit(np.zeros((2, 2)), np.zeros((3, 2)), depth=1)

    def test_decision_macs(self):
        assert DistanceNAP(1.0).decision_macs_per_node(32) == 32.0

    def test_personalised_depths_monotone_in_threshold(self):
        """Larger T_s can only terminate nodes earlier (Eq. 9)."""
        graph = CSRGraph.from_edges([(i, i + 1) for i in range(19)], num_nodes=20)
        features = np.random.default_rng(1).normal(size=(20, 4))
        propagated = propagate_features(graph, features, 4)
        stationary = compute_stationary_state(graph, features).features_for()
        loose = DistanceNAP(2.0).personalised_depths(propagated, stationary, t_max=4)
        tight = DistanceNAP(0.5).personalised_depths(propagated, stationary, t_max=4)
        assert np.all(loose <= tight)

    def test_personalised_depths_respect_bounds(self):
        graph = CSRGraph.from_edges([(i, i + 1) for i in range(9)], num_nodes=10)
        features = np.random.default_rng(2).normal(size=(10, 4))
        propagated = propagate_features(graph, features, 3)
        stationary = compute_stationary_state(graph, features).features_for()
        depths = DistanceNAP(1e9).personalised_depths(
            propagated, stationary, t_min=2, t_max=3
        )
        assert depths.min() >= 2
        assert depths.max() <= 3

    def test_personalised_depths_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            DistanceNAP(1.0).personalised_depths([np.zeros((2, 2))], np.zeros((2, 2)), t_min=3, t_max=2)

    def test_high_degree_nodes_exit_earlier_on_average(self):
        """Eq. 10: hubs smooth faster, so their personalised depth is lower."""
        from repro.datasets import load_dataset

        dataset = load_dataset("flickr-sim", scale=0.3)
        propagated = propagate_features(dataset.graph, dataset.features, 5)
        stationary = compute_stationary_state(
            dataset.graph, dataset.features
        ).features_for()
        threshold = np.median(np.linalg.norm(propagated[2] - stationary, axis=1))
        depths = DistanceNAP(threshold).personalised_depths(propagated, stationary, t_max=5)
        degrees = dataset.graph.degrees()
        hub_depth = depths[degrees >= np.quantile(degrees, 0.9)].mean()
        leaf_depth = depths[degrees <= np.quantile(degrees, 0.1)].mean()
        assert hub_depth < leaf_depth

    def test_distances_shrink_with_depth_on_average(self):
        """Propagation smooths features toward the stationary state."""
        from repro.datasets import load_dataset

        dataset = load_dataset("flickr-sim", scale=0.3)
        propagated = propagate_features(dataset.graph, dataset.features, 5)
        stationary = compute_stationary_state(
            dataset.graph, dataset.features
        ).features_for()
        mean_distances = [
            np.linalg.norm(propagated[depth] - stationary, axis=1).mean()
            for depth in (0, 1, 3, 5)
        ]
        assert mean_distances[-1] < mean_distances[1] < mean_distances[0]


# --------------------------------------------------------------------------- #
# Gate-based NAP
# --------------------------------------------------------------------------- #
def _gate_training_setup(num_nodes=60, num_features=6, depth=3, seed=0):
    rng = np.random.default_rng(seed)
    graph = CSRGraph.from_edges(
        [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
        + [(i, (i + 7) % num_nodes) for i in range(num_nodes)],
        num_nodes=num_nodes,
    )
    features = rng.normal(size=(num_nodes, num_features))
    labels = rng.integers(0, 3, size=num_nodes)
    propagated = propagate_features(graph, features, depth)
    stationary = compute_stationary_state(graph, features).features_for()
    classifiers = []
    logits = []
    for level in range(1, depth + 1):
        mlp = MLP(num_features, 3, rng=rng)
        optimizer = Adam(mlp.parameters(), lr=0.05)
        for _ in range(30):
            optimizer.zero_grad()
            loss = cross_entropy(mlp(Tensor(propagated[level])), labels)
            loss.backward()
            optimizer.step()
        classifiers.append(mlp)
        logits.append(mlp(Tensor(propagated[level])).data)
    return propagated, stationary, logits, labels


class TestGateNAP:
    def test_requires_depth_at_least_two(self):
        with pytest.raises(ConfigurationError):
            GateNAP(4, 1)

    def test_unfitted_gate_rejects_inference(self):
        gate = GateNAP(4, 3)
        with pytest.raises(NotFittedError):
            gate.should_exit(np.zeros((2, 4)), np.zeros((2, 4)), 1)

    def test_number_of_gates(self):
        gate = GateNAP(4, 5)
        assert len(gate.weights) == 4
        assert gate.weights[0].shape == (8, 2)

    def test_fit_records_history_and_enables_inference(self):
        propagated, stationary, logits, labels = _gate_training_setup()
        gate = GateNAP(6, 3, config=GateTrainingConfig(epochs=8, lr=0.05), rng=0)
        history = gate.fit(propagated, stationary, logits, labels)
        assert len(history.loss) == 8
        assert gate.fitted
        mask = gate.should_exit(propagated[1], stationary, 1)
        assert mask.shape == (60,)
        assert mask.dtype == bool

    def test_selection_counts_cover_all_nodes(self):
        propagated, stationary, logits, labels = _gate_training_setup()
        gate = GateNAP(6, 3, config=GateTrainingConfig(epochs=5), rng=0)
        history = gate.fit(propagated, stationary, logits, labels)
        assert sum(history.selection_counts[-1]) == pytest.approx(60, abs=2)

    def test_personalised_depths_in_range(self):
        propagated, stationary, logits, labels = _gate_training_setup()
        gate = GateNAP(6, 3, config=GateTrainingConfig(epochs=5), rng=0)
        gate.fit(propagated, stationary, logits, labels)
        depths = gate.personalised_depths(propagated, stationary)
        assert depths.min() >= 1 and depths.max() <= 3

    def test_validation_selection_keeps_best_weights(self):
        propagated, stationary, logits, labels = _gate_training_setup()
        gate = GateNAP(6, 3, config=GateTrainingConfig(epochs=6), rng=0)
        gate.fit(
            propagated, stationary, logits, labels,
            val_propagated=propagated, val_stationary=stationary,
            val_classifier_logits=logits, val_labels=labels,
        )
        assert gate.fitted

    def test_decision_macs(self):
        assert GateNAP(16, 3).decision_macs_per_node() == 64.0

    def test_wrong_number_of_logits_rejected(self):
        propagated, stationary, logits, labels = _gate_training_setup()
        gate = GateNAP(6, 3, config=GateTrainingConfig(epochs=2), rng=0)
        with pytest.raises(ShapeError):
            gate.fit(propagated, stationary, logits[:1], labels)

    def test_invalid_inference_depth_rejected(self):
        propagated, stationary, logits, labels = _gate_training_setup()
        gate = GateNAP(6, 3, config=GateTrainingConfig(epochs=2), rng=0)
        gate.fit(propagated, stationary, logits, labels)
        with pytest.raises(ConfigurationError):
            gate.should_exit(propagated[1], stationary, depth=3)
