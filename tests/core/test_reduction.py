"""Property tests for the reproducible exact summation (repro.core.reduction).

The sharded stationary state is bit-identical to the single-process one only
because this accumulator is *exact*: partial sums of any partition, merged in
any order, reconstruct the same correctly-rounded float as summing everything
at once.  These tests pin exactly those properties.
"""

import math

import numpy as np
import pytest

from repro.core.reduction import (
    exact_columnwise_sum,
    exponent_range,
    limb_partials,
    merge_exponent_ranges,
    merge_limb_partials,
    plan_sum_grid,
    reconstruct_sums,
    reproducible_weighted_sum,
    weighted_feature_products,
)
from repro.exceptions import ShapeError


def _random_block(rng, *, rows=None, cols=None, wild_scales=False):
    rows = int(rng.integers(1, 300)) if rows is None else rows
    cols = int(rng.integers(1, 12)) if cols is None else cols
    block = rng.normal(size=(rows, cols)) * 10.0 ** rng.integers(-10, 10)
    if wild_scales:
        block *= 10.0 ** rng.integers(-8, 8, size=(rows, 1))
    return block


class TestExactness:
    def test_matches_fsum_oracle(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            block = _random_block(rng, wild_scales=trial % 3 == 0)
            got = exact_columnwise_sum(block)
            oracle = np.array([math.fsum(col) for col in block.T])
            assert np.array_equal(got, oracle)

    def test_order_independent(self):
        rng = np.random.default_rng(1)
        block = _random_block(rng, rows=257, cols=7, wild_scales=True)
        reference = exact_columnwise_sum(block)
        for _ in range(5):
            shuffled = block[rng.permutation(block.shape[0])]
            assert np.array_equal(exact_columnwise_sum(shuffled), reference)

    def test_partition_independent(self):
        """Per-part partials merged on a shared grid equal the one-shot sum."""
        rng = np.random.default_rng(2)
        for parts in (1, 2, 3, 5):
            block = _random_block(rng, rows=301, cols=5, wild_scales=True)
            owner = rng.integers(0, parts, size=block.shape[0])
            pieces = [block[owner == p] for p in range(parts)]
            grid = plan_sum_grid(
                merge_exponent_ranges([exponent_range(p) for p in pieces])
            )
            partials = [
                limb_partials(p, grid) for p in pieces if p.shape[0] > 0
            ]
            merged = reconstruct_sums(merge_limb_partials(partials), grid)
            assert np.array_equal(merged, exact_columnwise_sum(block))

    def test_extreme_magnitudes_cancelled_exactly(self):
        # 1e300 and 5e-324 (a denormal) in one column: naive summation loses
        # the small term entirely; the exact path keeps every bit.
        block = np.array([[1e300], [5e-324], [-1e300], [3e-310], [1.0]])
        assert np.array_equal(
            exact_columnwise_sum(block), np.array([math.fsum(block[:, 0])])
        )

    def test_all_zero_block(self):
        assert np.array_equal(exact_columnwise_sum(np.zeros((4, 3))), np.zeros(3))

    def test_float32_output_dtype(self):
        rng = np.random.default_rng(3)
        block = _random_block(rng, rows=64, cols=4)
        out = exact_columnwise_sum(block, np.float32)
        assert out.dtype == np.float32


class TestGridProtocol:
    def test_exponent_range_of_zero_block_is_none(self):
        assert exponent_range(np.zeros((3, 2))) is None
        assert plan_sum_grid(None) is None
        assert merge_exponent_ranges([None, None]) is None

    def test_merge_exponent_ranges_matches_global(self):
        rng = np.random.default_rng(4)
        block = _random_block(rng, rows=200, cols=3, wild_scales=True)
        owner = rng.integers(0, 3, size=block.shape[0])
        merged = merge_exponent_ranges(
            [exponent_range(block[owner == p]) for p in range(3)]
        )
        assert merged == exponent_range(block)

    def test_partial_on_uncovering_grid_rejected(self):
        # A grid planned from large values cannot represent a tiny term.
        grid = plan_sum_grid((10, 5))
        with pytest.raises(ShapeError):
            limb_partials(np.array([[1e-30]]), grid)

    def test_non_finite_inputs_rejected(self):
        with pytest.raises(ShapeError):
            exponent_range(np.array([[np.inf]]))
        with pytest.raises(ShapeError):
            exponent_range(np.array([[np.nan]]))


class TestWeightedSum:
    def test_products_are_elementwise(self):
        w = np.array([2.0, 3.0])
        x = np.array([[1.0, 2.0], [4.0, 5.0]])
        assert np.array_equal(
            weighted_feature_products(w, x), np.array([[2.0, 4.0], [12.0, 15.0]])
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            weighted_feature_products(np.ones(3), np.ones((2, 4)))
        with pytest.raises(ShapeError):
            limb_partials(np.ones(3), plan_sum_grid((1, 1)))

    def test_weighted_sum_is_permutation_invariant(self):
        rng = np.random.default_rng(5)
        w = rng.normal(size=100).astype(np.float32) ** 2
        x = rng.normal(size=(100, 6)).astype(np.float32)
        reference = reproducible_weighted_sum(w, x, np.float32)
        perm = rng.permutation(100)
        assert np.array_equal(
            reproducible_weighted_sum(w[perm], x[perm], np.float32), reference
        )
