"""Tests for the stationary feature state (Eqs. 6-7)."""

import numpy as np
import pytest

from repro.core import compute_stationary_state
from repro.exceptions import ShapeError
from repro.graph import CSRGraph, normalized_adjacency

GRAPH = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], num_nodes=4)
FEATURES = np.random.default_rng(0).normal(size=(4, 6))


class TestStationaryState:
    def test_matches_closed_form(self):
        state = compute_stationary_state(GRAPH, FEATURES, gamma=0.5)
        degrees = GRAPH.degrees() + 1.0
        normalizer = 2 * GRAPH.num_edges + GRAPH.num_nodes
        expected = np.outer(np.sqrt(degrees), np.sqrt(degrees)) / normalizer @ FEATURES
        assert np.allclose(state.features_for(), expected)

    def test_matches_repeated_propagation_limit(self):
        """Â^t X converges to the closed-form X^(∞) as t grows (Eq. 6)."""
        state = compute_stationary_state(GRAPH, FEATURES, gamma=0.5)
        a_hat = normalized_adjacency(GRAPH, gamma=0.5).toarray()
        power = np.linalg.matrix_power(a_hat, 200)
        assert np.allclose(power @ FEATURES, state.features_for(), atol=1e-6)

    def test_infinite_adjacency_rows_depend_only_on_degrees(self):
        state = compute_stationary_state(GRAPH, FEATURES, gamma=0.0)
        infinite = state.dense_infinite_adjacency()
        # gamma=0: every row is identical (weights depend only on the target degree).
        assert np.allclose(infinite[0], infinite[1])

    def test_infinite_adjacency_rows_sum_to_one_for_row_stochastic(self):
        # gamma=0 corresponds to the row-stochastic operator D̃^-1 Ã, whose
        # limit keeps rows summing to one: Σ_j (d_j+1) / (2m+n) = 1.
        state = compute_stationary_state(GRAPH, FEATURES, gamma=0.0)
        rows = state.dense_infinite_adjacency().sum(axis=1)
        assert np.allclose(rows, 1.0)

    def test_subset_rows_match_full(self):
        state = compute_stationary_state(GRAPH, FEATURES)
        subset = state.features_for(np.array([2, 0]))
        full = state.features_for()
        assert np.allclose(subset, full[[2, 0]])

    def test_out_of_range_node_rejected(self):
        state = compute_stationary_state(GRAPH, FEATURES)
        with pytest.raises(ShapeError):
            state.features_for(np.array([10]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            compute_stationary_state(GRAPH, FEATURES[:2])

    def test_high_degree_nodes_have_larger_stationary_norm(self):
        """Eq. 7: stationary magnitude scales with (d_i + 1)^gamma."""
        star = CSRGraph.from_edges([(0, i) for i in range(1, 6)], num_nodes=6)
        features = np.ones((6, 3))
        state = compute_stationary_state(star, features, gamma=0.5)
        norms = np.linalg.norm(state.features_for(), axis=1)
        assert norms[0] > norms[1]

    def test_gamma_one_uses_source_degree_only(self):
        state = compute_stationary_state(GRAPH, FEATURES, gamma=1.0)
        infinite = state.dense_infinite_adjacency()
        degrees = GRAPH.degrees() + 1.0
        expected = np.outer(degrees, np.ones(4)) / (2 * GRAPH.num_edges + GRAPH.num_nodes)
        assert np.allclose(infinite, expected)

    def test_num_properties(self):
        state = compute_stationary_state(GRAPH, FEATURES)
        assert state.num_nodes == 4
        assert state.num_features == 6
