"""Tests for the high-level NAI pipeline (fit / predictors / evaluate)."""

import numpy as np
import pytest

from repro import NAI, SGC
from repro.core import DistillationConfig, TrainingConfig
from repro.exceptions import ConfigurationError, NotFittedError


class TestFit:
    def test_report_populated(self, trained_nai, tiny_backbone):
        report = trained_nai.report
        assert report is not None
        assert set(report.classifier_val_accuracy) == set(range(1, tiny_backbone.depth + 1))
        assert report.gate_history is not None
        assert report.distillation is not None

    def test_classifier_accuracy_generally_improves_with_depth(self, trained_nai):
        accuracies = trained_nai.report.classifier_val_accuracy
        assert accuracies[max(accuracies)] >= accuracies[1] - 0.02

    def test_unfitted_pipeline_rejects_predictor(self, tiny_dataset):
        backbone = SGC(tiny_dataset.num_features, tiny_dataset.num_classes, depth=2, rng=0)
        pipeline = NAI(backbone, rng=0)
        with pytest.raises(NotFittedError):
            pipeline.build_predictor()

    def test_fit_without_gates(self, tiny_dataset):
        backbone = SGC(tiny_dataset.num_features, tiny_dataset.num_classes, depth=2, rng=0)
        pipeline = NAI(
            backbone,
            distillation_config=DistillationConfig(training=TrainingConfig(epochs=5)),
            train_gates=False,
            rng=0,
        ).fit(tiny_dataset)
        assert pipeline.gate_nap is None
        with pytest.raises(NotFittedError):
            pipeline.build_predictor(policy="gate")


class TestConfigHelpers:
    def test_inference_config_defaults_to_full_depth(self, trained_nai, tiny_backbone):
        config = trained_nai.inference_config()
        assert config.t_max == tiny_backbone.depth

    def test_inference_config_validates_depth(self, trained_nai, tiny_backbone):
        with pytest.raises(ConfigurationError):
            trained_nai.inference_config(t_max=tiny_backbone.depth + 1)

    def test_threshold_quantiles_are_monotone(self, trained_nai):
        low = trained_nai.suggest_distance_threshold(0.1)
        high = trained_nai.suggest_distance_threshold(0.9)
        assert high >= low >= 0.0

    def test_threshold_quantile_out_of_range(self, trained_nai):
        with pytest.raises(ConfigurationError):
            trained_nai.suggest_distance_threshold(1.5)


class TestPredictAndEvaluate:
    def test_unknown_policy_rejected(self, trained_nai):
        with pytest.raises(ConfigurationError):
            trained_nai.build_predictor(policy="banana")

    def test_evaluate_runs_on_test_nodes(self, trained_nai, tiny_dataset):
        result = trained_nai.evaluate(tiny_dataset, policy="none")
        assert result.num_nodes == tiny_dataset.split.num_test
        assert result.accuracy(tiny_dataset.labels) > 0.6

    def test_evaluate_subset_of_nodes(self, trained_nai, tiny_dataset):
        subset = tiny_dataset.split.test_idx[:10]
        result = trained_nai.evaluate(tiny_dataset, policy="none", node_ids=subset)
        assert result.num_nodes == 10

    def test_distance_policy_trades_accuracy_for_speed(self, trained_nai, tiny_dataset):
        vanilla = trained_nai.evaluate(tiny_dataset, policy="none")
        speedy = trained_nai.evaluate(
            tiny_dataset,
            policy="distance",
            config=trained_nai.inference_config(
                distance_threshold=trained_nai.suggest_distance_threshold(0.8)
            ),
        )
        assert speedy.macs.total < vanilla.macs.total

    def test_gate_policy_evaluates(self, trained_nai, tiny_dataset):
        result = trained_nai.evaluate(tiny_dataset, policy="gate")
        assert result.num_nodes == tiny_dataset.split.num_test

    def test_keep_logits_flag(self, trained_nai, tiny_dataset):
        subset = tiny_dataset.split.test_idx[:5]
        result = trained_nai.evaluate(
            tiny_dataset, policy="none", node_ids=subset, keep_logits=True
        )
        assert set(result.logits) == set(int(n) for n in subset)

    def test_deterministic_predictions_across_calls(self, trained_nai, tiny_dataset):
        a = trained_nai.evaluate(tiny_dataset, policy="none")
        b = trained_nai.evaluate(tiny_dataset, policy="none")
        assert np.array_equal(a.predictions, b.predictions)
