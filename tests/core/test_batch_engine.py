"""Tests for the worker-ownable BatchEngine extracted from NAIPredictor."""

import numpy as np
import pytest

from repro.core import NAIConfig
from repro.exceptions import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def deployed(trained_nai, tiny_dataset):
    predictor = trained_nai.build_predictor(
        policy="distance",
        config=trained_nai.inference_config(
            distance_threshold=trained_nai.suggest_distance_threshold(0.5),
            batch_size=30,
        ),
    )
    predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
    return predictor


class TestEngineLifecycle:
    def test_make_engine_requires_prepare(self, trained_nai):
        predictor = trained_nai.build_predictor(policy="none")
        assert not predictor.prepared
        with pytest.raises(NotFittedError):
            predictor.make_engine()

    def test_engines_share_read_only_state(self, deployed):
        first, second = deployed.make_engine(), deployed.make_engine()
        assert first.features is second.features
        assert first.a_hat is second.a_hat
        assert first.stationary is second.stationary
        assert first is not second

    def test_run_batch_rejects_empty_batch(self, deployed):
        with pytest.raises(ConfigurationError):
            deployed.make_engine().run_batch(np.array([], dtype=np.int64))

    def test_batches_run_counter(self, deployed, tiny_dataset):
        engine = deployed.make_engine()
        batch = np.asarray(tiny_dataset.split.test_idx[:10])
        engine.run_batch(batch)
        engine.run_batch(batch)
        assert engine.batches_run == 2


class TestBufferReuse:
    def test_buffers_grow_only_and_results_stay_identical(self, deployed, tiny_dataset):
        """Reusing the double buffers across batches must not leak state."""
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        engine = deployed.make_engine()
        small, large = test_idx[:5], test_idx[:40]
        fresh = [deployed.make_engine().run_batch(b) for b in (small, large, small)]
        reused = [engine.run_batch(b) for b in (small, large, small)]
        for lhs, rhs in zip(fresh, reused):
            np.testing.assert_array_equal(lhs.predictions, rhs.predictions)
            np.testing.assert_array_equal(lhs.depths, rhs.depths)
            assert lhs.macs.total == pytest.approx(rhs.macs.total)
        buffer = engine._buffer_a
        engine.run_batch(small)
        assert engine._buffer_a is buffer  # no reallocation for smaller batches

    def test_engine_matches_predict(self, deployed, tiny_dataset):
        """One engine run over each predict-batch equals predict() itself."""
        test_idx = np.asarray(tiny_dataset.split.test_idx)
        sequential = deployed.predict(test_idx)
        engine = deployed.make_engine()
        predictions = []
        from repro.graph.sampling import batch_iterator

        for batch in batch_iterator(test_idx, deployed.config.batch_size):
            predictions.append(engine.run_batch(batch).predictions)
        np.testing.assert_array_equal(
            np.concatenate(predictions), sequential.predictions
        )


class TestRunDispatchThreshold:
    def test_threshold_is_validated(self):
        with pytest.raises(ConfigurationError):
            NAIConfig(t_min=1, t_max=2, run_dispatch_threshold=-1)

    def test_threshold_sweep_preserves_outputs(self, trained_nai, tiny_dataset):
        """Any crossover setting is a pure perf knob — outputs never change."""
        results = []
        for threshold in (0, 8, 1_000_000):
            predictor = trained_nai.build_predictor(
                policy="distance",
                config=trained_nai.inference_config(
                    distance_threshold=trained_nai.suggest_distance_threshold(0.5),
                    run_dispatch_threshold=threshold,
                ),
            )
            predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
            results.append(predictor.predict(np.asarray(tiny_dataset.split.test_idx)))
        baseline = results[0]
        for other in results[1:]:
            np.testing.assert_array_equal(other.predictions, baseline.predictions)
            np.testing.assert_array_equal(other.depths, baseline.depths)
            assert other.macs.total == pytest.approx(baseline.macs.total)
