"""Tests for the autograd engine, including numerical gradient checks."""

import numpy as np
import pytest

from repro.exceptions import AutogradError
from repro.nn import Tensor, concatenate, stack


def numerical_gradient(fn, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued function of an array."""
    grad = np.zeros_like(value)
    flat = value.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = fn(value)
        flat[index] = original - eps
        lower = fn(value)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, atol=1e-5):
    """Compare autograd gradient with finite differences for one input tensor."""
    rng = np.random.default_rng(seed)
    value = rng.normal(size=shape)
    tensor = Tensor(value.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    numeric = numerical_gradient(lambda arr: float(build_loss(Tensor(arr)).data), value.copy())
    assert np.allclose(tensor.grad, numeric, atol=atol), (
        f"autograd {tensor.grad} vs numeric {numeric}"
    )


class TestBasicOps:
    def test_add_broadcasting(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 2.0)

    def test_mul_gradients(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 5.0]), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [4.0, 5.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_scalar_operand_promoted(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (2.0 * a + 1.0).sum().backward()
        assert np.allclose(a.grad, 2.0)

    def test_sub_and_neg(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = Tensor(np.array([1.0]), requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, -1.0)

    def test_division(self):
        check_gradient(lambda t: (t / 2.5).sum(), (3, 2))

    def test_rtruediv(self):
        a = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        (1.0 / a).sum().backward()
        assert np.allclose(a.grad, [-0.25, -1.0 / 16.0])

    def test_pow(self):
        check_gradient(lambda t: (t ** 3).sum(), (4,))

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(AutogradError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul(self):
        check_gradient(lambda t: (t @ Tensor(np.ones((3, 2)))).sum(), (2, 3))

    def test_matmul_requires_2d(self):
        with pytest.raises(AutogradError):
            Tensor(np.ones(3)) @ Tensor(np.ones(3))

    def test_backward_requires_scalar(self):
        tensor = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(AutogradError):
            tensor.backward()

    def test_grad_accumulates_across_uses(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (a * a).sum().backward()
        assert np.allclose(a.grad, [2.0, 4.0])

    def test_detach_cuts_graph(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        detached = a.detach()
        assert not detached.requires_grad

    def test_zero_grad(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * 2).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda t: t.mean(), (5, 2))

    def test_mean_axis(self):
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), (4, 3))

    def test_max_gradient_flows_to_argmax(self):
        value = np.array([[1.0, 5.0, 2.0]])
        tensor = Tensor(value, requires_grad=True)
        tensor.max(axis=1).sum().backward()
        assert np.allclose(tensor.grad, [[0.0, 1.0, 0.0]])

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), (2, 3))

    def test_transpose(self):
        check_gradient(lambda t: (t.T @ Tensor(np.ones((2, 1)))).sum(), (2, 3))

    def test_getitem(self):
        check_gradient(lambda t: (t[np.array([0, 2])] ** 2).sum(), (4, 3))

    def test_getitem_repeated_rows_accumulate(self):
        tensor = Tensor(np.ones((3, 2)), requires_grad=True)
        tensor[np.array([0, 0, 1])].sum().backward()
        assert np.allclose(tensor.grad, [[2.0, 2.0], [1.0, 1.0], [0.0, 0.0]])


class TestNonLinearities:
    def test_exp(self):
        check_gradient(lambda t: t.exp().sum(), (3,))

    def test_log(self):
        check_gradient(lambda t: (t.exp() + 1.0).log().sum(), (3,))

    def test_relu(self):
        value = np.array([[-1.0, 2.0], [3.0, -4.0]])
        tensor = Tensor(value, requires_grad=True)
        tensor.relu().sum().backward()
        assert np.allclose(tensor.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum(), (4,))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), (4,))


class TestConcatenateAndStack:
    def test_concatenate_gradients_split_correctly(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        combined = concatenate([a, b], axis=1)
        (combined * Tensor(np.arange(10).reshape(2, 5))).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)
        assert np.allclose(a.grad, [[0, 1], [5, 6]])

    def test_concatenate_empty_rejected(self):
        with pytest.raises(AutogradError):
            concatenate([])

    def test_stack_gradients(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stacked = stack([a, b], axis=0)
        (stacked * Tensor(np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]))).sum().backward()
        assert np.allclose(a.grad, [1.0, 2.0, 3.0])
        assert np.allclose(b.grad, [4.0, 5.0, 6.0])

    def test_chained_graph_gradcheck(self):
        weight = np.random.default_rng(1).normal(size=(3, 2))

        def loss_fn(t):
            hidden = (t @ Tensor(weight)).relu()
            return (hidden.sigmoid() * hidden).mean()

        check_gradient(loss_fn, (4, 3))
