"""Tests for INT8 post-training quantization."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import (
    MLP,
    Linear,
    QuantizationParams,
    QuantizedLinear,
    QuantizedMLP,
    Tensor,
    quantize_classifier,
)

RNG = np.random.default_rng(5)


class TestQuantizationParams:
    def test_roundtrip_error_bounded_by_scale(self):
        values = RNG.normal(size=(64, 32))
        params = QuantizationParams.from_array(values)
        recovered = params.dequantize(params.quantize(values))
        assert np.max(np.abs(recovered - values)) <= params.scale

    def test_zero_array_handled(self):
        params = QuantizationParams.from_array(np.zeros((4, 4)))
        assert params.scale == 1.0
        assert np.allclose(params.dequantize(params.quantize(np.zeros((4, 4)))), 0.0)

    def test_quantized_values_within_int8_range(self):
        values = RNG.normal(size=100) * 10
        quantized = QuantizationParams.from_array(values).quantize(values)
        assert quantized.min() >= -128 and quantized.max() <= 127

    def test_invalid_bit_width_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantizationParams.from_array(np.ones(3), num_bits=1)

    def test_higher_bits_reduce_error(self):
        values = RNG.normal(size=512)
        err8 = np.abs(
            QuantizationParams.from_array(values, num_bits=8).dequantize(
                QuantizationParams.from_array(values, num_bits=8).quantize(values, num_bits=8)
            )
            - values
        ).mean()
        err16 = np.abs(
            QuantizationParams.from_array(values, num_bits=16).dequantize(
                QuantizationParams.from_array(values, num_bits=16).quantize(values, num_bits=16)
            )
            - values
        ).mean()
        assert err16 < err8


class TestQuantizedModules:
    def test_quantized_linear_close_to_float(self):
        layer = Linear(16, 8, rng=RNG)
        quantized = QuantizedLinear(layer)
        inputs = RNG.normal(size=(10, 16))
        float_out = layer(Tensor(inputs)).data
        quant_out = quantized(Tensor(inputs)).data
        relative = np.abs(float_out - quant_out).mean() / (np.abs(float_out).mean() + 1e-9)
        assert relative < 0.1

    def test_quantized_mlp_preserves_predictions_mostly(self):
        mlp = MLP(12, 4, [16], rng=RNG)
        quantized = QuantizedMLP(mlp)
        inputs = RNG.normal(size=(200, 12))
        float_pred = mlp(Tensor(inputs)).data.argmax(axis=1)
        quant_pred = quantized(Tensor(inputs)).data.argmax(axis=1)
        assert (float_pred == quant_pred).mean() > 0.9

    def test_quantized_mlp_keeps_metadata(self):
        mlp = MLP(12, 4, [16], rng=RNG)
        quantized = QuantizedMLP(mlp)
        assert quantized.in_features == 12
        assert quantized.out_features == 4
        assert quantized.hidden_dims == (16,)

    def test_quantize_classifier_dispatch(self):
        assert isinstance(quantize_classifier(MLP(4, 2, rng=RNG)), QuantizedMLP)
        assert isinstance(quantize_classifier(Linear(4, 2, rng=RNG)), QuantizedLinear)

    def test_quantize_classifier_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            quantize_classifier(object())
