"""Property-based tests (hypothesis) for the autograd engine and softmax."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, cross_entropy, log_softmax, softmax

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


def small_matrices(max_rows=6, max_cols=5):
    return st.tuples(
        st.integers(1, max_rows), st.integers(1, max_cols)
    ).flatmap(lambda shape: arrays(np.float64, shape, elements=finite_floats))


@settings(max_examples=40, deadline=None)
@given(small_matrices())
def test_softmax_rows_are_distributions(matrix):
    probs = softmax(Tensor(matrix), axis=1).data
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=1), 1.0)


@settings(max_examples=40, deadline=None)
@given(small_matrices(), st.floats(min_value=-5.0, max_value=5.0, allow_nan=False))
def test_softmax_invariant_to_constant_shift(matrix, shift):
    base = softmax(Tensor(matrix), axis=1).data
    shifted = softmax(Tensor(matrix + shift), axis=1).data
    assert np.allclose(base, shifted, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(small_matrices())
def test_log_softmax_never_positive(matrix):
    values = log_softmax(Tensor(matrix), axis=1).data
    assert np.all(values <= 1e-12)


@settings(max_examples=40, deadline=None)
@given(small_matrices())
def test_cross_entropy_non_negative_and_finite(matrix):
    labels = np.zeros(matrix.shape[0], dtype=np.int64)
    loss = cross_entropy(Tensor(matrix), labels)
    assert float(loss.data) >= 0.0
    assert np.isfinite(float(loss.data))


@settings(max_examples=40, deadline=None)
@given(small_matrices())
def test_addition_gradient_is_ones(matrix):
    tensor = Tensor(matrix, requires_grad=True)
    (tensor + 1.0).sum().backward()
    assert np.allclose(tensor.grad, np.ones_like(matrix))


@settings(max_examples=40, deadline=None)
@given(small_matrices())
def test_sum_then_mean_consistency(matrix):
    tensor = Tensor(matrix, requires_grad=True)
    tensor.mean().backward()
    assert np.allclose(tensor.grad, np.full_like(matrix, 1.0 / matrix.size))


@settings(max_examples=30, deadline=None)
@given(small_matrices(max_rows=4, max_cols=4))
def test_matmul_identity_preserves_values(matrix):
    identity = np.eye(matrix.shape[1])
    product = (Tensor(matrix) @ Tensor(identity)).data
    assert np.allclose(product, matrix)
