"""Tests for functional ops: softmax, losses, dropout, Gumbel-softmax."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import (
    Tensor,
    accuracy_from_logits,
    cross_entropy,
    dropout,
    gumbel_softmax,
    log_softmax,
    one_hot,
    soft_cross_entropy,
    soft_target_cross_entropy,
    softmax,
)

RNG = np.random.default_rng(0)


class TestOneHot:
    def test_encodes_correct_positions(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        assert np.allclose(encoded, np.eye(3)[[0, 2, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([3]), 3)

    def test_rejects_2d_labels(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = Tensor(RNG.normal(size=(5, 4)))
        probs = softmax(logits).data
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_temperature_flattens_distribution(self):
        logits = Tensor(np.array([[2.0, 0.0, -2.0]]))
        sharp = softmax(logits, temperature=0.5).data
        flat = softmax(logits, temperature=5.0).data
        assert sharp.max() > flat.max()

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            softmax(Tensor(np.ones((1, 2))), temperature=0.0)

    def test_log_softmax_is_log_of_softmax(self):
        logits = Tensor(RNG.normal(size=(3, 6)))
        assert np.allclose(log_softmax(logits).data, np.log(softmax(logits).data))

    def test_numerically_stable_for_large_logits(self):
        logits = Tensor(np.array([[1000.0, 0.0]]))
        probs = softmax(logits).data
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert float(loss.data) < 1e-3

    def test_uniform_prediction_matches_log_classes(self):
        logits = Tensor(np.zeros((4, 5)))
        loss = cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert float(loss.data) == pytest.approx(np.log(5), rel=1e-6)

    def test_gradient_direction_reduces_loss(self):
        logits = Tensor(np.zeros((2, 3)), requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 2]))
        loss.backward()
        updated = Tensor(logits.data - 1.0 * logits.grad)
        assert float(cross_entropy(updated, np.array([0, 2])).data) < float(loss.data)

    def test_soft_cross_entropy_matches_hard_for_one_hot(self):
        logits = Tensor(RNG.normal(size=(3, 4)))
        labels = np.array([1, 3, 0])
        hard = cross_entropy(logits, labels)
        soft = soft_cross_entropy(logits, one_hot(labels, 4))
        assert float(hard.data) == pytest.approx(float(soft.data))

    def test_soft_cross_entropy_shape_mismatch(self):
        with pytest.raises(ShapeError):
            soft_cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((3, 3)))

    def test_soft_target_cross_entropy_on_probabilities(self):
        probs = Tensor(np.array([[0.9, 0.1], [0.2, 0.8]]))
        targets = np.array([[1.0, 0.0], [0.0, 1.0]])
        loss = soft_target_cross_entropy(probs, targets)
        expected = -(np.log(0.9) + np.log(0.8)) / 2
        assert float(loss.data) == pytest.approx(expected, rel=1e-4)

    def test_soft_target_shape_mismatch(self):
        with pytest.raises(ShapeError):
            soft_target_cross_entropy(Tensor(np.ones((2, 2))), np.ones((2, 3)))


class TestDropout:
    def test_eval_mode_is_identity(self):
        inputs = Tensor(RNG.normal(size=(10, 5)))
        assert np.allclose(dropout(inputs, 0.5, training=False).data, inputs.data)

    def test_training_zeroes_roughly_rate_fraction(self):
        inputs = Tensor(np.ones((2000, 1)))
        dropped = dropout(inputs, 0.3, training=True, rng=np.random.default_rng(0)).data
        zero_fraction = (dropped == 0).mean()
        assert 0.25 < zero_fraction < 0.35

    def test_scaling_preserves_expectation(self):
        inputs = Tensor(np.ones((5000, 1)))
        dropped = dropout(inputs, 0.4, training=True, rng=np.random.default_rng(1)).data
        assert dropped.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), 1.0, training=True)


class TestGumbelSoftmax:
    def test_soft_sample_rows_sum_to_one(self):
        logits = Tensor(RNG.normal(size=(6, 3)))
        sample = gumbel_softmax(logits, rng=np.random.default_rng(0)).data
        assert np.allclose(sample.sum(axis=1), 1.0)

    def test_hard_sample_is_one_hot(self):
        logits = Tensor(RNG.normal(size=(6, 3)))
        sample = gumbel_softmax(logits, hard=True, rng=np.random.default_rng(0)).data
        assert np.allclose(sample.sum(axis=1), 1.0)
        assert set(np.unique(sample)).issubset({0.0, 1.0})

    def test_strong_logits_dominate_sampling(self):
        logits = Tensor(np.tile([[10.0, -10.0]], (200, 1)))
        sample = gumbel_softmax(logits, hard=True, rng=np.random.default_rng(2)).data
        assert sample[:, 0].mean() > 0.95

    def test_gradient_flows_through_hard_sample(self):
        logits = Tensor(np.zeros((4, 2)), requires_grad=True)
        gumbel_softmax(logits, hard=True, rng=np.random.default_rng(3)).sum().backward()
        assert logits.grad is not None

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            gumbel_softmax(Tensor(np.zeros((1, 2))), temperature=0.0)


class TestAccuracy:
    def test_perfect_and_zero(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy_from_logits(logits, np.array([0, 1])) == 1.0
        assert accuracy_from_logits(logits, np.array([1, 0])) == 0.0

    def test_accepts_tensor(self):
        assert accuracy_from_logits(Tensor(np.eye(3)), np.arange(3)) == 1.0

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ShapeError):
            accuracy_from_logits(np.eye(3), np.arange(2))
