"""Tests for Module / Linear / MLP and the optimizers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import MLP, Adam, Dropout, Linear, SGD, Tensor, cross_entropy

RNG = np.random.default_rng(3)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=RNG)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias_option(self):
        layer = Linear(4, 3, bias=False, rng=RNG)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        assert np.allclose(out.data, 0.0)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            Linear(0, 3)

    def test_parameters_discovered(self):
        layer = Linear(4, 3, rng=RNG)
        params = list(layer.parameters())
        assert len(params) == 2
        assert layer.num_parameters() == 4 * 3 + 3


class TestMLP:
    def test_linear_when_no_hidden(self):
        mlp = MLP(4, 2, rng=RNG)
        assert len(mlp.layers) == 1

    def test_hidden_layers_created(self):
        mlp = MLP(4, 2, [8, 8], rng=RNG)
        assert len(mlp.layers) == 3
        assert mlp.layers[0].out_features == 8

    def test_forward_shape(self):
        mlp = MLP(6, 3, [5], rng=RNG)
        out = mlp(Tensor(np.ones((7, 6))))
        assert out.shape == (7, 3)

    def test_state_dict_roundtrip(self):
        mlp = MLP(3, 2, [4], rng=RNG)
        state = mlp.state_dict()
        other = MLP(3, 2, [4], rng=np.random.default_rng(99))
        other.load_state_dict(state)
        x = Tensor(np.ones((2, 3)))
        assert np.allclose(mlp(x).data, other(x).data)

    def test_state_dict_mismatch_rejected(self):
        mlp = MLP(3, 2, [4], rng=RNG)
        with pytest.raises(ConfigurationError):
            mlp.load_state_dict({"bogus": np.zeros(1)})

    def test_train_eval_mode_propagates(self):
        mlp = MLP(3, 2, [4], dropout=0.5, rng=RNG)
        mlp.eval()
        assert not mlp.dropout.training
        mlp.train()
        assert mlp.dropout.training

    def test_dropout_only_active_in_training(self):
        mlp = MLP(10, 2, [32], dropout=0.9, rng=np.random.default_rng(0))
        x = Tensor(np.ones((4, 10)))
        mlp.eval()
        a = mlp(x).data
        b = mlp(x).data
        assert np.allclose(a, b)

    def test_zero_grad_clears_gradients(self):
        mlp = MLP(3, 2, rng=RNG)
        loss = cross_entropy(mlp(Tensor(np.ones((4, 3)))), np.array([0, 1, 0, 1]))
        loss.backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_invalid_dropout_rejected(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.5)


def _train_xor(optimizer_factory, epochs=400):
    """Train a small MLP on XOR and return the final accuracy."""
    rng = np.random.default_rng(0)
    inputs = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 16)
    labels = np.array([0, 1, 1, 0] * 16)
    mlp = MLP(2, 2, [16], rng=rng)
    optimizer = optimizer_factory(mlp.parameters())
    for _ in range(epochs):
        optimizer.zero_grad()
        loss = cross_entropy(mlp(Tensor(inputs)), labels)
        loss.backward()
        optimizer.step()
    predictions = mlp(Tensor(inputs)).data.argmax(axis=1)
    return (predictions == labels).mean()


class TestOptimizers:
    def test_adam_solves_xor(self):
        accuracy = _train_xor(lambda params: Adam(params, lr=0.02))
        assert accuracy == 1.0

    def test_sgd_with_momentum_solves_xor(self):
        accuracy = _train_xor(lambda params: SGD(params, lr=0.3, momentum=0.9), epochs=600)
        assert accuracy == 1.0

    def test_weight_decay_shrinks_weights(self):
        layer = Linear(4, 4, rng=RNG)
        optimizer = Adam(layer.parameters(), lr=0.05, weight_decay=1.0)
        initial_norm = np.linalg.norm(layer.weight.data)
        for _ in range(50):
            optimizer.zero_grad()
            (layer(Tensor(np.zeros((1, 4)))) * 0.0).sum().backward()
            optimizer.step()
        assert np.linalg.norm(layer.weight.data) < initial_norm

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ConfigurationError):
            Adam([])

    def test_invalid_lr_rejected(self):
        layer = Linear(2, 2, rng=RNG)
        with pytest.raises(ConfigurationError):
            SGD(layer.parameters(), lr=-1.0)

    def test_step_skips_parameters_without_grad(self):
        layer = Linear(2, 2, rng=RNG)
        optimizer = Adam(layer.parameters(), lr=0.1)
        before = layer.weight.data.copy()
        optimizer.step()
        assert np.allclose(layer.weight.data, before)
