"""Unit tests for the metrics registry, its metric types and publishers."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, prometheus_text


class TestCounter:
    def test_inc_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_set_total_resyncs_and_rebases_on_counter_reset(self):
        counter = MetricsRegistry().counter("rows_total")
        counter.set_total(10)
        counter.set_total(10)
        counter.set_total(12)
        assert counter.value == 12.0
        # A lower total is the Prometheus counter-reset semantic: a rollout
        # swapped in a fresh generation whose accumulators restart at zero.
        counter.set_total(3)
        assert counter.value == 3.0


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3.0)
        gauge.add(-1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_cumulative_bucket_semantics(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)
        assert histogram.buckets() == [(0.1, 1), (1.0, 3), (10.0, 4)]

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("empty", buckets=())


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("rows_total", shard="0")
        b = registry.counter("rows_total", shard="0")
        c = registry.counter("rows_total", shard="1")
        assert a is b and a is not c

    def test_kind_mismatch_is_refused(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_snapshot_flattens_with_labels(self):
        registry = MetricsRegistry()
        registry.counter("rows_total", shard="1").inc(7)
        registry.gauge("depth").set(2)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["rows_total{shard=1}"] == 7.0
        assert snap["depth"] == 2.0
        assert snap["lat_count"] == 1.0
        assert snap["lat_sum"] == 0.5


class TestPrometheusText:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_rows_total", shard="2", kind="remote").inc(3)
        registry.gauge("repro_depth").set(1.5)
        registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = prometheus_text(registry)
        assert "# TYPE repro_rows_total counter" in text
        assert 'repro_rows_total{kind="remote",shard="2"} 3' in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 1.5" in text
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_lat_seconds_count 1" in text


class TestPrometheusEscaping:
    """Hostile label values and ``# HELP`` lines survive exposition."""

    def test_hostile_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("m_total", path='a"b\\c\nd').inc(3)
        text = prometheus_text(registry)
        # Backslash doubles first, then the quote and the newline escape —
        # the order that keeps the scrape parseable.
        assert 'm_total{path="a\\"b\\\\c\\nd"} 3' in text
        # No raw newline may leak into the sample line.
        sample = next(line for line in text.splitlines() if line.startswith("m_"))
        assert sample == 'm_total{path="a\\"b\\\\c\\nd"} 3'

    def test_help_lines_default_and_custom(self):
        registry = MetricsRegistry()
        registry.counter("m_total").inc()
        registry.gauge("g")
        registry.set_help("g", "Queue depth right now")
        text = prometheus_text(registry)
        assert "# HELP m_total counter m_total" in text  # default text
        assert "# HELP g Queue depth right now" in text
        assert text.index("# HELP g") < text.index("# TYPE g gauge")

    def test_help_text_is_escaped_but_keeps_quotes(self):
        registry = MetricsRegistry()
        registry.gauge("g")
        registry.set_help("g", 'rows "served"\nper \\ second')
        text = prometheus_text(registry)
        # HELP escaping covers backslash and newline only; quotes stay.
        assert '# HELP g rows "served"\\nper \\\\ second' in text

    def test_help_emitted_once_per_name_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("m_total", shard="0").inc()
        registry.counter("m_total", shard="1").inc()
        text = prometheus_text(registry)
        assert text.count("# HELP m_total") == 1
        assert text.count("# TYPE m_total") == 1


class TestPublishers:
    def test_publish_transport_traffic_maps_counters_and_gauges(self):
        from repro.obs import publish_transport_traffic

        registry = MetricsRegistry()
        traffic = {
            "shard_traffic": {
                "features": {
                    "local_rows": 10, "remote_rows": 4,
                    "local_bytes": 400, "remote_bytes": 160,
                },
                "remote_byte_fraction": 0.25,
            },
            "transport": {
                "rounds": 6,
                "requests": {"feature_rows": 9},
                "bytes_fetched": 560,
            },
        }
        publish_transport_traffic(registry, traffic)
        snap = registry.snapshot()
        assert snap["repro_fetch_rows_total{category=features,kind=local}"] == 10
        assert snap["repro_fetch_rows_total{category=features,kind=remote}"] == 4
        assert snap["repro_fetch_bytes_total{category=features,kind=remote}"] == 160
        assert snap["repro_remote_byte_fraction"] == 0.25
        assert snap["repro_transport_rounds_total"] == 6
        assert snap["repro_transport_requests_total{op=feature_rows}"] == 9
        assert snap["repro_transport_bytes_total"] == 560
        # Publishing the same totals again is idempotent (resync, not replay).
        publish_transport_traffic(registry, traffic)
        assert registry.snapshot() == snap


class TestSnapshotDictRoundTrips:
    """Satellite: both stats snapshots survive ``as_dict`` → JSON round trips."""

    @pytest.fixture(scope="class")
    def serving_snapshot(self, trained_nai, tiny_dataset):
        import numpy as np

        from repro.core import ServingConfig
        from repro.serving import InferenceServer

        config = trained_nai.inference_config(
            t_min=1, t_max=3,
            distance_threshold=trained_nai.suggest_distance_threshold(0.5),
            batch_size=32,
        )
        predictor = trained_nai.build_predictor(policy="distance", config=config)
        predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
        with InferenceServer(predictor, ServingConfig(num_workers=1)) as server:
            server.submit(np.array([0, 1, 2])).result(timeout=60.0)
            return server.stats()

    def test_serving_snapshot_as_dict_is_json_round_trippable(
        self, serving_snapshot
    ):
        payload = serving_snapshot.as_dict()
        restored = json.loads(json.dumps(payload))
        assert restored == payload
        assert restored["requests_completed"] == 1
        assert restored["latency_ms"]["count"] == 1.0

    def test_sharded_snapshot_as_dict_is_json_round_trippable(
        self, serving_snapshot
    ):
        from repro.shard.stats import merge_serving_snapshots

        merged = merge_serving_snapshots(
            {0: serving_snapshot, 1: serving_snapshot}
        )
        payload = merged.as_dict()
        restored = json.loads(json.dumps(payload))
        assert restored == payload
        assert restored["requests_completed"] == 2
        assert set(restored["per_shard"]) == {"0", "1"}
