"""Unit tests for the tracer core: contexts, recorder, sampling, no-op mode."""

import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import NULL_TRACER, Span, TraceContext, TraceRecorder, Tracer
from repro.serving import FakeClock


class TestTraceRecorder:
    def test_ring_buffer_overwrites_oldest_and_counts_drops(self):
        recorder = TraceRecorder(capacity=3)
        for i in range(5):
            recorder.record(Span(1, i, None, "s", float(i), float(i)))
        assert len(recorder) == 3
        assert recorder.dropped == 2
        assert [span.span_id for span in recorder.spans()] == [2, 3, 4]

    def test_clear_resets_spans_and_drop_count(self):
        recorder = TraceRecorder(capacity=1)
        recorder.record(Span(1, 1, None, "a", 0.0, 1.0))
        recorder.record(Span(1, 2, None, "b", 0.0, 1.0))
        assert recorder.dropped == 1
        recorder.clear()
        assert len(recorder) == 0 and recorder.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(capacity=0)


class TestTracerAllocation:
    def test_new_trace_allocates_sequential_ids(self):
        tracer = Tracer(clock=FakeClock())
        a = tracer.new_trace()
        b = tracer.new_trace()
        assert (a.trace_id, b.trace_id) == (1, 2)
        assert a.span_id != b.span_id
        assert a.parent_id is None

    def test_child_nests_and_propagates_none(self):
        tracer = Tracer(clock=FakeClock())
        root = tracer.new_trace()
        child = tracer.child(root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert tracer.child(None) is None

    def test_sampling_is_deterministic_modular(self):
        tracer = Tracer(clock=FakeClock(), sample_every=3)
        sampled = [tracer.new_trace() is not None for _ in range(9)]
        assert sampled == [True, False, False] * 3

    def test_id_offset_shifts_span_ids(self):
        tracer = Tracer(clock=FakeClock(), id_offset=1000)
        assert tracer.new_trace().span_id == 1001

    def test_rejects_bad_sample_every(self):
        with pytest.raises(ConfigurationError):
            Tracer(sample_every=0)


class TestTracerEmission:
    def test_emit_records_at_context_identity(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        root = tracer.new_trace()
        span = tracer.emit("request", root, 1.0, 3.5, request_id=7)
        assert span.span_id == root.span_id
        assert span.duration == 2.5
        assert span.attributes == {"request_id": 7}
        assert tracer.spans() == [span]

    def test_span_context_manager_times_with_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        root = tracer.new_trace()
        with tracer.span("fetch.round", root, op="feature_rows") as ctx:
            clock.advance(2.0)
        (span,) = [s for s in tracer.spans() if s.name == "fetch.round"]
        assert span.start == 0.0 and span.end == 2.0
        assert span.parent_id == root.span_id
        assert span.span_id == ctx.span_id

    def test_event_is_zero_duration(self):
        clock = FakeClock(start=5.0)
        tracer = Tracer(clock=clock)
        root = tracer.new_trace()
        span = tracer.event("transport.retry", root, backoff_seconds=0.1)
        assert span.start == span.end == 5.0

    def test_activation_is_thread_local(self):
        tracer = Tracer(clock=FakeClock())
        root = tracer.new_trace()
        seen_in_thread = []

        def probe():
            seen_in_thread.append(tracer.current())

        with tracer.activate(root):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            assert tracer.current() == root
        assert tracer.current() is None
        assert seen_in_thread == [None]

    def test_activation_restores_prior_context(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.new_trace()
        inner = tracer.child(outer)
        with tracer.activate(outer):
            with tracer.activate(inner):
                assert tracer.current() == inner
            assert tracer.current() == outer


class TestDisabledTracer:
    def test_disabled_tracer_allocates_and_records_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.new_trace() is None
        assert tracer.child(TraceContext(1, 1)) is None
        assert tracer.emit("x", TraceContext(1, 1), 0.0, 1.0) is None
        assert tracer.event("x", TraceContext(1, 1)) is None
        assert tracer.spans() == []
        assert tracer.recorder is None

    def test_null_tracer_is_shared_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.new_trace() is None
