"""SlidingWindow semantics and HealthMonitor windowed readings (virtual time)."""

from types import SimpleNamespace

import pytest

from repro.core import MonitorConfig
from repro.exceptions import ConfigurationError
from repro.obs import HealthMonitor, MetricsRegistry, SlidingWindow
from repro.serving.clock import FakeClock


class TestSlidingWindow:
    def test_rate_is_total_over_covered_seconds(self):
        clock = FakeClock()
        window = SlidingWindow(60.0, num_buckets=12, clock=clock)
        window.add(2.0)
        clock.advance(10.0)
        window.add(3.0)
        assert window.total() == 5.0
        assert window.covered_seconds() == 10.0
        assert window.rate() == pytest.approx(0.5)

    def test_covered_seconds_ramps_from_one_bucket_to_the_window(self):
        clock = FakeClock()
        window = SlidingWindow(60.0, num_buckets=12, clock=clock)
        # Before any time passes one bucket span (5s) is the floor.
        assert window.covered_seconds() == 5.0
        clock.advance(600.0)
        # At an exact bucket boundary the live ring spans 11 full buckets
        # plus the just-opened (empty) current one: 55s, not the window.
        assert window.covered_seconds() == 55.0
        clock.advance(2.5)
        assert window.covered_seconds() == 57.5

    def test_rate_not_overdivided_right_after_bucket_rollover(self):
        """Events landing late in the ring must divide by the live span.

        Regression: covered_seconds used elapsed-since-start clamped to the
        window, so immediately after a rollover a 6-event burst divided by
        60s instead of the 55s the live buckets actually cover.
        """
        clock = FakeClock()
        window = SlidingWindow(60.0, num_buckets=12, clock=clock)
        clock.advance(57.0)
        window.add(6.0)
        clock.advance(3.0)  # lands exactly on the t=60 bucket boundary
        assert window.total() == 6.0
        assert window.covered_seconds() == 55.0
        assert window.rate() == pytest.approx(6.0 / 55.0)

    def test_covered_seconds_floor_spans_partial_first_bucket(self):
        clock = FakeClock()
        window = SlidingWindow(60.0, num_buckets=12, clock=clock)
        window.add(10.0)
        clock.advance(2.0)  # inside the first bucket span
        assert window.covered_seconds() == 5.0  # floored at one span
        assert window.rate() == pytest.approx(2.0)

    def test_rate_uses_one_consistent_reading(self):
        """rate() must pair total and covered span from the same instant."""
        clock = FakeClock()
        window = SlidingWindow(60.0, num_buckets=12, clock=clock)
        clock.advance(10.0)
        window.add(4.0)
        assert window.rate() == pytest.approx(4.0 / 10.0)
        # Crossing many boundaries expires the events and grows the span.
        clock.advance(100.0)
        assert window.total() == 0.0
        assert window.rate() == 0.0

    def test_old_buckets_expire_by_epoch(self):
        clock = FakeClock()
        window = SlidingWindow(60.0, num_buckets=12, clock=clock)
        window.add(5.0)
        clock.advance(30.0)
        window.add(1.0)
        assert window.total() == 6.0
        # 31 more seconds: the first bucket (epoch 0) is now outside the
        # 12-bucket horizon, the second is still in.
        clock.advance(31.0)
        assert window.total() == 1.0
        clock.advance(60.0)
        assert window.total() == 0.0

    def test_ring_slot_is_reclaimed_in_place(self):
        clock = FakeClock()
        window = SlidingWindow(4.0, num_buckets=2, clock=clock)
        window.add(1.0)
        # Epoch 2 maps onto the same slot as epoch 0 — old content must go.
        clock.advance(4.0)
        window.add(10.0)
        assert window.total() == 10.0

    def test_observe_mean_count_and_summary(self):
        clock = FakeClock()
        window = SlidingWindow(60.0, num_buckets=6, clock=clock)
        for value in (0.010, 0.020, 0.030, 0.100):
            window.observe(value)
            clock.advance(1.0)
        assert window.count() == 4
        assert window.mean() == pytest.approx(0.04)
        summary = window.summary()
        assert summary.count == 4
        assert summary.max == pytest.approx(0.100)
        assert summary.p50 == pytest.approx(0.025)

    def test_sample_cap_keeps_counting_but_drops_samples(self):
        clock = FakeClock()
        window = SlidingWindow(10.0, num_buckets=2, clock=clock, sample_cap=2)
        # Cap is per bucket: max(1, 2 // 2) = 1 retained sample per bucket.
        for value in (1.0, 2.0, 3.0):
            window.observe(value)
        assert window.count() == 3
        assert window.mean() == pytest.approx(2.0)
        assert window.dropped_samples == 2
        assert window.summary().count == 1

    def test_reset_forgets_everything_and_restarts_coverage(self):
        clock = FakeClock()
        window = SlidingWindow(60.0, num_buckets=12, clock=clock)
        window.add(100.0)
        window.observe(1.0)
        clock.advance(30.0)
        window.reset()
        assert window.total() == 0.0
        assert window.count() == 0
        assert window.covered_seconds() == 5.0  # one bucket span again
        assert window.summary().count == 0

    def test_empty_window_reads_zeros(self):
        window = SlidingWindow(60.0, clock=FakeClock())
        assert window.total() == 0.0
        assert window.rate() == 0.0
        assert window.mean() == 0.0
        assert window.summary().p95 == 0.0

    def test_negative_delta_rejected(self):
        window = SlidingWindow(60.0, clock=FakeClock())
        with pytest.raises(ConfigurationError, match="negative"):
            window.add(-1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(0.0)
        with pytest.raises(ConfigurationError):
            SlidingWindow(60.0, num_buckets=0)
        with pytest.raises(ConfigurationError):
            SlidingWindow(60.0, sample_cap=0)


# ---------------------------------------------------------------------- #
# HealthMonitor over a scripted stub router
# ---------------------------------------------------------------------- #
def _interval(completed=0, failed=0, nodes=0, depth=0):
    return SimpleNamespace(
        requests_completed=completed,
        requests_failed=failed,
        nodes_completed=nodes,
        queue_depth=depth,
    )


class StubRouter:
    """Replays scripted interval deltas and cumulative transport totals."""

    def __init__(self):
        self.registry = MetricsRegistry()
        self.intervals: dict[int, SimpleNamespace] = {}
        self.samples: dict[int, tuple[float, ...]] = {}
        self.plan_version = 0
        self.transport_retries = 0
        self.transport_failovers = 0
        self.remote_bytes = 0

    def interval_latency_samples(self):
        return dict(self.samples)

    def interval_stats(self, *, reset=True):
        return dict(self.intervals)

    def stats(self):
        return SimpleNamespace(
            plan_version=self.plan_version,
            transport_retries=self.transport_retries,
            transport_failovers=self.transport_failovers,
        )

    def traffic(self):
        return {
            "shard_traffic": {
                "0": {"remote_bytes": self.remote_bytes, "local_rows": 0}
            }
        }


CONFIG = MonitorConfig(window_seconds=60.0, num_buckets=12, cadence_seconds=5.0)


class TestHealthMonitor:
    def test_windowed_rates_are_exact_in_virtual_time(self):
        clock = FakeClock()
        router = StubRouter()
        monitor = HealthMonitor(router, CONFIG, clock=clock)
        router.intervals = {0: _interval(completed=4, nodes=40)}
        router.samples = {0: (0.010, 0.020)}
        clock.advance(10.0)
        health = monitor.tick()
        shard = health.per_shard[0]
        # Per-shard windows open at the shard's first tick, so their
        # coverage is still the one-bucket floor (5s): 4 requests / 5s.
        assert shard.request_rate == pytest.approx(0.8)
        assert shard.node_rate == pytest.approx(8.0)
        assert shard.heat == pytest.approx(8.0)
        # Fleet windows open with the monitor (t=0): 4 requests / 10s.
        assert health.request_rate == pytest.approx(0.4)
        assert health.interval_completed == 4
        assert health.interval_latency_samples == (0.010, 0.020)
        assert health.latency.max == pytest.approx(0.020)

    def test_heat_ranks_hottest_shards_first(self):
        clock = FakeClock()
        router = StubRouter()
        monitor = HealthMonitor(router, CONFIG, clock=clock)
        router.intervals = {
            0: _interval(nodes=10),
            1: _interval(nodes=90),
            2: _interval(nodes=10),
        }
        clock.advance(10.0)
        health = monitor.tick()
        assert health.hottest_shards() == [1, 0, 2]
        heat = monitor.shard_heat()
        assert heat[1] > heat[0] == heat[2]

    def test_maybe_tick_honours_the_cadence(self):
        clock = FakeClock()
        router = StubRouter()
        monitor = HealthMonitor(router, CONFIG, clock=clock)
        assert monitor.maybe_tick() is not None  # first tick always fires
        clock.advance(1.0)
        assert monitor.maybe_tick() is None  # cadence is 5s
        clock.advance(4.0)
        assert monitor.maybe_tick() is not None
        assert monitor.ticks == 2

    def test_transport_deltas_are_baselined_at_the_first_tick(self):
        clock = FakeClock()
        router = StubRouter()
        monitor = HealthMonitor(router, CONFIG, clock=clock)
        router.transport_retries = 100  # pre-existing total
        clock.advance(10.0)
        health = monitor.tick()
        assert health.transport_retry_rate == 0.0  # baseline, not a burst
        router.transport_retries = 106
        router.remote_bytes = 3000
        clock.advance(10.0)
        health = monitor.tick()
        # 6 retries over the 20s covered window.
        assert health.transport_retry_rate == pytest.approx(6 / 20)
        assert health.remote_byte_rate == pytest.approx(3000 / 20)

    def test_tick_publishes_window_gauges_into_the_registry(self):
        clock = FakeClock()
        router = StubRouter()
        monitor = HealthMonitor(router, CONFIG, clock=clock)
        router.intervals = {0: _interval(completed=4, nodes=40)}
        router.samples = {0: (0.010,)}
        clock.advance(10.0)
        monitor.tick()
        registry = router.registry  # monitor defaults to the router's
        assert monitor.registry is registry
        assert registry.gauge("repro_request_rate_window").value == pytest.approx(
            0.4
        )
        assert registry.gauge(
            "repro_shard_heat_window", shard="0"
        ).value == pytest.approx(8.0)  # shard window coverage floor is 5s
        assert registry.gauge(
            "repro_latency_p95_window_seconds"
        ).value == pytest.approx(0.010)
        assert (
            registry.help_text("repro_shard_heat_window")
            == "Windowed rows served per second, the rebalance ranking key"
        )

    def test_failure_rate_and_queue_depth_percentile(self):
        clock = FakeClock()
        router = StubRouter()
        monitor = HealthMonitor(router, CONFIG, clock=clock)
        for depth, failed in ((2, 0), (10, 3)):
            router.intervals = {0: _interval(completed=5, failed=failed, depth=depth)}
            clock.advance(10.0)
            health = monitor.tick()
        shard = health.per_shard[0]
        # The shard's windows opened at its first tick (t=10): 10s covered.
        assert shard.failure_rate == pytest.approx(3 / 10)
        assert shard.queue_depth == 10.0
        assert shard.queue_depth_p95 > 2.0
        assert health.as_dict()["per_shard"]["0"]["queue_depth"] == 10.0

    def test_describe_reports_ticks_and_shards(self):
        clock = FakeClock()
        router = StubRouter()
        monitor = HealthMonitor(router, CONFIG, clock=clock)
        router.intervals = {0: _interval(), 1: _interval()}
        monitor.tick()
        description = monitor.describe()
        assert description["ticks"] == 1
        assert description["shards"] == [0, 1]
        assert description["window_seconds"] == 60.0
