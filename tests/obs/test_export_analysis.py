"""Exporter round trips and critical-path analysis over synthetic span trees."""

import json

import pytest

from repro.obs import (
    CriticalPathAnalyzer,
    Span,
    chrome_trace,
    load_spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)


def _span(trace, span_id, parent, name, start, end, **attrs):
    return Span(trace, span_id, parent, name, start, end, attrs)


def request_tree():
    """One fully-instrumented request: queue → coalesce → build/fetch → compute."""
    return [
        _span(1, 1, None, "request", 0.0, 10.0, request_id=0, num_nodes=4),
        _span(1, 2, 1, "queue.wait", 0.0, 2.0),
        _span(1, 3, 1, "batch.coalesce", 2.0, 3.0, batch_id=0),
        _span(1, 4, 1, "batch.execute", 3.0, 9.5, batch_id=0),
        _span(1, 5, 4, "support.build", 3.0, 6.0, batch_id=0),
        _span(1, 6, 5, "fetch.round", 3.5, 5.5, op="feature_rows",
              shards=[0, 2], rows=[30, 10]),
        _span(1, 7, 4, "engine.compute", 6.0, 9.0, batch_id=0),
        _span(1, 8, 4, "scatter", 9.0, 9.5, batch_id=0),
        _span(1, 9, 6, "transport.retry", 4.0, 4.0, backoff_seconds=0.25),
    ]


class TestJsonlExport:
    def test_round_trip_preserves_every_field(self, tmp_path):
        spans = request_tree()
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(spans, path) == len(spans)
        restored = load_spans_jsonl(path)
        assert restored == spans

    def test_server_log_records_load_as_spans(self, tmp_path):
        # The shard server writes the same schema by hand — keep them coupled.
        record = {
            "trace_id": 1, "span_id": (1234 << 24) + 1, "parent_id": 6,
            "name": "server.feature_rows", "start": 1.0, "end": 1.5,
            "attributes": {"shard": 2, "rows": 10, "pid": 1234},
        }
        path = tmp_path / "server.jsonl"
        path.write_text(json.dumps(record) + "\n")
        (span,) = load_spans_jsonl(path)
        assert span.name == "server.feature_rows"
        assert span.parent_id == 6
        assert span.attributes["shard"] == 2


class TestChromeTrace:
    def test_events_are_rebased_microseconds(self):
        doc = chrome_trace(request_tree(), process_name="test-proc")
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "test-proc"
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(request_tree())
        root = next(e for e in complete if e["name"] == "request")
        assert root["ts"] == 0.0 and root["dur"] == 10.0 * 1e6
        compute = next(e for e in complete if e["name"] == "engine.compute")
        assert compute["ts"] == 6.0 * 1e6
        assert all(e["tid"] == 1 for e in complete)

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = write_chrome_trace(request_tree(), tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == len(request_tree()) + 1


class TestCriticalPathAnalyzer:
    def test_tree_walk_orders_depth_first(self):
        analyzer = CriticalPathAnalyzer(request_tree())
        walk = analyzer.tree(1)
        assert [(depth, span.name) for depth, span in walk[:4]] == [
            (0, "request"),
            (1, "queue.wait"),
            (1, "batch.coalesce"),
            (1, "batch.execute"),
        ]
        depths = {span.name: depth for depth, span in walk}
        assert depths["fetch.round"] == 3
        assert depths["transport.retry"] == 4

    def test_breakdown_components_attribute_exactly(self):
        analyzer = CriticalPathAnalyzer(request_tree())
        (breakdown,) = analyzer.request_breakdowns()
        assert breakdown.total == 10.0
        assert breakdown.components["queue"] == 2.0
        assert breakdown.components["coalesce"] == 1.0
        assert breakdown.components["fetch"] == 2.0
        # support.build minus its nested fetch round: 3.0 - 2.0.
        assert breakdown.components["build"] == 1.0
        assert breakdown.components["compute"] == 3.0
        assert breakdown.components["scatter"] == 0.5
        assert breakdown.components["retry_wait"] == 0.25
        assert breakdown.retries == 1
        assert breakdown.request_ids == [0]
        payload = breakdown.as_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_rider_request_gets_batch_wait(self):
        # A non-primary request: only its root and queue wait were recorded.
        spans = [
            _span(2, 20, None, "request", 0.0, 8.0, request_id=1),
            _span(2, 21, 20, "queue.wait", 0.0, 3.0),
        ]
        (breakdown,) = CriticalPathAnalyzer(spans).request_breakdowns()
        assert breakdown.components == {"queue": 3.0, "batch_wait": 5.0}
        assert breakdown.unattributed == 0.0

    def test_shard_load_attributes_rows_and_time(self):
        analyzer = CriticalPathAnalyzer(request_tree())
        loads = analyzer.shard_load()
        assert [(load.shard_id, load.rows) for load in loads] == [(0, 30), (2, 10)]
        # 2.0s round split 30:10 across the two shards.
        assert loads[0].seconds == 1.5 and loads[1].seconds == 0.5
        assert analyzer.shard_ranking() == [0, 2]

    def test_server_spans_add_service_time(self):
        spans = request_tree() + [
            _span(1, (99 << 24) + 1, 6, "server.feature_rows", 4.0, 4.7,
                  shard=2, rows=10, pid=99),
        ]
        analyzer = CriticalPathAnalyzer(spans)
        by_shard = {load.shard_id: load for load in analyzer.shard_load()}
        assert by_shard[2].server_seconds == pytest.approx(0.7)
        assert by_shard[0].server_seconds == 0.0

    def test_merged_with_stitches_extra_spans(self):
        base = CriticalPathAnalyzer(request_tree())
        extra = [
            _span(1, (99 << 24) + 1, 6, "server.feature_rows", 4.0, 4.5,
                  shard=0, rows=30, pid=99)
        ]
        merged = base.merged_with(extra)
        assert len(merged.spans) == len(base.spans) + 1
        walk = merged.tree(1)
        assert any(span.name == "server.feature_rows" and depth == 4
                   for depth, span in walk)

    def test_breakdown_totals_sum_across_traces(self):
        spans = request_tree() + [
            _span(2, 20, None, "request", 0.0, 8.0, request_id=1),
            _span(2, 21, 20, "queue.wait", 0.0, 3.0),
        ]
        totals = CriticalPathAnalyzer(spans).breakdown_totals()
        assert totals["total"] == 18.0
        assert totals["queue"] == 5.0
        assert totals["batch_wait"] == 5.0


class TestAnalyzerEdgeCases:
    """Satellite: degenerate inputs the dashboards will eventually feed it."""

    def test_empty_analyzer_yields_empty_everything(self):
        analyzer = CriticalPathAnalyzer([])
        assert analyzer.trace_ids() == []
        assert analyzer.roots() == []
        assert analyzer.request_breakdowns() == []
        assert analyzer.shard_load() == []
        assert analyzer.shard_ranking() == []
        assert analyzer.breakdown_totals() == {}
        assert analyzer.tree(1) == []

    def test_empty_trace_recorder_feeds_an_empty_analyzer(self):
        from repro.obs import TraceRecorder

        recorder = TraceRecorder(capacity=8)
        analyzer = CriticalPathAnalyzer(recorder.spans())
        assert analyzer.request_breakdowns() == []
        assert recorder.dropped == 0

    def test_ring_overflow_drops_roots_but_never_crashes(self):
        from repro.obs import TraceRecorder

        # Capacity 4 retains only the tail of the 9-span request tree: the
        # root (recorded first) is gone, leaving orphans whose parents are
        # not in the buffer.
        recorder = TraceRecorder(capacity=4)
        for span in request_tree():
            recorder.record(span)
        assert recorder.dropped == 5
        analyzer = CriticalPathAnalyzer(recorder.spans())
        # No root survived: no request breakdowns, but shard load still
        # works off the surviving fetch.round span... which also fell out
        # here; the analyzer must simply return empty, not raise.
        assert analyzer.roots() == []
        assert analyzer.request_breakdowns() == []
        assert analyzer.breakdown_totals() == {}

    def test_orphan_children_are_invisible_to_tree_walks(self):
        spans = [span for span in request_tree() if span.span_id != 1]
        analyzer = CriticalPathAnalyzer(spans)
        assert analyzer.trace_ids() == [1]  # spans exist...
        assert analyzer.roots() == []  # ...but no root claims them
        assert analyzer.tree(1) == []

    def test_merged_with_disjoint_trace_ids_keeps_traces_separate(self):
        base = CriticalPathAnalyzer(request_tree())
        other = [
            _span(7, 70, None, "request", 100.0, 104.0, request_id=9),
            _span(7, 71, 70, "queue.wait", 100.0, 101.0),
        ]
        merged = base.merged_with(other)
        assert merged.trace_ids() == [1, 7]
        assert len(merged.request_breakdowns()) == 2
        # The new trace's tree never absorbs spans from trace 1.
        assert [span.trace_id for _, span in merged.tree(7)] == [7, 7]
        assert len(merged.tree(1)) == len(base.tree(1))
        # The original analyzer is untouched (merged_with is functional).
        assert merged is not base and len(base.spans) == len(request_tree())
