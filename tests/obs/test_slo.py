"""Burn-rate math and the pending → firing → resolved alert lifecycle."""

import logging

import pytest

from repro.core import MonitorConfig
from repro.exceptions import ConfigurationError
from repro.obs import (
    FIRING,
    PENDING,
    RESOLVED,
    SLO,
    FleetHealth,
    LogAlertSink,
    MemoryAlertSink,
    SLOEngine,
    slos_from_config,
)
from repro.metrics.timing import latency_summary
from repro.serving.clock import FakeClock


def _health(samples=(), completed=None, failed=0):
    """A minimal FleetHealth carrying only the interval delta fields."""
    if completed is None:
        completed = len(samples)
    return FleetHealth(
        at=0.0,
        plan_version=0,
        per_shard={},
        latency=latency_summary(list(samples)),
        request_rate=0.0,
        failure_rate=0.0,
        transport_retry_rate=0.0,
        transport_failover_rate=0.0,
        remote_byte_rate=0.0,
        interval_latency_samples=tuple(samples),
        interval_completed=completed,
        interval_failed=failed,
    )


def latency_slo(**overrides):
    spec = dict(
        name="latency",
        objective="latency",
        threshold_seconds=0.1,
        budget_fraction=0.05,
        fast_window_seconds=60.0,
        slow_window_seconds=3600.0,
        burn_rate_threshold=1.0,
        for_seconds=0.0,
        resolve_after_seconds=30.0,
        min_events=1,
    )
    spec.update(overrides)
    return SLO(**spec)


class TestBurnRates:
    def test_latency_burn_is_bad_fraction_over_budget(self):
        clock = FakeClock()
        engine = SLOEngine([latency_slo()], clock=clock)
        # 1 bad sample out of 10 with a 5% budget: burn = 0.1 / 0.05 = 2.
        engine.ingest(_health(samples=(0.5,) + (0.01,) * 9))
        assert engine.burn_rates("latency") == (pytest.approx(2.0),) * 2

    def test_error_rate_burn_counts_failures(self):
        clock = FakeClock()
        slo = latency_slo(
            name="errors", objective="error_rate", threshold_seconds=0.0,
            budget_fraction=0.01,
        )
        engine = SLOEngine([slo], clock=clock)
        engine.ingest(_health(completed=98, failed=2))
        # 2/100 failures over a 1% budget: burn 2.
        assert engine.burn_rates("errors")[0] == pytest.approx(2.0)

    def test_empty_windows_burn_zero(self):
        engine = SLOEngine([latency_slo()], clock=FakeClock())
        assert engine.burn_rates("latency") == (0.0, 0.0)
        assert engine.evaluate() == []
        assert engine.state_of("latency") == RESOLVED

    def test_fast_window_forgets_old_badness(self):
        clock = FakeClock()
        engine = SLOEngine([latency_slo()], clock=clock)
        engine.ingest(_health(samples=(0.5, 0.5)))
        clock.advance(61.0)
        engine.ingest(_health(samples=(0.01,) * 3))
        burn_fast, burn_slow = engine.burn_rates("latency")
        assert burn_fast == 0.0  # bad events aged out of the 60s window
        assert burn_slow == pytest.approx((2 / 5) / 0.05)  # 1h window keeps them


class TestAlertLifecycle:
    def test_zero_for_seconds_fires_in_one_evaluation(self):
        clock = FakeClock()
        sink = MemoryAlertSink()
        engine = SLOEngine([latency_slo()], sinks=[sink], clock=clock)
        transitions = engine.tick(_health(samples=(0.5, 0.5)))
        assert [a.state for a in transitions] == [PENDING, FIRING]
        assert sink.states("latency") == [PENDING, FIRING]
        assert engine.firing() == ["latency"]

    def test_for_seconds_delays_firing(self):
        clock = FakeClock()
        engine = SLOEngine([latency_slo(for_seconds=10.0)], clock=clock)
        engine.tick(_health(samples=(0.5,)))
        assert engine.state_of("latency") == PENDING
        clock.advance(9.0)
        engine.tick(_health(samples=(0.5,)))
        assert engine.state_of("latency") == PENDING
        clock.advance(1.0)
        (alert,) = engine.tick(_health(samples=(0.5,)))
        assert alert.state == FIRING

    def test_pending_that_clears_resolves_silently(self):
        clock = FakeClock()
        sink = MemoryAlertSink()
        engine = SLOEngine(
            [latency_slo(for_seconds=10.0)], sinks=[sink], clock=clock
        )
        engine.tick(_health(samples=(0.5,)))
        clock.advance(61.0)  # condition ages out before for_seconds matured
        engine.tick(_health(samples=(0.01,)))
        assert engine.state_of("latency") == RESOLVED
        assert sink.states("latency") == [PENDING]  # no firing, no resolved

    def test_min_events_gates_the_condition(self):
        clock = FakeClock()
        engine = SLOEngine([latency_slo(min_events=5)], clock=clock)
        engine.tick(_health(samples=(0.5, 0.5)))
        assert engine.state_of("latency") == RESOLVED
        engine.tick(_health(samples=(0.5, 0.5, 0.5)))
        assert engine.state_of("latency") == FIRING

    def test_firing_resolves_after_sustained_clear(self):
        clock = FakeClock()
        sink = MemoryAlertSink()
        engine = SLOEngine([latency_slo()], sinks=[sink], clock=clock)
        engine.tick(_health(samples=(0.5, 0.5)))
        assert engine.state_of("latency") == FIRING
        clock.advance(61.0)  # badness leaves the fast window
        engine.tick(_health(samples=(0.01,)))
        assert engine.state_of("latency") == FIRING  # hysteresis: not yet
        clock.advance(30.0)
        engine.tick(_health(samples=(0.01,)))
        assert engine.state_of("latency") == RESOLVED
        assert sink.states("latency") == [PENDING, FIRING, RESOLVED]

    def test_flapping_condition_rearms_the_resolve_clock(self):
        clock = FakeClock()
        engine = SLOEngine([latency_slo()], clock=clock)
        engine.tick(_health(samples=(0.5, 0.5)))
        clock.advance(61.0)
        engine.tick(_health(samples=(0.01,)))  # clear starts
        clock.advance(10.0)
        engine.tick(_health(samples=(0.5, 0.5)))  # condition returns
        clock.advance(25.0)
        engine.tick(_health(samples=(0.01,) * 20))
        # 25s since the flap is under resolve_after_seconds=30: still firing.
        assert engine.state_of("latency") == FIRING


class TestSinksAndConfig:
    def test_memory_sink_filters_by_slo(self):
        clock = FakeClock()
        sink = MemoryAlertSink()
        engine = SLOEngine(
            [
                latency_slo(),
                latency_slo(name="errors", objective="error_rate",
                            threshold_seconds=0.0, budget_fraction=0.01),
            ],
            sinks=[sink],
            clock=clock,
        )
        engine.tick(_health(samples=(0.5,), completed=0, failed=1))
        assert sink.states("latency") == [PENDING, FIRING]
        assert sink.states("errors") == [PENDING, FIRING]
        assert len(sink.states()) == 4

    def test_log_sink_writes_transitions(self, caplog):
        sink = LogAlertSink()
        engine = SLOEngine([latency_slo()], sinks=[sink], clock=FakeClock())
        with caplog.at_level(logging.INFO, logger="repro.obs.slo"):
            engine.tick(_health(samples=(0.5,)))
        messages = [record.getMessage() for record in caplog.records]
        assert any("pending" in m for m in messages)
        assert any("firing" in m for m in messages)
        firing = next(r for r in caplog.records if "firing" in r.getMessage())
        assert firing.levelno == logging.WARNING

    def test_slos_from_config_builds_the_declared_objectives(self):
        assert slos_from_config(MonitorConfig()) == []  # both disabled
        config = MonitorConfig(
            latency_slo_threshold_seconds=0.2,
            error_slo_budget_fraction=0.01,
            burn_rate_threshold=2.0,
            min_alert_events=4,
        )
        slos = {slo.name: slo for slo in slos_from_config(config)}
        assert set(slos) == {"latency", "error_rate"}
        assert slos["latency"].threshold_seconds == 0.2
        assert slos["latency"].burn_rate_threshold == 2.0
        assert slos["error_rate"].budget_fraction == 0.01
        assert slos["error_rate"].min_events == 4

    def test_duplicate_slo_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            SLOEngine([latency_slo(), latency_slo()], clock=FakeClock())

    def test_describe_reports_state_and_burns(self):
        engine = SLOEngine([latency_slo()], clock=FakeClock())
        engine.tick(_health(samples=(0.5,)))
        description = engine.describe()
        assert description["latency"]["state"] == FIRING
        assert description["latency"]["burn_fast"] == pytest.approx(20.0)

    def test_slo_validation(self):
        with pytest.raises(ConfigurationError):
            SLO(name="", objective="latency", threshold_seconds=1.0)
        with pytest.raises(ConfigurationError):
            SLO(name="x", objective="availability")
        with pytest.raises(ConfigurationError):
            SLO(name="x", objective="latency", threshold_seconds=0.0)
        with pytest.raises(ConfigurationError):
            latency_slo(budget_fraction=1.5)
        with pytest.raises(ConfigurationError):
            latency_slo(slow_window_seconds=1.0)
        with pytest.raises(ConfigurationError):
            latency_slo(burn_rate_threshold=0.0)
        with pytest.raises(ConfigurationError):
            latency_slo(min_events=0)
