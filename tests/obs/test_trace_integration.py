"""Deterministic end-to-end tracing tests across the serving stack.

Four pillars, matching the issue's acceptance criteria:

* exact **virtual-time** span trees — fetch rounds through a
  fault-injected transport on a ``FakeClock`` land on exact ticks;
* a **complete span tree** for a served request whose stamps are
  float-identical to the :class:`~repro.serving.ServingResponse` fields;
* **zero-cost disabled mode** — tracing off is bit-identical (predictions,
  depths, MACs) and records nothing;
* **shard-load attribution** — the analyzer's per-shard rows agree exactly
  with the store's :class:`~repro.shard.store.ShardTraffic` counters, and
  cross-process stitching links server spans under client fetch rounds.
"""

import numpy as np
import pytest

from repro.core import ServingConfig, ShardConfig
from repro.graph.generators import SyntheticGraphSpec, generate_community_graph
from repro.obs import CriticalPathAnalyzer, TraceRecorder, Tracer, load_spans_jsonl
from repro.serving import FakeClock, InferenceServer
from repro.shard import ShardedGraphStore
from repro.transport import FaultInjectingTransport, LocalTransport, SocketTransport
from repro.transport import wire


def make_store(num_shards: int = 3) -> ShardedGraphStore:
    spec = SyntheticGraphSpec(
        num_nodes=180, num_classes=4, avg_degree=6.0, degree_exponent=2.0
    )
    graph, _ = generate_community_graph(spec, rng=5)
    features = np.random.default_rng(1).normal(
        size=(graph.num_nodes, 7)
    ).astype(np.float32)
    return ShardedGraphStore.from_graph(
        graph, features, ShardConfig(num_shards=num_shards, strategy="hash"),
        gamma=0.5, dtype=np.float32,
    )


class TestWireTracePropagation:
    def test_untraced_frames_are_byte_identical_to_legacy(self):
        rows = np.array([3, 1, 4], dtype=np.int64)
        payload = wire.encode_request("feature_rows", rows)
        # No flag bit, no trace header: the exact pre-tracing layout.
        assert payload[0] == wire.OPCODES["feature_rows"]
        op, decoded, trace = wire.decode_request_traced(payload)
        assert (op, trace) == ("feature_rows", None)
        np.testing.assert_array_equal(decoded, rows)

    def test_traced_frames_round_trip_ids(self):
        rows = np.array([7, 8], dtype=np.int64)
        payload = wire.encode_request("adjacency_rows", rows, trace=(42, 99))
        assert payload[0] & wire.TRACE_FLAG
        op, decoded, trace = wire.decode_request_traced(payload)
        assert op == "adjacency_rows"
        assert trace == (42, 99)
        np.testing.assert_array_equal(decoded, rows)
        # The legacy decoder still works on traced frames (ignores the ids).
        op2, decoded2 = wire.decode_request(payload)
        assert op2 == "adjacency_rows"
        np.testing.assert_array_equal(decoded2, rows)


class TestVirtualTimeSpans:
    def test_fetch_rounds_land_on_exact_virtual_ticks(self):
        store = make_store()
        reference = store.build_support_bundle(
            np.arange(12, dtype=np.int64), depth=2, home_shard=0
        )
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        store.use_transport(
            FaultInjectingTransport(
                LocalTransport(store.shards), latency_seconds=0.5, clock=clock
            )
        )
        store.use_tracer(tracer)
        root = tracer.new_trace()
        with tracer.activate(root):
            bundle = store.build_support_bundle(
                np.arange(12, dtype=np.int64), depth=2, home_shard=0
            )
        spans = tracer.spans()
        assert spans and all(span.name == "fetch.round" for span in spans)
        # Every round consumed exactly its injected virtual latency, end to
        # end with no gaps: round k spans [0.5k, 0.5(k+1)].
        for k, span in enumerate(spans):
            assert span.start == 0.5 * k
            assert span.end == 0.5 * (k + 1)
            assert span.parent_id == root.span_id
        assert clock.now() == 0.5 * len(spans)
        # Tracing plus fault latency never changed the assembled bundle.
        np.testing.assert_array_equal(
            bundle.support.node_ids, reference.support.node_ids
        )
        np.testing.assert_array_equal(bundle.indices, reference.indices)
        np.testing.assert_array_equal(
            bundle.local_features, reference.local_features
        )

    def test_untraced_store_records_nothing(self):
        store = make_store()
        tracer = Tracer(clock=FakeClock())
        store.use_tracer(tracer)
        # No activated context: the fetch sites must not allocate spans.
        store.build_support_bundle(
            np.arange(6, dtype=np.int64), depth=2, home_shard=0
        )
        assert tracer.spans() == []


@pytest.fixture(scope="module")
def served_predictor(trained_nai, tiny_dataset):
    config = trained_nai.inference_config(
        t_min=1, t_max=3,
        distance_threshold=trained_nai.suggest_distance_threshold(0.5),
        batch_size=32,
    )
    predictor = trained_nai.build_predictor(policy="distance", config=config)
    predictor.prepare(tiny_dataset.graph, tiny_dataset.features)
    return predictor


SERVING = ServingConfig(
    num_workers=1, max_batch_size=64, max_wait_ms=0.5, cache_capacity=8
)


class TestServerSpanTree:
    def test_span_stamps_equal_response_fields_exactly(
        self, served_predictor, tiny_dataset
    ):
        tracer = Tracer()
        test_idx = tiny_dataset.split.test_idx
        requests = [test_idx[i:i + 7] for i in range(0, 35, 7)]
        responses = []
        with InferenceServer(served_predictor, SERVING, tracer=tracer) as server:
            for batch in requests:
                responses.append(server.submit(batch).result(timeout=60.0))
        spans = tracer.spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        request_spans = {
            span.attributes["request_id"]: span for span in by_name["request"]
        }
        queue_spans = {}
        for span in by_name["queue.wait"]:
            queue_spans.setdefault(span.trace_id, span)
        execute_by_batch = {
            span.attributes["batch_id"]: span for span in by_name["batch.execute"]
        }
        for response in responses:
            span = request_spans[response.request_id]
            # Span stamps are the same clock readings the response computed
            # its fields from — exact float equality, not approximation.
            assert span.duration == response.latency_seconds
            assert span.attributes["num_nodes"] == response.node_ids.shape[0]
            assert span.attributes["batch_id"] == response.batch_id
            queue_span = queue_spans[span.trace_id]
            assert queue_span.parent_id == span.span_id
            assert queue_span.duration == response.queue_seconds
            execute = execute_by_batch[response.batch_id]
            assert execute.attributes["macs"] == response.batch_macs.total
            assert execute.attributes["worker_id"] == response.worker_id
        # Every batch's execution decomposes: compute and scatter nest under
        # batch.execute, which nests under some request root.
        for name in ("engine.compute", "scatter"):
            for span in by_name[name]:
                parent = execute_by_batch[span.attributes["batch_id"]]
                assert span.parent_id == parent.span_id
        root_ids = {span.span_id for span in by_name["request"]}
        for execute in execute_by_batch.values():
            assert execute.parent_id in root_ids

    def test_sampled_out_requests_ride_untraced(self, served_predictor,
                                                tiny_dataset):
        tracer = Tracer(sample_every=2)
        test_idx = tiny_dataset.split.test_idx
        with InferenceServer(served_predictor, SERVING, tracer=tracer) as server:
            for i in range(4):
                server.submit(test_idx[i * 5:(i + 1) * 5]).result(timeout=60.0)
        roots = [span for span in tracer.spans() if span.name == "request"]
        assert len(roots) == 2


class TestDisabledTracingIsFree:
    def _serve(self, predictor, batches, tracer):
        outputs = []
        with InferenceServer(predictor, SERVING, tracer=tracer) as server:
            for batch in batches:
                outputs.append(server.submit(batch).result(timeout=60.0))
        return outputs

    def test_off_is_bit_identical_and_records_nothing(
        self, served_predictor, tiny_dataset
    ):
        test_idx = tiny_dataset.split.test_idx
        batches = [test_idx[i:i + 9] for i in range(0, 45, 9)]
        traced = self._serve(served_predictor, batches, Tracer())
        untraced = self._serve(served_predictor, batches, None)
        disabled_tracer = Tracer(enabled=False)
        disabled = self._serve(served_predictor, batches, disabled_tracer)
        for a, b, c in zip(traced, untraced, disabled):
            np.testing.assert_array_equal(a.predictions, b.predictions)
            np.testing.assert_array_equal(a.predictions, c.predictions)
            np.testing.assert_array_equal(a.depths, b.depths)
            np.testing.assert_array_equal(a.depths, c.depths)
            assert a.batch_macs.total == b.batch_macs.total == c.batch_macs.total
        # Disabled tracers hold no recorder at all — nothing can grow.
        assert disabled_tracer.recorder is None
        assert disabled_tracer.spans() == []


class TestShardLoadAttribution:
    def test_analyzer_rows_match_shard_traffic_exactly(self):
        store = make_store()
        tracer = Tracer(recorder=TraceRecorder(capacity=65536))
        store.use_tracer(tracer)
        home = 2
        owned = store.shards[home].owned
        root = tracer.new_trace()
        with tracer.activate(root):
            for start in range(0, min(owned.shape[0], 40), 8):
                store.build_support_bundle(
                    owned[start:start + 8], depth=2, home_shard=home
                )
        spans = tracer.spans()
        analyzer = CriticalPathAnalyzer(spans)
        loads = {load.shard_id: load for load in analyzer.shard_load()}

        def span_rows(op, shard_filter):
            total = 0
            for span in spans:
                if span.name != "fetch.round" or span.attributes["op"] != op:
                    continue
                for shard_id, rows in zip(
                    span.attributes["shards"], span.attributes["rows"]
                ):
                    if shard_filter(shard_id):
                        total += rows
            return total

        traffic = store.traffic
        pairs = {
            "adjacency_rows": (
                traffic.adjacency_rows_local, traffic.adjacency_rows_remote
            ),
            "feature_rows": (
                traffic.feature_rows_local, traffic.feature_rows_remote
            ),
            "frontier_columns": (
                traffic.frontier_cols_local, traffic.frontier_cols_remote
            ),
            "degree_rows": (
                traffic.degree_rows_local, traffic.degree_rows_remote
            ),
        }
        for op, (local, remote) in pairs.items():
            assert span_rows(op, lambda s: s == home) == local
            assert span_rows(op, lambda s: s != home) == remote
        # Row totals per shard agree with the analyzer's attribution, and a
        # workload homed on one shard ranks that shard hottest.
        for shard_id, load in loads.items():
            assert load.rows == span_rows(
                "adjacency_rows", lambda s: s == shard_id
            ) + span_rows("feature_rows", lambda s: s == shard_id) + span_rows(
                "frontier_columns", lambda s: s == shard_id
            ) + span_rows("degree_rows", lambda s: s == shard_id)
        assert analyzer.shard_ranking()[0] == home


class TestCrossProcessStitching:
    def test_forked_server_spans_stitch_under_fetch_rounds(self, tmp_path):
        multiprocessing = pytest.importorskip("multiprocessing")
        from repro.transport import serve_shard

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("fork start method unavailable")
        store = make_store()
        trace_log = tmp_path / "server_spans.jsonl"
        processes = []
        addresses = []
        try:
            for shard in store.shards:
                ready = context.Event()
                port_out = context.Value("i", 0)
                process = context.Process(
                    target=serve_shard,
                    kwargs={
                        "shard": shard,
                        "ready": ready,
                        "port_out": port_out,
                        "trace_log": str(trace_log),
                    },
                    daemon=True,
                )
                process.start()
                processes.append(process)
                assert ready.wait(10.0)
                addresses.append(("127.0.0.1", port_out.value))
            reference = store.build_support_bundle(
                np.arange(10, dtype=np.int64), depth=2, home_shard=1
            )
            tracer = Tracer()
            transport = SocketTransport(addresses, timeout_seconds=10.0)
            store.use_transport(transport)
            store.use_tracer(tracer)
            root = tracer.new_trace()
            start = tracer.clock.now()
            with tracer.activate(root), transport:
                bundle = store.build_support_bundle(
                    np.arange(10, dtype=np.int64), depth=2, home_shard=1
                )
            tracer.emit("request", root, start, tracer.clock.now())
        finally:
            for process in processes:
                process.terminate()
                process.join(5.0)
        np.testing.assert_array_equal(
            bundle.support.node_ids, reference.support.node_ids
        )
        np.testing.assert_array_equal(
            bundle.local_features, reference.local_features
        )
        client_spans = tracer.spans()
        fetch_ids = {
            span.span_id: span
            for span in client_spans
            if span.name == "fetch.round"
        }
        server_spans = load_spans_jsonl(trace_log)
        assert server_spans, "forked servers logged no spans"
        client_ids = {span.span_id for span in client_spans}
        server_pids = set()
        for span in server_spans:
            # Every server-side span parents under the exact client
            # fetch.round that carried its ids over the wire.
            assert span.parent_id in fetch_ids
            parent = fetch_ids[span.parent_id]
            assert span.trace_id == parent.trace_id == root.trace_id
            assert span.name == f"server.{parent.attributes['op']}"
            assert span.span_id not in client_ids
            server_pids.add(span.attributes["pid"])
            assert span.attributes["shard"] in parent.attributes["shards"]
        # Three forked processes, pid-offset ids — no collisions anywhere.
        assert len(server_pids) == len(store.shards)
        assert len({span.span_id for span in server_spans}) == len(server_spans)
        # The stitched tree places server spans two levels under the root.
        merged = CriticalPathAnalyzer(client_spans).merged_with(server_spans)
        depths = {
            span.name: depth
            for depth, span in merged.tree(root.trace_id)
            if span.name.startswith("server.")
        }
        assert depths and all(depth == 2 for depth in depths.values())
