"""Rebalance advisor proposals, the auto-rebalancer actuator, and the
deterministic observe → alert → rebalance → recover loop end to end."""

import time

import numpy as np
import pytest

from repro.core import MonitorConfig, ServingConfig, ShardConfig
from repro.exceptions import ConfigurationError, ServingError
from repro.obs import (
    FIRING,
    PENDING,
    RESOLVED,
    SLO,
    Alert,
    AutoRebalancer,
    HealthMonitor,
    MemoryAlertSink,
    MetricsRegistry,
    RebalanceAdvisor,
    SLOEngine,
)
from repro.serving.clock import FakeClock
from repro.shard import GraphPartitioner, ShardRouter, ShardedPredictor
from repro.transport import OP_FEATURES, LocalTransport, ShardTransport


@pytest.fixture(scope="module")
def plan(tiny_dataset):
    config = ShardConfig(num_shards=4, strategy="degree_balanced")
    return GraphPartitioner(config).partition(tiny_dataset.graph)


class TestRebalanceAdvisor:
    def test_boosts_the_observed_hottest_shard_with_a_newer_version(self, plan):
        advisor = RebalanceAdvisor(base_replication=1, boost=1, hot_fraction=0.25)
        proposal = advisor.propose(plan, {0: 1.0, 1: 9.0, 2: 2.0, 3: 0.5})
        assert proposal is not None
        assert proposal.plan.version == plan.version + 1
        assert proposal.hot_shards == (1,)
        assert proposal.plan.replicas_of(1) == (0, 1)
        assert proposal.plan.replicas_of(0) == (0,)
        assert proposal.boosted == {1: (1, 2)}
        assert proposal.shed == {}
        # Ownership never moves: replica-only proposals are result-safe.
        np.testing.assert_array_equal(proposal.plan.owner, plan.owner)
        diff = proposal.diff()
        assert diff["hot_shards"] == [1]
        assert diff["boosted"]["1"] == {"from": 1, "to": 2}

    def test_unchanged_placement_returns_none(self, plan):
        advisor = RebalanceAdvisor(base_replication=1, boost=1, hot_fraction=0.25)
        boosted = advisor.propose(plan, {2: 5.0}).plan
        assert advisor.propose(boosted, {2: 5.0}) is None

    def test_sheds_replicas_when_the_heat_moves(self, plan):
        advisor = RebalanceAdvisor(base_replication=1, boost=1, hot_fraction=0.25)
        boosted = advisor.propose(plan, {2: 5.0}).plan
        moved = advisor.propose(boosted, {0: 9.0})
        assert moved.boosted == {0: (1, 2)}
        assert moved.shed == {2: (2, 1)}
        assert moved.plan.version == boosted.version + 1

    def test_missing_and_out_of_range_heat_counts_as_cold(self, plan):
        advisor = RebalanceAdvisor(base_replication=1, boost=1, hot_fraction=0.25)
        proposal = advisor.propose(plan, {3: 1.0, 99: 100.0})
        assert proposal.hot_shards == (3,)

    def test_tied_heat_breaks_to_the_lower_shard_id(self, plan):
        advisor = RebalanceAdvisor(base_replication=1, boost=1, hot_fraction=0.25)
        assert advisor.propose(plan, {}).hot_shards == (0,)

    def test_max_rails_clamps_proposals(self, plan):
        advisor = RebalanceAdvisor(
            base_replication=1, boost=3, hot_fraction=0.25, max_rails=2
        )
        proposal = advisor.propose(plan, {1: 5.0})
        assert proposal.plan.replicas_of(1) == (0, 1)
        assert proposal.plan.max_replication == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RebalanceAdvisor(base_replication=0)
        with pytest.raises(ConfigurationError):
            RebalanceAdvisor(boost=-1)
        with pytest.raises(ConfigurationError):
            RebalanceAdvisor(hot_fraction=0.0)
        with pytest.raises(ConfigurationError):
            RebalanceAdvisor(base_replication=2, max_rails=1)


# ---------------------------------------------------------------------- #
# AutoRebalancer over stubs
# ---------------------------------------------------------------------- #
class StubMonitor:
    def __init__(self, heat=None):
        self.heat = heat if heat is not None else {}

    def shard_heat(self):
        return dict(self.heat)


class StubRouter:
    def __init__(self, plan, *, fail_install=False):
        self.predictor = type("P", (), {"store": type("S", (), {"plan": plan})()})()
        self.registry = MetricsRegistry()
        self.fail_install = fail_install
        self.installed = []

    def install_plan(self, predictor):
        if self.fail_install:
            raise ServingError("refused")
        self.installed.append(predictor)
        self.predictor.store.plan = predictor.plan  # mirror the real router
        return predictor.plan.version


class PreparedStub:
    def __init__(self, plan):
        self.plan = plan


def _firing(slo="latency"):
    return Alert(slo=slo, state=FIRING, at=0.0, burn_fast=5.0, burn_slow=5.0)


def make_auto(plan, *, heat=None, clock=None, **kwargs):
    router = StubRouter(plan)
    auto = AutoRebalancer(
        router,
        RebalanceAdvisor(base_replication=1, boost=1, hot_fraction=0.25),
        PreparedStub,
        monitor=StubMonitor(heat),
        clock=clock if clock is not None else FakeClock(),
        **kwargs,
    )
    return router, auto


class TestAutoRebalancer:
    def test_firing_alert_installs_a_boosted_plan(self, plan):
        router, auto = make_auto(plan, heat={1: 9.0})
        auto.notify(_firing())
        assert auto.installs == 1
        (predictor,) = router.installed
        assert predictor.plan.version == plan.version + 1
        assert predictor.plan.replicas_of(1) == (0, 1)
        assert router.registry.counter("repro_rebalance_installs_total").value == 1
        assert router.registry.gauge("repro_rebalance_last_version").value == 1.0
        assert auto.history[-1]["reason"] == "slo:latency"

    def test_non_firing_transitions_are_ignored(self, plan):
        router, auto = make_auto(plan, heat={1: 9.0})
        for state in (PENDING, RESOLVED):
            auto.notify(
                Alert(slo="latency", state=state, at=0.0, burn_fast=0, burn_slow=0)
            )
        assert auto.installs == 0 and router.installed == []

    def test_watch_filters_unrelated_slos(self, plan):
        _, auto = make_auto(plan, heat={1: 9.0}, watch=("latency",))
        auto.notify(_firing(slo="error_rate"))
        assert auto.installs == 0
        auto.notify(_firing(slo="latency"))
        assert auto.installs == 1

    def test_cooldown_skips_reinstalls(self, plan):
        clock = FakeClock()
        _, auto = make_auto(
            plan, heat={1: 9.0}, clock=clock, cooldown_seconds=100.0
        )
        auto.notify(_firing())
        clock.advance(50.0)
        # New hottest shard, but the cooldown has not elapsed.
        auto.monitor.heat = {2: 9.0}
        auto.notify(_firing())
        assert auto.installs == 1
        assert auto.skips == {"cooldown": 1}
        clock.advance(50.0)
        auto.notify(_firing())
        assert auto.installs == 2

    def test_skips_without_heat_or_without_changes(self, plan):
        _, auto = make_auto(plan, heat={}, cooldown_seconds=0.0)
        assert auto.rebalance_now() is None
        assert auto.skips == {"no_heat": 1}
        auto.monitor.heat = {1: 9.0}
        auto.rebalance_now()
        # Same heat again: the advisor proposes the same replica map.
        assert auto.rebalance_now() is None
        assert auto.skips == {"no_heat": 1, "no_change": 1}

    def test_refused_install_is_tallied_not_raised(self, plan):
        router, auto = make_auto(plan, heat={1: 9.0})
        router.fail_install = True
        assert auto.rebalance_now() is None
        assert auto.skips == {"install_failed": 1}
        assert auto.installs == 0
        description = auto.describe()
        assert description["installs"] == 0
        assert description["skips"] == {"install_failed": 1}

    def test_negative_cooldown_rejected(self, plan):
        with pytest.raises(ConfigurationError):
            make_auto(plan, cooldown_seconds=-1.0)


# ---------------------------------------------------------------------- #
# The whole loop, end to end
# ---------------------------------------------------------------------- #
class ShardDelayTransport(ShardTransport):
    """Injects a fixed per-round service delay on configured shards."""

    def __init__(self, inner, delays, *, ops=(OP_FEATURES,)):
        super().__init__()
        self.inner = inner
        self.delays = {int(s): float(d) for s, d in delays.items()}
        self.ops = set(ops)

    @property
    def num_shards(self):
        return self.inner.num_shards

    def fetch(self, op, requests):
        if op in self.ops:
            delay = max(
                (self.delays.get(int(s), 0.0) for s, _ in requests), default=0.0
            )
            if delay > 0.0:
                time.sleep(delay)
        return self.inner.fetch(op, requests)

    def close(self):
        self.inner.close()


HOT_DELAY = 0.05
SLO_THRESHOLD = 0.025


class TestAutoRebalanceEndToEnd:
    """Skewed workload → burn alert fires → replica-boosted plan rolls out
    through install_plan → windowed p95 recovers → alert resolves.

    The control plane (monitor windows, burn rates, alert lifecycle,
    cooldown) runs on a FakeClock driven inline, so every transition
    happens at an exact virtual instant; the data plane serves for real,
    with an injected per-shard delay that puts phase-one latency above the
    SLO threshold by construction.
    """

    def test_alert_driven_rebalance_restores_the_slo(
        self, trained_nai, tiny_dataset
    ):
        config = trained_nai.inference_config(
            t_min=1,
            t_max=3,
            distance_threshold=trained_nai.suggest_distance_threshold(0.5),
            batch_size=32,
        )
        unsharded = trained_nai.build_predictor(policy="distance", config=config)
        unsharded.prepare(tiny_dataset.graph, tiny_dataset.features)
        shard_config = ShardConfig(num_shards=4, strategy="degree_balanced")
        plan0 = GraphPartitioner(shard_config).partition(tiny_dataset.graph)
        hot = int(np.argmax(plan0.shard_sizes()))

        def build(plan):
            sharded = ShardedPredictor.from_predictor(unsharded).prepare(
                tiny_dataset.graph, tiny_dataset.features, shard_config, plan=plan
            )
            rails = [
                ShardDelayTransport(
                    LocalTransport(sharded.store.shards), {hot: HOT_DELAY}
                ),
                LocalTransport(sharded.store.shards),
            ][: plan.max_replication]
            sharded.store.use_replicated_transport(rails, route_by="latency")
            return sharded

        # Zipf-ish skew: 80% of batches target the hot shard's owned nodes.
        rng = np.random.default_rng(7)
        batches = [
            rng.choice(
                plan0.owned[
                    hot if rng.random() < 0.8 else int(rng.integers(0, 4))
                ],
                size=8,
                replace=False,
            )
            for _ in range(140)
        ]

        fake = FakeClock()
        registry = MetricsRegistry()
        router = ShardRouter(
            build(plan0),
            ServingConfig(
                num_workers=2, max_batch_size=32, max_wait_ms=0.5, cache_capacity=8
            ),
            registry=registry,
        )
        monitor = HealthMonitor(
            router,
            MonitorConfig(window_seconds=60.0, num_buckets=12, cadence_seconds=1.0),
            clock=fake,
            registry=registry,
        )
        sink = MemoryAlertSink()
        engine = SLOEngine(
            [
                SLO(
                    name="latency",
                    objective="latency",
                    threshold_seconds=SLO_THRESHOLD,
                    budget_fraction=0.05,
                    fast_window_seconds=60.0,
                    slow_window_seconds=3600.0,
                    for_seconds=0.0,
                    resolve_after_seconds=30.0,
                    min_events=8,
                )
            ],
            sinks=[sink],
            clock=fake,
        )
        auto = AutoRebalancer(
            router,
            RebalanceAdvisor(
                base_replication=1, boost=1, hot_fraction=0.25, max_rails=2
            ),
            build,
            monitor=monitor,
            cooldown_seconds=10_000.0,
            clock=fake,
        )
        engine.add_sink(auto)

        responses = []
        congested_p95 = 0.0
        with router:
            for batch in batches:
                responses.append(
                    router.submit(batch, timeout=60.0).result(timeout=60.0)
                )
                fake.advance(1.0)
                health = monitor.tick()
                if auto.installs == 0:
                    congested_p95 = max(congested_p95, health.latency.p95)
                engine.tick(health)
            rollout = router.rollout_state()  # before retiring drains it
            router.finish_rollout(timeout=60.0)
            final = monitor.tick()

        # The alert fired and the rebalancer answered with exactly one
        # versioned install: the hot shard gained the spare rail.
        assert sink.states("latency") == [PENDING, FIRING, RESOLVED]
        assert auto.installs == 1
        assert router.plan_version == plan0.version + 1
        (install,) = (h for h in auto.history if "version" in h)
        assert install["diff"]["boosted"] == {str(hot): {"from": 1, "to": 2}}
        assert registry.gauge("repro_rebalance_last_version").value == 1.0

        # Nothing was lost across the rollout, and the congested window
        # breached the SLO while the final window meets it.
        assert sum(row["requests_failed"] for row in rollout) == 0
        assert sum(row["requests_routed"] for row in rollout) == len(batches)
        assert congested_p95 > SLO_THRESHOLD
        assert final.latency.p95 < SLO_THRESHOLD

        # Monitoring and rebalancing never touched an answer: every routed
        # response is bit-identical to the unsharded oracle.
        for batch, response in zip(batches, responses):
            oracle = unsharded.predict(batch)
            np.testing.assert_array_equal(response.predictions, oracle.predictions)
            np.testing.assert_array_equal(response.depths, oracle.depths)
        assert {r.plan_version for r in responses} == {0, 1}
