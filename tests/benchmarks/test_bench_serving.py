"""Smoke test for the serving benchmark.

Runs ``benchmarks/bench_serving.py --quick`` end to end (tiny workload,
deterministic seed) so tier-1 catches regressions in the serving harness and
in the served-vs-sequential equivalences it asserts.  The real perf numbers
are produced by the full run, which writes ``BENCH_serving.json``.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.mark.serving_bench
def test_quick_bench_runs_and_reports(tmp_path):
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_serving
    finally:
        sys.path.remove(str(BENCH_DIR))

    output = tmp_path / "bench.json"
    assert bench_serving.main(["--quick", "--output", str(output)]) == 0

    report = json.loads(output.read_text())
    assert report["quick"] is True
    suites = {record["suite"] for record in report["suites"]}
    assert suites == {"streaming", "online", "scaling", "adaptive"}
    for record in report["suites"]:
        if record["suite"] == "streaming":
            # The suites raise on divergence; double-check the record too.
            assert record["predictions_equal"]
            assert record["depths_equal"]
            assert record["macs_equal"]
            assert record["cache_hit_rate"] > 0
            assert record["sampling_time_reduction"] > 0
        elif record["suite"] == "online":
            assert record["predictions_equal"]
            assert record["depths_equal"]
            assert record["mac_reduction"] > 0
            assert record["throughput_speedup"] > 1
    aggregate = report["aggregate"]
    assert aggregate["all_predictions_equal"]
    assert aggregate["all_depths_equal"]
    assert aggregate["streaming_macs_equal"]
    assert aggregate["min_cache_hit_rate"] > 0
    assert aggregate["adaptive_policies_bit_identical"]
    assert aggregate["adaptive_overload_speedup"] > 1
    assert aggregate["adaptive_p95_within_slo"]
