"""Smoke test for the sharding benchmark.

Runs ``benchmarks/bench_sharding.py --quick`` end to end so tier-1 catches
regressions in the sharded-vs-unsharded bit-equivalence assertions, the
per-shard memory bound and the serving-cache satellites.  The real numbers
come from the full run, which writes ``BENCH_sharding.json``.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.mark.sharding_bench
def test_quick_bench_runs_and_reports(tmp_path):
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_sharding
    finally:
        sys.path.remove(str(BENCH_DIR))

    output = tmp_path / "bench.json"
    assert bench_sharding.main(["--quick", "--output", str(output)]) == 0

    report = json.loads(output.read_text())
    assert report["quick"] is True
    suites = {record["suite"] for record in report["suites"]}
    assert suites == {
        "equivalence_memory",
        "routed_serving",
        "worker_backends",
        "subsystem_caches",
    }
    equivalence = [
        r for r in report["suites"] if r["suite"] == "equivalence_memory"
    ]
    # 3 shard counts x 2 strategies per dataset, every one bit-identical.
    assert len(equivalence) == 6
    for record in equivalence:
        assert record["predictions_equal"]
        assert record["depths_equal"]
        assert record["macs_equal"]
        assert record["per_shard_state_ratio"] <= record["state_ratio_bound"]
    for record in report["suites"]:
        if record["suite"] == "routed_serving":
            assert record["predictions_equal"]
        elif record["suite"] == "worker_backends":
            assert set(record["wall_seconds"]) == {
                "1_thread", "4_threads", "4_processes"
            }
        elif record["suite"] == "subsystem_caches":
            assert record["predictions_equal"]
            assert record["result_cache_hit_rate"] > 0
            assert record["replayed_macs"] > 0
    aggregate = report["aggregate"]
    assert aggregate["all_predictions_equal"]
    assert aggregate["all_macs_equal"]
    # The x4 sharding must hold well under half the unsharded state.
    assert aggregate["max_per_shard_state_ratio"]["4"] < 0.55
