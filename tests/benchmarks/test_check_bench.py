"""Tests for the CI bench-regression gate (``benchmarks/check_bench.py``).

Includes the required negative tests: a seeded equivalence mismatch — a
flipped bit-identical flag or a drifted MAC total — must fail the gate,
while timing drift must not.
"""

import copy
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
REPO_ROOT = BENCH_DIR.parent


@pytest.fixture(scope="module")
def check_bench():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import check_bench as module
    finally:
        sys.path.remove(str(BENCH_DIR))
    return module


@pytest.fixture()
def baseline_report():
    """A small but realistic report shaped like BENCH_serving.json."""
    return {
        "benchmark": "bench_serving",
        "quick": True,
        "profile": {"dataset_scale": 0.3, "depth": 3, "seed": 0},
        "workload": {"tick_size": 64, "num_ticks": 12},
        "suites": [
            {
                "suite": "streaming",
                "predictions_equal": True,
                "depths_equal": True,
                "macs_equal": True,
                "served_wall_seconds": 1.25,
                "sequential_macs": 123456.0,
                "served_macs": 123456.0,
            },
            {
                "suite": "adaptive",
                "all_policies_bit_identical": True,
                "virtual_ramp": {"queue_pressure_p95_within_slo": True},
            },
        ],
        "aggregate": {"all_predictions_equal": True, "computed_macs": 123456.0},
    }


def write_pair(tmp_path, baseline, fresh):
    baseline_dir = tmp_path / "baseline"
    fresh_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    fresh_dir.mkdir()
    (baseline_dir / "BENCH_serving.json").write_text(json.dumps(baseline))
    (fresh_dir / "BENCH_serving.json").write_text(json.dumps(fresh))
    return baseline_dir, fresh_dir


def run_gate(check_bench, baseline_dir, fresh_dir):
    return check_bench.main(
        ["--fresh-dir", str(fresh_dir), "--baseline-dir", str(baseline_dir)]
    )


class TestGatePasses:
    def test_identical_reports_pass(self, check_bench, baseline_report, tmp_path):
        baseline_dir, fresh_dir = write_pair(
            tmp_path, baseline_report, copy.deepcopy(baseline_report)
        )
        assert run_gate(check_bench, baseline_dir, fresh_dir) == 0

    def test_timing_drift_is_ignored(self, check_bench, baseline_report, tmp_path):
        fresh = copy.deepcopy(baseline_report)
        fresh["suites"][0]["served_wall_seconds"] = 99.0  # machines differ
        baseline_dir, fresh_dir = write_pair(tmp_path, baseline_report, fresh)
        assert run_gate(check_bench, baseline_dir, fresh_dir) == 0

    def test_different_workload_skips_mac_comparison(
        self, check_bench, baseline_report, tmp_path
    ):
        # A full-run baseline vs a quick fresh run: MAC totals are workload-
        # dependent, so only the flags are gated.
        fresh = copy.deepcopy(baseline_report)
        fresh["workload"] = {"tick_size": 100, "num_ticks": 40}
        fresh["suites"][0]["served_macs"] = 999.0
        fresh["suites"][0]["sequential_macs"] = 999.0
        baseline_dir, fresh_dir = write_pair(tmp_path, baseline_report, fresh)
        assert run_gate(check_bench, baseline_dir, fresh_dir) == 0

    def test_real_committed_baselines_are_self_consistent(
        self, check_bench, tmp_path
    ):
        """The gate must pass when fed the repository's own artifacts."""
        fresh_dir = tmp_path / "fresh"
        fresh_dir.mkdir()
        for artifact in REPO_ROOT.glob("BENCH_*.json"):
            (fresh_dir / artifact.name).write_text(artifact.read_text())
        assert run_gate(check_bench, REPO_ROOT, fresh_dir) == 0


class TestGateFails:
    def test_seeded_flag_mismatch_fails(self, check_bench, baseline_report, tmp_path):
        fresh = copy.deepcopy(baseline_report)
        fresh["suites"][0]["macs_equal"] = False  # the seeded mismatch
        baseline_dir, fresh_dir = write_pair(tmp_path, baseline_report, fresh)
        assert run_gate(check_bench, baseline_dir, fresh_dir) == 1

    def test_seeded_nested_flag_mismatch_fails(
        self, check_bench, baseline_report, tmp_path
    ):
        fresh = copy.deepcopy(baseline_report)
        fresh["suites"][1]["virtual_ramp"]["queue_pressure_p95_within_slo"] = False
        baseline_dir, fresh_dir = write_pair(tmp_path, baseline_report, fresh)
        assert run_gate(check_bench, baseline_dir, fresh_dir) == 1

    def test_seeded_mac_drift_fails_on_matching_workload(
        self, check_bench, baseline_report, tmp_path
    ):
        fresh = copy.deepcopy(baseline_report)
        fresh["suites"][0]["served_macs"] = 123457.0  # one MAC off
        baseline_dir, fresh_dir = write_pair(tmp_path, baseline_report, fresh)
        assert run_gate(check_bench, baseline_dir, fresh_dir) == 1

    def test_corrupt_baseline_fails(self, check_bench, baseline_report, tmp_path):
        bad_baseline = copy.deepcopy(baseline_report)
        bad_baseline["aggregate"]["all_predictions_equal"] = False
        baseline_dir, fresh_dir = write_pair(
            tmp_path, bad_baseline, copy.deepcopy(baseline_report)
        )
        assert run_gate(check_bench, baseline_dir, fresh_dir) == 1

    def test_missing_fresh_report_fails(self, check_bench, baseline_report, tmp_path):
        baseline_dir = tmp_path / "baseline"
        empty_fresh = tmp_path / "fresh"
        baseline_dir.mkdir()
        empty_fresh.mkdir()
        (baseline_dir / "BENCH_serving.json").write_text(
            json.dumps(baseline_report)
        )
        assert run_gate(check_bench, baseline_dir, empty_fresh) == 1

    def test_flagless_fresh_report_fails(self, check_bench, baseline_report, tmp_path):
        baseline_dir, fresh_dir = write_pair(
            tmp_path, baseline_report, {"quick": True, "suites": []}
        )
        assert run_gate(check_bench, baseline_dir, fresh_dir) == 1
