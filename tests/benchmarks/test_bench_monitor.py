"""Smoke test for the monitoring benchmark.

Runs ``benchmarks/bench_monitor.py --quick`` end to end so tier-1 catches
regressions in the monitor-overhead gate, the monitored-vs-bare
equivalence assertions and the alert → rebalance → recovery loop.  Serving
threads and real sleeps are involved, so the run is guarded by the same
watchdog style the transport suite uses.  The real numbers come from the
full run, which writes ``BENCH_monitor.json``.
"""

import faulthandler
import json
import os
import sys
import threading
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
#: The bench runs the overhead workload ten times (two modes, five
#: repeats) plus the auto-rebalance loop twice — the unmonitored pass
#: keeps paying the injected 50ms hot-shard delay, so it dominates.
#: REPRO_WATCHDOG_SECONDS scales the budget for slow CI runners.
WATCHDOG_SECONDS = 300.0 * max(
    1.0, float(os.environ.get("REPRO_WATCHDOG_SECONDS", "90")) / 90.0
)


def _dump_and_abort() -> None:  # pragma: no cover - only fires on a hang
    sys.stderr.write(
        f"\n*** monitor-bench watchdog fired after {WATCHDOG_SECONDS}s ***\n"
    )
    faulthandler.dump_traceback(all_threads=True)
    os._exit(3)


@pytest.fixture(autouse=True)
def bench_watchdog():
    timer = threading.Timer(WATCHDOG_SECONDS, _dump_and_abort)
    timer.daemon = True
    timer.start()
    yield
    timer.cancel()


@pytest.mark.monitor_bench
def test_quick_bench_runs_and_reports(tmp_path):
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_monitor
    finally:
        sys.path.remove(str(BENCH_DIR))

    output = tmp_path / "bench.json"
    assert bench_monitor.main(["--quick", "--output", str(output)]) == 0

    report = json.loads(output.read_text())
    assert report["quick"] is True
    suites = {record["suite"] for record in report["suites"]}
    assert suites == {"monitor_overhead", "auto_rebalance_loop"}

    (overhead,) = [
        r for r in report["suites"] if r["suite"] == "monitor_overhead"
    ]
    assert overhead["predictions_identical"]
    assert overhead["depths_identical"]
    assert overhead["macs_identical"]
    assert overhead["monitor_overhead_within_slo"]
    assert overhead["monitored_throughput_ratio"] >= overhead["overhead_slo"]
    assert overhead["monitor_ticks"] > 1  # the monitored mode really ticked
    assert overhead["run_macs"] > 0

    (loop,) = [
        r for r in report["suites"] if r["suite"] == "auto_rebalance_loop"
    ]
    assert loop["alert_states"] == ["pending", "firing", "resolved"]
    assert loop["installs"] == 1
    assert loop["plan_versions_served"] == [0, 1]
    hot = str(loop["hot_shard"])
    assert loop["boosted_diff"]["boosted"][hot] == {"from": 1, "to": 2}
    assert loop["failed_requests"] == 0
    # The congested window breached the SLO; the rebalanced one meets it.
    assert loop["congested_p95_seconds"] > loop["slo_threshold_seconds"]
    assert loop["recovered_p95_seconds"] < loop["slo_threshold_seconds"]
    assert loop["p95_recovered_within_slo"]
    assert loop["predictions_identical"]
    assert loop["depths_identical"]
    assert loop["macs_identical"]

    aggregate = report["aggregate"]
    assert aggregate["all_predictions_identical"]
    assert aggregate["all_depths_identical"]
    assert aggregate["all_macs_identical"]
    assert aggregate["monitor_overhead_within_slo"]
    assert aggregate["all_alerts_resolved"]
    assert aggregate["all_p95_recovered_within_slo"]
