"""Smoke test for the adaptive batching-controller bench suite.

Runs ``benchmarks/bench_serving.py --quick --suites adaptive`` end to end so
tier-1 (and the CI quick-bench job) exercises the controller bench on its
own marker: the virtual-time static-vs-adaptive ramp assertions and the
bit-identical policy equivalences, without paying for the other suites.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.mark.adaptive_bench
def test_quick_adaptive_suite_runs_and_asserts(tmp_path):
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_serving
    finally:
        sys.path.remove(str(BENCH_DIR))

    output = tmp_path / "bench.json"
    assert (
        bench_serving.main(
            ["--quick", "--suites", "adaptive", "--output", str(output)]
        )
        == 0
    )

    report = json.loads(output.read_text())
    records = [r for r in report["suites"] if r["suite"] == "adaptive"]
    assert len(records) == 1
    record = records[0]
    # Every policy reproduced the sequential results bit-for-bit.
    assert record["all_policies_bit_identical"]
    assert set(record["policies"]) == {
        "static",
        "queue_pressure",
        "marginal_latency",
    }
    for policy in record["policies"].values():
        assert policy["predictions_equal"]
        assert policy["depths_equal"]
        assert policy["macs_equal"]
        assert policy["served_macs"] == pytest.approx(record["sequential_macs"])
    # The adaptive policy actually adapted on the real server.
    assert record["policies"]["queue_pressure"]["controller_adjustments"] > 0
    assert record["policies"]["static"]["controller_adjustments"] == 0
    # Virtual-time ramp (dataset-independent, computed once per run):
    # exact, machine-independent assertions.
    ramp = report["virtual_ramp"]
    assert ramp["queue_pressure_beats_static"]
    assert ramp["queue_pressure_p95_within_slo"]
    assert ramp["overload_speedup"] > 1
    assert set(ramp["curves"]) == {"static", "queue_pressure", "marginal_latency"}
    for curve in ramp["curves"].values():
        assert len(curve) == len(bench_serving.VIRTUAL_BURST_GAPS)
