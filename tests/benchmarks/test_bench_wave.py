"""Smoke test for the wave benchmark.

Runs ``benchmarks/bench_wave.py --quick`` end to end so tier-1 catches
regressions in the wave bit-equivalence assertions and the
MACs-per-request shape.  The run is deterministic (no serving threads —
the bench drives ``execute_wave`` directly), but training the quick
context takes real time, so the watchdog guard stays.  The real numbers
come from the full run, which writes ``BENCH_wave.json``.
"""

import faulthandler
import json
import os
import sys
import threading
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
WATCHDOG_SECONDS = 300.0 * max(
    1.0, float(os.environ.get("REPRO_WATCHDOG_SECONDS", "90")) / 90.0
)


def _dump_and_abort() -> None:  # pragma: no cover - only fires on a hang
    sys.stderr.write(
        f"\n*** wave-bench watchdog fired after {WATCHDOG_SECONDS}s ***\n"
    )
    faulthandler.dump_traceback(all_threads=True)
    os._exit(3)


@pytest.fixture(autouse=True)
def bench_watchdog():
    timer = threading.Timer(WATCHDOG_SECONDS, _dump_and_abort)
    timer.daemon = True
    timer.start()
    yield
    timer.cancel()


@pytest.mark.wave_bench
def test_quick_bench_runs_and_reports(tmp_path):
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_wave
    finally:
        sys.path.remove(str(BENCH_DIR))

    output = tmp_path / "bench.json"
    assert bench_wave.main(["--quick", "--output", str(output)]) == 0

    report = json.loads(output.read_text())
    assert report["quick"] is True
    suites = {record["suite"]: record for record in report["suites"]}
    assert set(suites) == {
        f"wave_width_{width}" for width in (1, 2, 4, 8)
    }
    for record in suites.values():
        assert record["predictions_identical"]
        assert record["depths_identical"]
        assert record["attribution_reconciles_identical"]
        assert record["macs_per_request"] > 0
    # Width 1 is a degenerate wave: nothing fuses, nothing is shared.
    assert suites["wave_width_1"]["shared_row_fraction"] == 0.0
    assert suites["wave_width_8"]["shared_row_fraction"] > 0.0

    aggregate = report["aggregate"]
    assert aggregate["all_predictions_identical"]
    assert aggregate["all_depths_identical"]
    assert aggregate["attribution_reconciles_identical"]
    assert aggregate["macs_per_request_monotone_identical"]
    # The full-run acceptance floor is 1.5x at width 8; the quick context
    # is smaller but the Zipfian overlap dominates either way, so the
    # same floor holds with margin.
    assert aggregate["macs_reduction_at_max_width"] >= 1.5

    # The committed full-run artifact must satisfy the same gate
    # (check_bench.py enforces this in CI; assert here too so a stale
    # artifact fails fast in tier-1).
    committed = json.loads(
        (BENCH_DIR.parent / "BENCH_wave.json").read_text()
    )
    assert committed["aggregate"]["macs_per_request_monotone_identical"]
    assert committed["aggregate"]["macs_reduction_at_max_width"] >= 1.5
