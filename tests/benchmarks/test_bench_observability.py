"""Smoke test for the observability benchmark.

Runs ``benchmarks/bench_observability.py --quick`` end to end so tier-1
catches regressions in the tracing overhead gate, the traced-vs-untraced
equivalence assertions and the critical-path analysis surface.  Serving
threads are involved, so the run is guarded by the same watchdog style the
transport suite uses.  The real numbers come from the full run, which
writes ``BENCH_observability.json``.
"""

import faulthandler
import json
import os
import sys
import threading
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
#: The bench runs the streaming workload four times (two modes, two
#: repeats) plus a routed traced/untraced pair; REPRO_WATCHDOG_SECONDS
#: scales the budget for slow CI runners.
WATCHDOG_SECONDS = 300.0 * max(
    1.0, float(os.environ.get("REPRO_WATCHDOG_SECONDS", "90")) / 90.0
)


def _dump_and_abort() -> None:  # pragma: no cover - only fires on a hang
    sys.stderr.write(
        f"\n*** observability-bench watchdog fired after {WATCHDOG_SECONDS}s ***\n"
    )
    faulthandler.dump_traceback(all_threads=True)
    os._exit(3)


@pytest.fixture(autouse=True)
def bench_watchdog():
    timer = threading.Timer(WATCHDOG_SECONDS, _dump_and_abort)
    timer.daemon = True
    timer.start()
    yield
    timer.cancel()


@pytest.mark.obs_bench
def test_quick_bench_runs_and_reports(tmp_path):
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_observability
    finally:
        sys.path.remove(str(BENCH_DIR))

    output = tmp_path / "bench.json"
    trace = tmp_path / "trace.json"
    assert bench_observability.main(
        ["--quick", "--output", str(output), "--trace-output", str(trace)]
    ) == 0

    report = json.loads(output.read_text())
    assert report["quick"] is True
    suites = {record["suite"] for record in report["suites"]}
    assert suites == {"server_overhead", "routed_tracing"}

    (overhead,) = [
        r for r in report["suites"] if r["suite"] == "server_overhead"
    ]
    assert overhead["predictions_identical"]
    assert overhead["depths_identical"]
    assert overhead["macs_identical"]
    assert overhead["tracing_overhead_within_slo"]
    assert overhead["traced_throughput_ratio"] >= overhead["overhead_slo"]
    assert overhead["sequential_macs"] > 0
    # Root + queue wait per tick, batch spans on the primaries.
    assert overhead["spans_per_request"] >= 2.0

    (routed,) = [r for r in report["suites"] if r["suite"] == "routed_tracing"]
    assert routed["predictions_identical"]
    assert routed["depths_identical"]
    assert routed["route_span_count_equal"]
    assert routed["span_counts"]["route"] == routed["requests"]
    assert routed["span_counts"]["fetch.round"] > 0
    # One decomposition per route root; sub-requests hang under it.
    assert routed["request_breakdowns"] == routed["requests"]
    assert routed["breakdown_totals"]["total"] > 0
    assert set(routed["shard_rows"]) == {"0", "1"}
    assert routed["shard_ranking"][0] == int(
        max(routed["shard_rows"], key=routed["shard_rows"].get)
    )
    assert routed["metrics_exported"] > 10

    # The sample Chrome trace is a valid trace-event document.
    doc = json.loads(trace.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert any(event["ph"] == "X" for event in doc["traceEvents"])

    aggregate = report["aggregate"]
    assert aggregate["all_predictions_identical"]
    assert aggregate["all_depths_identical"]
    assert aggregate["all_macs_identical"]
    assert aggregate["tracing_overhead_within_slo"]
    assert aggregate["route_span_counts_equal"]
    assert aggregate["min_attributed_fraction"] > 0.5
