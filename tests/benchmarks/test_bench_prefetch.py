"""Smoke test for the prefetch benchmark.

Runs ``benchmarks/bench_prefetch.py --quick`` end to end so tier-1 catches
regressions in the overlap bit-equivalence assertions and the tiered-store
residency cap.  Serving threads and injected latency are involved, so the
run is guarded by the same watchdog style the transport bench uses.  The
real numbers come from the full run, which writes ``BENCH_prefetch.json``.
"""

import faulthandler
import json
import os
import sys
import threading
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
WATCHDOG_SECONDS = 300.0 * max(
    1.0, float(os.environ.get("REPRO_WATCHDOG_SECONDS", "90")) / 90.0
)


def _dump_and_abort() -> None:  # pragma: no cover - only fires on a hang
    sys.stderr.write(
        f"\n*** prefetch-bench watchdog fired after {WATCHDOG_SECONDS}s ***\n"
    )
    faulthandler.dump_traceback(all_threads=True)
    os._exit(3)


@pytest.fixture(autouse=True)
def bench_watchdog():
    timer = threading.Timer(WATCHDOG_SECONDS, _dump_and_abort)
    timer.daemon = True
    timer.start()
    yield
    timer.cancel()


@pytest.mark.prefetch_bench
def test_quick_bench_runs_and_reports(tmp_path):
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_prefetch
    finally:
        sys.path.remove(str(BENCH_DIR))

    output = tmp_path / "bench.json"
    assert bench_prefetch.main(["--quick", "--output", str(output)]) == 0

    report = json.loads(output.read_text())
    assert report["quick"] is True
    suites = {record["suite"]: record for record in report["suites"]}
    assert set(suites) == {"prefetch_overlap", "tiered_memory"}

    overlap = suites["prefetch_overlap"]
    assert overlap["predictions_equal"]
    assert overlap["depths_equal"]
    assert overlap["macs_equal"]
    assert overlap["injected_rtt_seconds"] == pytest.approx(0.005)
    assert overlap["prefetched"]["stats"]["prefetch_issued"] == (
        overlap["num_batches"]
    )
    assert overlap["prefetched"]["stats"]["prefetch_overlap_seconds"] > 0
    # The full-run acceptance floor is 1.3x; the quick run is small enough
    # for scheduling noise, so gate it defensively lower — a pipeline that
    # stopped overlapping at all lands near (or below) 1.0.
    assert overlap["throughput_speedup"] >= 1.15

    tiered = suites["tiered_memory"]
    assert tiered["matrix_exceeds_budget"]
    assert tiered["peak_resident_within_slo"]
    assert tiered["tiered_predictions_identical"]
    assert tiered["tiered_depths_identical"]
    assert tiered["tiered_macs_equal"]
    assert tiered["peak_resident_nbytes"] <= tiered["budget_bytes"]

    aggregate = report["aggregate"]
    assert aggregate["all_predictions_equal"]
    assert aggregate["all_macs_equal"]
    assert aggregate["peak_resident_within_slo"]
