"""Smoke test for the hot-path microbenchmark.

Runs ``benchmarks/bench_hot_path.py --quick`` end to end (tiny workload,
deterministic seed) so tier-1 catches regressions in the bench harness and in
the fused/reference engine equivalence it asserts.  The real perf numbers are
produced by the full run, which writes ``BENCH_hot_path.json``.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.mark.hot_path_bench
def test_quick_bench_runs_and_reports(tmp_path):
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_hot_path
    finally:
        sys.path.remove(str(BENCH_DIR))

    output = tmp_path / "bench.json"
    assert bench_hot_path.main(["--quick", "--output", str(output)]) == 0

    report = json.loads(output.read_text())
    assert report["quick"] is True
    assert len(report["workloads"]) == 3
    for record in report["workloads"]:
        for variant in record["variants"].values():
            # run_workload raises on divergence; double-check the record too.
            assert variant["predictions_equal"]
            assert variant["depths_equal"]
            assert variant["macs_equal"]
            assert variant["hot_path_speedup"] > 0
    aggregate = report["aggregate"]
    assert aggregate["fused_float32"]["all_outputs_equal"]
