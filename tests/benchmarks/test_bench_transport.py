"""Smoke test for the transport benchmark.

Runs ``benchmarks/bench_transport.py --quick`` end to end so tier-1 catches
regressions in the cross-backend bit-equivalence assertions and the
pipelining accounting.  Real sockets are involved, so the run is guarded by
the same watchdog the transport suite uses: a hang dumps stacks and aborts
instead of stalling CI.  The real numbers come from the full run, which
writes ``BENCH_transport.json``.
"""

import faulthandler
import json
import os
import sys
import threading
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
#: The bench run covers several socket deployments, so its budget is the
#: transport suite's default times a few; REPRO_WATCHDOG_SECONDS scales it
#: for slow CI runners (same env var the transport-suite watchdog honors).
WATCHDOG_SECONDS = 300.0 * max(
    1.0, float(os.environ.get("REPRO_WATCHDOG_SECONDS", "90")) / 90.0
)


def _dump_and_abort() -> None:  # pragma: no cover - only fires on a hang
    sys.stderr.write(
        f"\n*** transport-bench watchdog fired after {WATCHDOG_SECONDS}s ***\n"
    )
    faulthandler.dump_traceback(all_threads=True)
    os._exit(3)


@pytest.fixture(autouse=True)
def bench_watchdog():
    timer = threading.Timer(WATCHDOG_SECONDS, _dump_and_abort)
    timer.daemon = True
    timer.start()
    yield
    timer.cancel()


@pytest.mark.transport_bench
def test_quick_bench_runs_and_reports(tmp_path):
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_transport
    finally:
        sys.path.remove(str(BENCH_DIR))

    output = tmp_path / "bench.json"
    assert bench_transport.main(["--quick", "--output", str(output)]) == 0

    report = json.loads(output.read_text())
    assert report["quick"] is True
    suites = {record["suite"] for record in report["suites"]}
    assert suites == {"transport_equivalence", "pipelining"}

    equivalence = [
        r for r in report["suites"] if r["suite"] == "transport_equivalence"
    ]
    # One record per shard count, each sweeping all four backends.
    assert len(equivalence) == 3
    for record in equivalence:
        assert record["predictions_equal"]
        assert record["depths_equal"]
        assert record["macs_equal"]
        assert set(record["backends"]) == {
            "local", "socket", "socket_nopipe", "fault_wrapped"
        }
        socket_entry = record["backends"]["socket"]
        assert socket_entry["wire_bytes_sent"] > 0
        assert socket_entry["wire_bytes_received"] > 0
        assert socket_entry["transport"]["rounds"] > 0
        # Local zero-copy fetches move no wire bytes but count payloads.
        assert record["backends"]["local"]["transport"]["total_bytes"] > 0

    pipelining = [r for r in report["suites"] if r["suite"] == "pipelining"]
    assert len(pipelining) == 3
    for record in pipelining:
        assert record["pipelined_wall_seconds"] > 0
        assert record["sequential_wall_seconds"] > 0
        assert record["rounds"] > 0

    aggregate = report["aggregate"]
    assert aggregate["all_predictions_equal"]
    assert aggregate["all_macs_equal"]
    assert aggregate["max_socket_overhead_vs_local"] > 0
