"""Smoke test for the failover benchmark.

Runs ``benchmarks/bench_failover.py --quick`` end to end so tier-1 catches
regressions in the replicated-transport failover path and the versioned
rollout accounting.  Serving threads and retry ladders are involved, so the
run is guarded by the same style of watchdog the transport suite uses: a
hang dumps stacks and aborts instead of stalling CI.  The real numbers come
from the full run, which writes ``BENCH_failover.json``.
"""

import faulthandler
import json
import os
import sys
import threading
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
#: The bench sweeps several replicated deployments plus a live rollout, so
#: its budget is the transport suite's default times a few;
#: REPRO_WATCHDOG_SECONDS scales it for slow CI runners (same env var the
#: transport-suite watchdog honors).
WATCHDOG_SECONDS = 300.0 * max(
    1.0, float(os.environ.get("REPRO_WATCHDOG_SECONDS", "90")) / 90.0
)


def _dump_and_abort() -> None:  # pragma: no cover - only fires on a hang
    sys.stderr.write(
        f"\n*** failover-bench watchdog fired after {WATCHDOG_SECONDS}s ***\n"
    )
    faulthandler.dump_traceback(all_threads=True)
    os._exit(3)


@pytest.fixture(autouse=True)
def bench_watchdog():
    timer = threading.Timer(WATCHDOG_SECONDS, _dump_and_abort)
    timer.daemon = True
    timer.start()
    yield
    timer.cancel()


@pytest.mark.failover_bench
def test_quick_bench_runs_and_reports(tmp_path):
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_failover
    finally:
        sys.path.remove(str(BENCH_DIR))

    output = tmp_path / "bench.json"
    assert bench_failover.main(["--quick", "--output", str(output)]) == 0

    report = json.loads(output.read_text())
    assert report["quick"] is True
    suites = {record["suite"] for record in report["suites"]}
    assert suites == {"failover_throughput", "rollout_in_flight"}

    failover = [
        r for r in report["suites"] if r["suite"] == "failover_throughput"
    ]
    # One record per (shard count, kill count) pair.
    assert len(failover) == 4
    for record in failover:
        assert record["predictions_equal"]
        assert record["depths_equal"]
        assert record["macs_equal"]
        assert record["macs_total"] > 0
        assert record["throughput_nodes_per_second"] > 0
        if record["replica_kills"]:
            # A killed rail must actually exercise the failover path.
            assert record["transport"]["failovers"] > 0
            assert record["transport"]["health_transitions"] > 0
        else:
            assert record["transport"]["failovers"] == 0
    # The offline MAC oracle is deterministic: every sharding and every
    # kill schedule lands on the same total.
    assert len({record["macs_total"] for record in failover}) == 1

    rollout = [r for r in report["suites"] if r["suite"] == "rollout_in_flight"]
    assert len(rollout) == 1
    record = rollout[0]
    assert record["old_plan_predictions_equal"]
    assert record["new_plan_predictions_equal"]
    assert record["old_plan_depths_equal"]
    assert record["new_plan_depths_equal"]
    assert record["requests_failed"] == 0
    assert record["retired_generations"] == 1
    assert record["final_plan_version"] == 1
    assert record["throughput_nodes_per_second"] > 0

    aggregate = report["aggregate"]
    assert aggregate["all_predictions_equal"]
    assert aggregate["all_macs_equal"]
    assert aggregate["total_failovers"] > 0
    assert aggregate["rollout_requests_failed"] == 0
    assert aggregate["min_degraded_throughput_ratio"] > 0
