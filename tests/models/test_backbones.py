"""Tests for the scalable-GNN backbones and their depth-wise classifiers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.graph import CSRGraph
from repro.models import (
    GAMLP,
    S2GC,
    SGC,
    SIGN,
    available_backbones,
    make_backbone,
    mlp_macs_per_node,
)
from repro.nn import Tensor

GRAPH = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], num_nodes=5)
FEATURES = np.random.default_rng(0).normal(size=(5, 8))
ALL_BACKBONES = [SGC, SIGN, S2GC, GAMLP]


def _propagated(depth=3):
    backbone = SGC(8, 3, depth, rng=0)
    return backbone.precompute(GRAPH, FEATURES)


class TestBackboneConstruction:
    @pytest.mark.parametrize("backbone_cls", ALL_BACKBONES)
    def test_describe_contains_hyperparameters(self, backbone_cls):
        backbone = backbone_cls(8, 3, 2, rng=0)
        info = backbone.describe()
        assert info["depth"] == 2
        assert info["name"] == backbone.name

    def test_invalid_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            SGC(8, 3, 0)

    def test_invalid_classes_rejected(self):
        with pytest.raises(ConfigurationError):
            SGC(8, 1, 2)

    def test_precompute_length(self):
        backbone = SGC(8, 3, 4, rng=0)
        propagated = backbone.precompute(GRAPH, FEATURES)
        assert len(propagated) == 5

    def test_make_all_classifiers(self):
        backbone = S2GC(8, 3, 3, rng=0)
        classifiers = backbone.make_all_classifiers()
        assert [c.depth for c in classifiers] == [1, 2, 3]


class TestClassifierForward:
    @pytest.mark.parametrize("backbone_cls", ALL_BACKBONES)
    def test_logit_shape(self, backbone_cls):
        backbone = backbone_cls(8, 3, 3, rng=0)
        classifier = backbone.make_classifier(2)
        propagated = [Tensor(matrix) for matrix in _propagated(3)]
        logits = classifier(propagated)
        assert logits.shape == (5, 3)

    @pytest.mark.parametrize("backbone_cls", ALL_BACKBONES)
    def test_missing_depths_rejected(self, backbone_cls):
        backbone = backbone_cls(8, 3, 3, rng=0)
        classifier = backbone.make_classifier(3)
        with pytest.raises(ShapeError):
            classifier([Tensor(FEATURES)])

    @pytest.mark.parametrize("backbone_cls", ALL_BACKBONES)
    def test_macs_positive(self, backbone_cls):
        backbone = backbone_cls(8, 3, 3, rng=0)
        classifier = backbone.make_classifier(2)
        assert classifier.classification_macs_per_node() > 0

    def test_sgc_uses_only_deepest_matrix(self):
        backbone = SGC(8, 3, 2, rng=0)
        classifier = backbone.make_classifier(2)
        propagated = _propagated(2)
        base = classifier([Tensor(m) for m in propagated]).data
        perturbed = [propagated[0] + 100.0, propagated[1], propagated[2]]
        modified = classifier([Tensor(m) for m in perturbed]).data
        assert np.allclose(base, modified)

    def test_sign_depends_on_every_depth(self):
        backbone = SIGN(8, 3, 2, rng=0)
        classifier = backbone.make_classifier(2)
        propagated = _propagated(2)
        base = classifier([Tensor(m) for m in propagated]).data
        perturbed = [propagated[0] + 5.0, propagated[1], propagated[2]]
        modified = classifier([Tensor(m) for m in perturbed]).data
        assert not np.allclose(base, modified)

    def test_s2gc_is_average_of_prefix(self):
        backbone = S2GC(8, 3, 2, rng=0)
        classifier = backbone.make_classifier(2)
        propagated = _propagated(2)
        average = np.mean(propagated[:3], axis=0)
        expected = classifier.mlp(Tensor(average)).data
        actual = classifier([Tensor(m) for m in propagated]).data
        assert np.allclose(actual, expected)

    def test_gamlp_attention_weights_are_distributions(self):
        backbone = GAMLP(8, 3, 3, rng=0)
        classifier = backbone.make_classifier(3)
        propagated = [Tensor(m) for m in _propagated(3)]
        weights = classifier._attention_weights(classifier._validate_inputs(propagated)).data
        assert weights.shape == (5, 4)
        assert np.allclose(weights.sum(axis=1), 1.0)

    def test_sign_macs_grow_with_depth(self):
        backbone = SIGN(8, 3, 4, rng=0)
        shallow = backbone.make_classifier(1).classification_macs_per_node()
        deep = backbone.make_classifier(4).classification_macs_per_node()
        assert deep > shallow

    @pytest.mark.parametrize("backbone_cls", ALL_BACKBONES)
    def test_classifiers_are_trainable(self, backbone_cls):
        from repro.nn import Adam, cross_entropy

        backbone = backbone_cls(8, 3, 2, hidden_dims=(8,), rng=0)
        classifier = backbone.make_classifier(2)
        propagated = [Tensor(m) for m in _propagated(2)]
        labels = np.array([0, 1, 2, 0, 1])
        optimizer = Adam(classifier.parameters(), lr=0.05)
        initial = float(cross_entropy(classifier(propagated), labels).data)
        for _ in range(60):
            optimizer.zero_grad()
            loss = cross_entropy(classifier(propagated), labels)
            loss.backward()
            optimizer.step()
        assert float(loss.data) < initial


class TestRegistry:
    def test_available_backbones(self):
        assert set(available_backbones()) == {"sgc", "sign", "s2gc", "gamlp"}

    @pytest.mark.parametrize("name", ["sgc", "sign", "s2gc", "gamlp"])
    def test_make_backbone_by_name(self, name):
        backbone = make_backbone(name, 8, 3, 2, rng=0)
        assert backbone.depth == 2

    def test_make_backbone_case_insensitive(self):
        assert make_backbone("SGC", 8, 3, 2, rng=0).name == "SGC"

    def test_unknown_backbone_rejected(self):
        with pytest.raises(ConfigurationError):
            make_backbone("gcn", 8, 3, 2)

    def test_backbone_kwargs_forwarded(self):
        backbone = make_backbone("sign", 8, 3, 2, transform_dim=16, rng=0)
        assert backbone.transform_dim == 16


class TestMACHelpers:
    def test_mlp_macs_linear(self):
        assert mlp_macs_per_node(10, (), 3) == 30

    def test_mlp_macs_with_hidden(self):
        assert mlp_macs_per_node(10, (20,), 3) == 10 * 20 + 20 * 3
