"""Setup shim kept for editable installs in offline environments without the
``wheel`` package (PEP 660 editable builds require it)."""
from setuptools import setup

setup()
