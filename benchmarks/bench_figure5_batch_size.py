"""Figure 5: MACs and inference time as the batch size grows (Flickr).

Paper reference (Figure 5): the vanilla model's per-node cost stays on the
same order as the batch size grows, TinyGNN's attention makes it blow up,
the MLP students stay flat, and NAI's extra stationary-state / gate work
grows mildly while its wall-clock time stays stable.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_batch_size_study, series_by_method

BATCH_SIZES = (100, 250, 500, 1000, 2000)


def test_figure5_batch_size(benchmark, flickr_context, profile):
    points = run_once(
        benchmark,
        run_batch_size_study,
        "flickr-sim",
        batch_sizes=BATCH_SIZES,
        profile=profile,
    )
    series = series_by_method(points)

    print("\nFigure 5 — flickr-sim: per-node MACs / time vs batch size")
    print(f"{'method':<14}" + "".join(f"{size:>12}" for size in BATCH_SIZES))
    for method, values in sorted(series.items()):
        macs_row = f"{method:<14}" + "".join(f"{macs / 1e3:>11.1f}k" for _, macs, _ in values)
        print(macs_row)

    # GLNN's per-node MACs are batch-size independent (pure MLP).
    glnn = [macs for _, macs, _ in series["GLNN"]]
    assert max(glnn) - min(glnn) < 1e-6
    # The vanilla backbone touches at least as many feature-processing MACs as
    # NAI's speed-first setting at every batch size.
    sgc = {size: macs for size, macs, _ in series[flickr_context.backbone_name]}
    nai = {size: macs for size, macs, _ in series["NAI_d"]}
    assert all(nai[size] <= sgc[size] for size in BATCH_SIZES)
    for method, values in series.items():
        benchmark.extra_info[f"{method}_macs_at_largest_batch"] = round(values[-1][1], 1)
