"""Table VI: node distributions over personalised propagation depths.

Paper reference (Table VI): under the speed-first setting most nodes exit at
the shallowest allowed depths; under the accuracy-first setting the nodes
spread across all depths, and the fixed depth of classic scalable GNNs shows
up as the degenerate case where a single depth holds every node.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_tradeoff, table6_distributions


def _print_distributions(dataset_name, distributions):
    print(f"\nTable VI — {dataset_name}: node counts per personalised depth (1..k)")
    for label, counts in distributions.items():
        print(f"{label:<10} {list(counts)}")


def _check(distributions, num_test):
    for label, counts in distributions.items():
        assert sum(counts) == num_test, f"{label} does not cover every test node"
    # Speed-first settings concentrate mass at shallow depths.
    speedy = distributions["NAI1_d"]
    assert sum(speedy[:2]) > 0.8 * num_test


def test_table6_flickr(benchmark, flickr_context, profile):
    points = run_once(
        benchmark, run_tradeoff, "flickr-sim", profile=profile, include_baselines=False
    )
    distributions = table6_distributions(points)
    _print_distributions("flickr-sim", distributions)
    _check(distributions, flickr_context.dataset.split.num_test)


def test_table6_arxiv(benchmark, arxiv_context, profile):
    points = run_once(
        benchmark, run_tradeoff, "arxiv-sim", profile=profile, include_baselines=False
    )
    distributions = table6_distributions(points)
    _print_distributions("arxiv-sim", distributions)
    _check(distributions, arxiv_context.dataset.split.num_test)


def test_table6_products(benchmark, products_context, profile):
    points = run_once(
        benchmark, run_tradeoff, "products-sim", profile=profile, include_baselines=False
    )
    distributions = table6_distributions(points)
    _print_distributions("products-sim", distributions)
    _check(distributions, products_context.dataset.split.num_test)
