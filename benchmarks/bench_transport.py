"""Transport benchmark: backend equivalence, socket overhead, pipelining.

Two record types, written to ``BENCH_transport.json``:

``transport_equivalence``
    For every (dataset, shard count): run the full test set through
    :class:`~repro.shard.ShardedPredictor` over each transport backend —
    in-process ``local``, TCP ``socket`` (pipelined), ``socket_nopipe``
    (send→receive per shard) and ``fault_wrapped`` (the fault-injecting
    wrapper in pass-through mode with request reordering on) — and
    **assert bit-identical predictions, exit depths and MAC totals**
    against the unsharded ``NAIPredictor``.  Each backend records its wall
    clock, its overhead versus the local backend, and its round/byte
    counters (the socket backends additionally report framed wire bytes).

``pipelining``
    The socket backend's pipelined vs sequential round trips, distilled
    from the equivalence runs: same rounds, same bytes, wall-clock ratio.
    On loopback the round trip is cheap, so the ratio understates what a
    real network would show — the byte/round counts are the durable part.

Usage::

    PYTHONPATH=src python benchmarks/bench_transport.py            # full run
    PYTHONPATH=src python benchmarks/bench_transport.py --quick    # smoke run

``--quick`` is wired into tier-1 as the ``transport_bench`` pytest marker
(see ``tests/benchmarks/test_bench_transport.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ShardConfig
from repro.experiments import ExperimentProfile
from repro.experiments.context import TrainedContext, get_context
from repro.shard import ShardedPredictor
from repro.transport import (
    FaultInjectingTransport,
    LocalTransport,
    ShardServerGroup,
)

FULL_PROFILE = ExperimentProfile(
    dataset_scale=1.0,
    depth=5,
    classifier_epochs=40,
    gate_epochs=15,
    batch_size=500,
    seed=0,
)
FULL_DATASETS = ("flickr-sim", "arxiv-sim", "products-sim")

QUICK_PROFILE = ExperimentProfile(
    dataset_scale=0.3,
    depth=3,
    classifier_epochs=20,
    gate_epochs=10,
    batch_size=200,
    seed=0,
)
QUICK_DATASETS = ("flickr-sim",)

SHARD_COUNTS = (1, 2, 4)
MAC_FIELDS = ("stationary", "propagation", "decision", "classification")


def _predictor(context: TrainedContext, *, batch_size: int):
    config = context.nai_config(threshold_quantile=0.5, batch_size=batch_size)
    predictor = context.nai.build_predictor(policy="distance", config=config)
    predictor.prepare(context.dataset.graph, context.dataset.features)
    return predictor


def _traffic_bytes(store) -> int:
    return store.traffic.bytes_local + store.traffic.bytes_remote


def _assert_bit_identical(label, result, baseline) -> None:
    if not np.array_equal(result.predictions, baseline.predictions):
        raise AssertionError(f"{label}: predictions diverged")
    if not np.array_equal(result.depths, baseline.depths):
        raise AssertionError(f"{label}: depths diverged")
    for name in MAC_FIELDS:
        if getattr(result.macs, name) != getattr(baseline.macs, name):
            raise AssertionError(f"{label}: MAC field {name} diverged")


def run_equivalence_suite(
    context: TrainedContext, dataset_name: str, *, batch_size: int
) -> list[dict]:
    predictor = _predictor(context, batch_size=batch_size)
    test_idx = np.asarray(context.dataset.split.test_idx)
    baseline = predictor.predict(test_idx)

    records = []
    for num_shards in SHARD_COUNTS:
        sharded = ShardedPredictor.from_predictor(predictor).prepare(
            context.dataset.graph,
            context.dataset.features,
            ShardConfig(num_shards=num_shards, strategy="degree_balanced"),
        )
        store = sharded.store
        with ShardServerGroup(store.shards) as group:
            backends = {
                "local": LocalTransport(store.shards),
                "socket": group.connect(),
                "socket_nopipe": group.connect(pipeline=False),
                "fault_wrapped": FaultInjectingTransport(
                    LocalTransport(store.shards), reorder=True
                ),
            }
            per_backend = {}
            try:
                for name, transport in backends.items():
                    sharded.use_transport(transport)
                    bytes_before = _traffic_bytes(store)
                    start = time.perf_counter()
                    result = sharded.predict(test_idx)
                    wall = time.perf_counter() - start
                    _assert_bit_identical(
                        f"{dataset_name}/x{num_shards}/{name}", result, baseline
                    )
                    entry = {
                        "wall_seconds": wall,
                        "payload_bytes": _traffic_bytes(store) - bytes_before,
                        "transport": transport.stats.as_dict(),
                    }
                    if hasattr(transport, "wire_bytes_sent"):
                        entry["wire_bytes_sent"] = transport.wire_bytes_sent
                        entry["wire_bytes_received"] = transport.wire_bytes_received
                    per_backend[name] = entry
            finally:
                for transport in backends.values():
                    transport.close()
        local_wall = per_backend["local"]["wall_seconds"]
        for entry in per_backend.values():
            entry["overhead_vs_local"] = (
                entry["wall_seconds"] / local_wall if local_wall else 0.0
            )
        records.append({
            "suite": "transport_equivalence",
            "dataset": dataset_name,
            "num_shards": num_shards,
            "test_nodes": int(test_idx.shape[0]),
            "predictions_equal": True,
            "depths_equal": True,
            "macs_equal": True,
            "backends": per_backend,
            "traffic": store.traffic.as_dict(),
        })
    return records


def distill_pipelining_records(equivalence: list[dict]) -> list[dict]:
    records = []
    for record in equivalence:
        pipe = record["backends"]["socket"]
        nopipe = record["backends"]["socket_nopipe"]
        records.append({
            "suite": "pipelining",
            "dataset": record["dataset"],
            "num_shards": record["num_shards"],
            "rounds": pipe["transport"]["rounds"],
            "wire_bytes": pipe["wire_bytes_sent"] + pipe["wire_bytes_received"],
            "pipelined_wall_seconds": pipe["wall_seconds"],
            "sequential_wall_seconds": nopipe["wall_seconds"],
            "pipelining_speedup": (
                nopipe["wall_seconds"] / pipe["wall_seconds"]
                if pipe["wall_seconds"]
                else 0.0
            ),
        })
    return records


def run_bench(*, quick: bool = False) -> dict:
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    datasets = QUICK_DATASETS if quick else FULL_DATASETS
    batch_size = 64 if quick else 100

    suites: list[dict] = []
    for dataset_name in datasets:
        context = get_context(dataset_name, profile=profile)
        equivalence = run_equivalence_suite(
            context, dataset_name, batch_size=batch_size
        )
        pipelining = distill_pipelining_records(equivalence)
        suites.extend(equivalence)
        suites.extend(pipelining)
        worst = max(
            equivalence,
            key=lambda r: r["backends"]["socket"]["overhead_vs_local"],
        )
        print(
            f"{dataset_name:12s} bit-identical across "
            f"{len(equivalence)} shardings x 4 backends | socket overhead "
            f"up to x{worst['backends']['socket']['overhead_vs_local']:.2f} "
            f"(x{worst['num_shards']} shards) | pipelining "
            f"x{pipelining[-1]['pipelining_speedup']:.2f} at x4"
        )

    equivalence_records = [
        s for s in suites if s["suite"] == "transport_equivalence"
    ]
    pipelining_records = [s for s in suites if s["suite"] == "pipelining"]
    aggregate = {
        "shard_counts": list(SHARD_COUNTS),
        "backends": ["local", "socket", "socket_nopipe", "fault_wrapped"],
        "all_predictions_equal": all(
            s["predictions_equal"] for s in equivalence_records
        ),
        "all_macs_equal": all(s["macs_equal"] for s in equivalence_records),
        "max_socket_overhead_vs_local": max(
            s["backends"]["socket"]["overhead_vs_local"]
            for s in equivalence_records
        ),
        "min_pipelining_speedup": min(
            s["pipelining_speedup"] for s in pipelining_records
        ),
        "max_pipelining_speedup": max(
            s["pipelining_speedup"] for s in pipelining_records
        ),
    }
    return {
        "benchmark": "bench_transport",
        "quick": quick,
        "profile": {
            "dataset_scale": profile.dataset_scale,
            "depth": profile.depth,
            "seed": profile.seed,
        },
        "workload": {"batch_size": batch_size},
        "suites": suites,
        "aggregate": aggregate,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small deterministic smoke run (used by the tier-1 marker test)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_transport.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    aggregate = report["aggregate"]
    print(
        f"aggregate: bit-identical {aggregate['all_predictions_equal']}, "
        f"MACs equal {aggregate['all_macs_equal']}, socket overhead "
        f"<= x{aggregate['max_socket_overhead_vs_local']:.2f}, pipelining "
        f"x{aggregate['min_pipelining_speedup']:.2f}-"
        f"x{aggregate['max_pipelining_speedup']:.2f}"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
