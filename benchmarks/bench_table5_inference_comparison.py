"""Table V: inference comparison under base model SGC on the three datasets.

Paper reference (Table V): on Flickr / Ogbn-arxiv / Ogbn-products, NAI_d and
NAI_g keep accuracy within a fraction of a point of vanilla SGC while cutting
feature-processing MACs by 14-73x and inference time by 7-75x; GLNN is
fastest but loses the most accuracy on the larger graphs, NOSMOG recovers
part of it, TinyGNN costs *more* MACs than SGC, and Quantization matches
SGC's MACs with a small accuracy drop.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_dataset_comparison
from repro.metrics import format_table


def _run_and_report(benchmark, dataset_name, profile):
    rows = run_once(benchmark, run_dataset_comparison, dataset_name, profile=profile)
    print()
    print(format_table(rows, reference_method="SGC",
                       title=f"Table V — {dataset_name} (base model SGC)"))
    reference = next(row for row in rows if row.method == "SGC")
    for row in rows:
        benchmark.extra_info[f"{row.method}_acc"] = round(row.accuracy, 4)
        if row.method != "SGC":
            benchmark.extra_info[f"{row.method}_time_speedup"] = round(
                row.speedup_over(reference)["time"], 2
            )
    return rows


def test_table5_flickr(benchmark, flickr_context, profile):
    rows = _run_and_report(benchmark, "flickr-sim", profile)
    by_method = {row.method: row for row in rows}
    # Shape checks mirroring the paper's conclusions.
    assert by_method["NAI_d"].fp_macs_per_node < by_method["SGC"].fp_macs_per_node
    assert by_method["GLNN"].fp_macs_per_node == 0.0
    assert by_method["TinyGNN"].macs_per_node > by_method["NAI_d"].macs_per_node


def test_table5_arxiv(benchmark, arxiv_context, profile):
    rows = _run_and_report(benchmark, "arxiv-sim", profile)
    by_method = {row.method: row for row in rows}
    assert by_method["NAI_d"].fp_macs_per_node < by_method["SGC"].fp_macs_per_node
    assert by_method["NAI_d"].accuracy > by_method["GLNN"].accuracy


def test_table5_products(benchmark, products_context, profile):
    rows = _run_and_report(benchmark, "products-sim", profile)
    by_method = {row.method: row for row in rows}
    assert by_method["NAI_d"].fp_macs_per_node < by_method["SGC"].fp_macs_per_node
    assert by_method["NAI_g"].fp_macs_per_node < by_method["SGC"].fp_macs_per_node
