"""Figure 4: accuracy vs inference-time trade-off of the NAI settings.

Paper reference (Figure 4): the three NAI operating points trace a curve from
"fast, slightly less accurate" to "as accurate as (or better than) the
vanilla model at similar cost"; all of them dominate TinyGNN, GLNN and
NOSMOG in accuracy.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure4_series, run_tradeoff


def _print_series(dataset_name, series):
    print(f"\nFigure 4 — {dataset_name}: accuracy vs time per node")
    print(f"{'setting':<14} {'ms/node':>10} {'ACC%':>8}")
    for label, (time_ms, accuracy) in sorted(series.items()):
        print(f"{label:<14} {time_ms:>10.3f} {accuracy * 100:>8.2f}")


def test_figure4_flickr(benchmark, flickr_context, profile):
    points = run_once(benchmark, run_tradeoff, "flickr-sim", profile=profile)
    series = figure4_series(points)
    _print_series("flickr-sim", series)
    for label, (time_ms, accuracy) in series.items():
        benchmark.extra_info[f"{label}_acc"] = round(accuracy, 4)
    # Accuracy-first settings should not be less accurate than speed-first ones.
    assert series["NAI3_d"][1] >= series["NAI1_d"][1] - 0.02
    # Every NAI setting beats the MLP-only students in accuracy.
    assert min(series["NAI1_d"][1], series["NAI1_g"][1]) > series["GLNN"][1]


def test_figure4_arxiv(benchmark, arxiv_context, profile):
    points = run_once(benchmark, run_tradeoff, "arxiv-sim", profile=profile)
    series = figure4_series(points)
    _print_series("arxiv-sim", series)
    assert series["NAI3_d"][1] >= series["NAI1_d"][1] - 0.02
    assert series["NAI3_d"][0] >= series["NAI1_d"][0]


def test_figure4_products(benchmark, products_context, profile):
    points = run_once(benchmark, run_tradeoff, "products-sim", profile=profile)
    series = figure4_series(points)
    _print_series("products-sim", series)
    assert series["NAI3_d"][1] >= series["NAI1_d"][1] - 0.02
    assert min(series["NAI1_d"][1], series["NAI1_g"][1]) > series["GLNN"][1]
