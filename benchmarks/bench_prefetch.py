"""Prefetch benchmark: fetch/compute overlap and tiered feature serving.

Two record types, written to ``BENCH_prefetch.json``:

``prefetch_overlap``
    A sharded deployment served through one
    :class:`~repro.serving.InferenceServer` whose transport carries an
    **injected per-round RTT** (:class:`~repro.transport.FaultInjectingTransport`
    with ``latency_seconds`` on the real clock — the measurement harness
    for "what would this stall cost on a real network").  A stream of
    distinct-node-set requests (every batch is a cold subgraph-cache miss,
    so every batch pays the fetch) runs once serialized
    (``prefetch_depth=0``) and once with the prefetch pipeline
    (``prefetch_depth=4``).  The record asserts **bit-identical
    predictions, exit depths and MAC totals** between the two runs and
    reports the serving throughput ratio — the pipeline's reason to exist.

``tiered_memory``
    The same deployment re-served after
    :meth:`~repro.shard.store.ShardedGraphStore.use_tiered_features` caps
    resident feature bytes at a quarter of the matrix: the cold tier is an
    ``np.memmap`` spill, the hot tier an admission-controlled row cache.
    The record asserts bit-identical outputs versus the un-tiered oracle
    and that **peak resident feature bytes stayed under the budget** while
    the feature matrix itself exceeds it.

Usage::

    PYTHONPATH=src python benchmarks/bench_prefetch.py            # full run
    PYTHONPATH=src python benchmarks/bench_prefetch.py --quick    # smoke run

``--quick`` is wired into tier-1 as the ``prefetch_bench`` pytest marker
(see ``tests/benchmarks/test_bench_prefetch.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ServingConfig, ShardConfig
from repro.experiments import ExperimentProfile
from repro.experiments.context import TrainedContext, get_context
from repro.serving import InferenceServer
from repro.shard import ShardedPredictor
from repro.transport import FaultInjectingTransport, LocalTransport

FULL_PROFILE = ExperimentProfile(
    dataset_scale=1.0,
    depth=3,
    classifier_epochs=25,
    gate_epochs=10,
    batch_size=200,
    seed=0,
)
QUICK_PROFILE = ExperimentProfile(
    dataset_scale=0.3,
    depth=3,
    classifier_epochs=15,
    gate_epochs=8,
    batch_size=128,
    seed=0,
)
DATASET = "flickr-sim"

#: Injected per-transport-round RTT (real clock) — the acceptance setting.
RTT_SECONDS = 0.005
NUM_SHARDS = 2
BATCH_SIZE = 32
PREFETCH_DEPTH = 4


def _sharded(context: TrainedContext) -> ShardedPredictor:
    config = context.nai_config(threshold_quantile=0.5, batch_size=BATCH_SIZE)
    predictor = context.nai.build_predictor(policy="distance", config=config)
    predictor.prepare(context.dataset.graph, context.dataset.features)
    return ShardedPredictor.from_predictor(predictor).prepare(
        context.dataset.graph,
        context.dataset.features,
        ShardConfig(num_shards=NUM_SHARDS, strategy="degree_balanced"),
    )


def _distinct_batches(num_nodes: int, *, limit: int | None) -> list[np.ndarray]:
    """Chunk one permutation of every node: distinct node-sets, all misses."""
    permuted = np.random.default_rng(13).permutation(num_nodes)
    batches = [
        permuted[start : start + BATCH_SIZE]
        for start in range(0, num_nodes - BATCH_SIZE + 1, BATCH_SIZE)
    ]
    return batches[:limit] if limit else batches


def _serve(sharded, batches, *, prefetch_depth: int) -> dict:
    store = sharded.store
    # Fresh transport per run: both runs see identical cold state and the
    # same injected RTT on every round.
    store.use_transport(
        FaultInjectingTransport(
            LocalTransport(store.shards), latency_seconds=RTT_SECONDS
        )
    )
    config = ServingConfig(
        num_workers=2,
        max_batch_size=BATCH_SIZE,
        max_wait_ms=1.0,
        cache_capacity=64,
        prefetch_depth=prefetch_depth,
    )
    try:
        with InferenceServer(sharded.shard_view(0), config) as server:
            start = time.perf_counter()
            responses = server.predict_many(batches, timeout=120.0)
            wall = time.perf_counter() - start
            stats = server.stats()
    finally:
        store.use_transport(LocalTransport(store.shards))
    nodes = sum(int(batch.shape[0]) for batch in batches)
    return {
        "prefetch_depth": prefetch_depth,
        "wall_seconds": wall,
        "throughput_nodes_per_second": nodes / wall if wall else 0.0,
        "predictions": np.concatenate([r.predictions for r in responses]),
        "depths": np.concatenate([r.depths for r in responses]),
        "macs_total": float(
            sum(r.batch_macs.total for r in responses)
        ),
        "stats": {
            "prefetch_issued": stats.prefetch_issued,
            "prefetch_completed": stats.prefetch_completed,
            "prefetch_hits": stats.prefetch_hits,
            "prefetch_fetch_seconds": stats.prefetch_fetch_seconds,
            "prefetch_overlap_seconds": stats.prefetch_overlap_seconds,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
        },
    }


def run_overlap_suite(context: TrainedContext, *, quick: bool) -> dict:
    sharded = _sharded(context)
    batches = _distinct_batches(
        context.dataset.graph.num_nodes, limit=12 if quick else None
    )
    serialized = _serve(sharded, batches, prefetch_depth=0)
    prefetched = _serve(sharded, batches, prefetch_depth=PREFETCH_DEPTH)

    predictions_equal = bool(
        np.array_equal(serialized["predictions"], prefetched["predictions"])
    )
    depths_equal = bool(
        np.array_equal(serialized["depths"], prefetched["depths"])
    )
    macs_equal = serialized["macs_total"] == prefetched["macs_total"]
    speedup = (
        serialized["wall_seconds"] / prefetched["wall_seconds"]
        if prefetched["wall_seconds"]
        else 0.0
    )
    record = {
        "suite": "prefetch_overlap",
        "dataset": DATASET,
        "num_shards": NUM_SHARDS,
        "injected_rtt_seconds": RTT_SECONDS,
        "num_batches": len(batches),
        "batch_size": BATCH_SIZE,
        "prefetch_depth": PREFETCH_DEPTH,
        "predictions_equal": predictions_equal,
        "depths_equal": depths_equal,
        "macs_equal": macs_equal,
        "macs_total": serialized["macs_total"],
        "serialized": {
            key: serialized[key]
            for key in ("wall_seconds", "throughput_nodes_per_second", "stats")
        },
        "prefetched": {
            key: prefetched[key]
            for key in ("wall_seconds", "throughput_nodes_per_second", "stats")
        },
        "throughput_speedup": speedup,
    }
    if not (predictions_equal and depths_equal and macs_equal):
        raise AssertionError("prefetch run diverged from serialized run")
    return record


def run_tiered_suite(context: TrainedContext) -> dict:
    sharded = _sharded(context)
    store = sharded.store
    targets = np.asarray(context.dataset.split.test_idx)
    oracle = sharded.predict(targets)
    feature_nbytes = sum(
        np.asarray(shard.features).nbytes for shard in store.shards
    )
    budget = feature_nbytes // 4
    store.use_tiered_features(budget)
    start = time.perf_counter()
    tiered = sharded.predict(targets)
    wall = time.perf_counter() - start
    report = store.memory_report()

    predictions_identical = bool(
        np.array_equal(tiered.predictions, oracle.predictions)
    )
    depths_identical = bool(np.array_equal(tiered.depths, oracle.depths))
    macs_equal = tiered.macs.total == oracle.macs.total
    peak = report["feature_peak_resident_nbytes"]
    record = {
        "suite": "tiered_memory",
        "dataset": DATASET,
        "num_shards": NUM_SHARDS,
        "feature_matrix_nbytes": int(feature_nbytes),
        "budget_bytes": int(budget),
        "matrix_exceeds_budget": bool(feature_nbytes > budget),
        "peak_resident_nbytes": int(peak),
        "peak_resident_within_slo": bool(peak <= budget),
        "resident_reduction_vs_matrix": (
            1.0 - peak / feature_nbytes if feature_nbytes else 0.0
        ),
        "tiered_predictions_identical": predictions_identical,
        "tiered_depths_identical": depths_identical,
        "tiered_macs_equal": macs_equal,
        "macs_total": float(tiered.macs.total),
        "wall_seconds": wall,
        "tiers": report["feature_tiers"],
    }
    if not (predictions_identical and depths_identical and macs_equal):
        raise AssertionError("tiered serving diverged from the oracle")
    if peak > budget:
        raise AssertionError(
            f"peak resident feature bytes {peak} exceeded the {budget} budget"
        )
    return record


def run_bench(*, quick: bool = False) -> dict:
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    context = get_context(DATASET, profile=profile)

    overlap = run_overlap_suite(context, quick=quick)
    tiered = run_tiered_suite(context)
    print(
        f"{DATASET:12s} overlap x{overlap['throughput_speedup']:.2f} at "
        f"{RTT_SECONDS * 1e3:.0f}ms injected RTT "
        f"({overlap['num_batches']} cold batches, depth {PREFETCH_DEPTH}) | "
        f"tiered peak {tiered['peak_resident_nbytes'] / 1024:.0f}KiB of "
        f"{tiered['budget_bytes'] / 1024:.0f}KiB budget "
        f"(matrix {tiered['feature_matrix_nbytes'] / 1024:.0f}KiB) | "
        "bit-identical"
    )

    aggregate = {
        "throughput_speedup": overlap["throughput_speedup"],
        "all_predictions_equal": (
            overlap["predictions_equal"]
            and tiered["tiered_predictions_identical"]
        ),
        "all_macs_equal": overlap["macs_equal"] and tiered["tiered_macs_equal"],
        "peak_resident_within_slo": tiered["peak_resident_within_slo"],
        "prefetch_overlap_seconds": (
            overlap["prefetched"]["stats"]["prefetch_overlap_seconds"]
        ),
    }
    return {
        "benchmark": "bench_prefetch",
        "quick": quick,
        "profile": {
            "dataset_scale": profile.dataset_scale,
            "depth": profile.depth,
            "seed": profile.seed,
        },
        "workload": {
            "batch_size": BATCH_SIZE,
            "num_shards": NUM_SHARDS,
            "injected_rtt_seconds": RTT_SECONDS,
            "prefetch_depth": PREFETCH_DEPTH,
        },
        "suites": [overlap, tiered],
        "aggregate": aggregate,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small deterministic smoke run (used by the tier-1 marker test)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_prefetch.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
