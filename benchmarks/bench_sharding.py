"""Sharding benchmark: equivalence, per-shard memory, halo traffic, serving.

Four record types, written to ``BENCH_sharding.json``:

``equivalence_memory``
    For every (dataset, shard count, strategy): run the full test set
    through :class:`~repro.shard.ShardedPredictor` and **assert bit-identical
    predictions, depths and MAC totals** against the unsharded
    ``NAIPredictor`` — then record the per-shard peak state footprint
    against the unsharded deployment state, the halo sizes, the edge cut and
    the cross-shard fetch traffic the run generated.  The acceptance bound
    (max shard bytes ≤ ~(1/num_shards + halo fraction) of the unsharded
    footprint) is asserted, not just logged.

``routed_serving``
    The online workload through a :class:`~repro.shard.ShardRouter` (one
    ``InferenceServer`` worker group per shard) vs. one unsharded server:
    wall clock, throughput, and bit-identical predictions/depths against the
    sequential oracle.

``worker_backends``
    The thread-vs-fork :class:`~repro.serving.WorkerPool` comparison the
    ROADMAP multi-core question asks for, on the streaming workload of
    ``bench_serving.py --scaling``: 1-thread baseline, N threads, N forked
    processes.  On a single-core container both land near 1x — recorded
    honestly; on multi-core hardware the same records quantify the pool.

``subsystem_caches``
    The two serving-cache satellites measured end to end: a permuted
    recurring stream served with canonical subgraph-cache keys (hits despite
    permutation) and with the opt-in result cache (replays, computed vs
    replayed MACs).

Usage::

    PYTHONPATH=src python benchmarks/bench_sharding.py            # full run
    PYTHONPATH=src python benchmarks/bench_sharding.py --quick    # smoke run

``--quick`` is wired into tier-1 as the ``sharding_bench`` pytest marker
(see ``tests/benchmarks/test_bench_sharding.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ServingConfig, ShardConfig
from repro.experiments import ExperimentProfile
from repro.experiments.context import TrainedContext, get_context
from repro.graph.sampling import batch_iterator
from repro.serving import InferenceServer
from repro.shard import ShardRouter, ShardedPredictor

FULL_PROFILE = ExperimentProfile(
    dataset_scale=1.0,
    depth=5,
    classifier_epochs=40,
    gate_epochs=15,
    batch_size=500,
    seed=0,
)
FULL_DATASETS = ("flickr-sim", "arxiv-sim", "products-sim")

QUICK_PROFILE = ExperimentProfile(
    dataset_scale=0.3,
    depth=3,
    classifier_epochs=20,
    gate_epochs=10,
    batch_size=200,
    seed=0,
)
QUICK_DATASETS = ("flickr-sim",)

SHARD_COUNTS = (1, 2, 4)
STRATEGIES = ("hash", "degree_balanced")
WORKERS = 4


def _predictor(context: TrainedContext, *, batch_size: int):
    config = context.nai_config(threshold_quantile=0.5, batch_size=batch_size)
    predictor = context.nai.build_predictor(policy="distance", config=config)
    predictor.prepare(context.dataset.graph, context.dataset.features)
    return predictor


def _unsharded_state_nbytes(predictor) -> int:
    """Resident deployment state of the single-process predictor."""
    adjacency = predictor._graph.adjacency
    a_hat = predictor._a_hat
    stationary = predictor._stationary
    return int(
        adjacency.indptr.nbytes + adjacency.indices.nbytes + adjacency.data.nbytes
        + a_hat.indptr.nbytes + a_hat.indices.nbytes + a_hat.data.nbytes
        + predictor._features.nbytes
        + stationary.degrees_with_loops.nbytes
        + stationary.weighted_feature_sum.nbytes
    )


def run_equivalence_memory_suite(
    context: TrainedContext, dataset_name: str, *, batch_size: int
) -> list[dict]:
    predictor = _predictor(context, batch_size=batch_size)
    test_idx = np.asarray(context.dataset.split.test_idx)
    baseline = predictor.predict(test_idx)
    unsharded_nbytes = _unsharded_state_nbytes(predictor)
    num_nodes = context.dataset.graph.num_nodes

    records = []
    for strategy in STRATEGIES:
        for num_shards in SHARD_COUNTS:
            sharded = ShardedPredictor.from_predictor(predictor).prepare(
                context.dataset.graph,
                context.dataset.features,
                ShardConfig(num_shards=num_shards, strategy=strategy),
            )
            start = time.perf_counter()
            result = sharded.predict(test_idx)
            wall = time.perf_counter() - start

            label = f"{dataset_name}/{strategy}/x{num_shards}"
            if not np.array_equal(result.predictions, baseline.predictions):
                raise AssertionError(f"{label}: sharded predictions diverged")
            if not np.array_equal(result.depths, baseline.depths):
                raise AssertionError(f"{label}: sharded depths diverged")
            if result.macs.total != baseline.macs.total:
                raise AssertionError(f"{label}: sharded MAC totals diverged")

            memory = sharded.store.memory_report()
            max_halo_fraction = max(
                entry["halo_nodes"] / num_nodes for entry in memory["per_shard"]
            )
            ratio = memory["max_shard_nbytes"] / unsharded_nbytes
            # Acceptance bound: one shard's state is its owned 1/k slice plus
            # its halo, with a small allowance for the id-map overhead.
            bound = 1.0 / num_shards + max_halo_fraction + 0.1
            if ratio > bound:
                raise AssertionError(
                    f"{label}: per-shard state ratio {ratio:.3f} exceeds "
                    f"bound {bound:.3f}"
                )
            records.append({
                "suite": "equivalence_memory",
                "dataset": dataset_name,
                "strategy": strategy,
                "num_shards": num_shards,
                "nodes": int(num_nodes),
                "test_nodes": int(test_idx.shape[0]),
                "predictions_equal": True,
                "depths_equal": True,
                "macs_equal": True,
                "wall_seconds": wall,
                "unsharded_state_nbytes": unsharded_nbytes,
                "max_shard_nbytes": memory["max_shard_nbytes"],
                "per_shard_state_ratio": ratio,
                "state_ratio_bound": bound,
                "cut_edges": memory["cut_edges"],
                "total_halo_nodes": memory["total_halo_nodes"],
                "max_halo_fraction": max_halo_fraction,
                "per_shard": memory["per_shard"],
                "halo_traffic": sharded.store.traffic.as_dict(),
            })
    return records


def run_routed_serving_suite(
    context: TrainedContext, dataset_name: str, *, request_size: int,
    max_batch_size: int, num_requests: int,
) -> list[dict]:
    predictor = _predictor(context, batch_size=max_batch_size)
    rng = np.random.default_rng(5)
    test_idx = rng.permutation(np.asarray(context.dataset.split.test_idx))
    requests = batch_iterator(test_idx, request_size)[:num_requests]
    oracle = np.concatenate(
        [predictor.predict(request).predictions for request in requests]
    )

    serving = ServingConfig(
        num_workers=WORKERS, max_batch_size=max_batch_size, max_wait_ms=2.0,
        cache_capacity=0,
    )
    with InferenceServer(predictor, serving) as server:
        start = time.perf_counter()
        unsharded_responses = server.predict_many(requests, timeout=600.0)
        unsharded_wall = time.perf_counter() - start
    unsharded_predictions = np.concatenate(
        [r.predictions for r in unsharded_responses]
    )

    records = []
    for num_shards in (2, 4):
        sharded = ShardedPredictor.from_predictor(predictor).prepare(
            context.dataset.graph,
            context.dataset.features,
            ShardConfig(num_shards=num_shards, strategy="degree_balanced"),
        )
        per_shard_config = ServingConfig(
            num_workers=max(1, WORKERS // num_shards),
            max_batch_size=max_batch_size, max_wait_ms=2.0, cache_capacity=0,
        )
        with ShardRouter(sharded, per_shard_config) as router:
            start = time.perf_counter()
            responses = router.predict_many(requests, timeout=600.0)
            routed_wall = time.perf_counter() - start
            stats = router.stats()
        routed_predictions = np.concatenate([r.predictions for r in responses])
        label = f"{dataset_name}/routed/x{num_shards}"
        if not np.array_equal(routed_predictions, oracle):
            raise AssertionError(f"{label}: routed predictions diverged")
        if not np.array_equal(unsharded_predictions, oracle):
            raise AssertionError(f"{label}: unsharded served predictions diverged")
        num_nodes = sum(r.shape[0] for r in requests)
        records.append({
            "suite": "routed_serving",
            "dataset": dataset_name,
            "num_shards": num_shards,
            "requests": len(requests),
            "nodes": num_nodes,
            "predictions_equal": True,
            "unsharded_wall_seconds": unsharded_wall,
            "routed_wall_seconds": routed_wall,
            "routed_vs_unsharded": unsharded_wall / routed_wall if routed_wall else 0.0,
            "routed_throughput_nodes_per_second": (
                num_nodes / routed_wall if routed_wall else 0.0
            ),
            "fleet_requests_completed": stats.requests_completed,
            "fleet_batches": stats.batches_dispatched,
            "fleet_macs": stats.macs.total,
            "fleet_latency_ms": stats.latency.scaled(1e3).as_dict(),
            "per_shard_nodes": {
                str(shard): snapshot.nodes_completed
                for shard, snapshot in sorted(stats.per_shard.items())
            },
        })
    return records


def run_worker_backend_suite(
    context: TrainedContext, dataset_name: str, *, tick_size: int,
    num_ticks: int, distinct: int,
) -> dict:
    """Thread vs fork-process pool on the streaming workload (ROADMAP item)."""
    predictor = _predictor(context, batch_size=tick_size)
    rng = np.random.default_rng(7)
    test_idx = np.asarray(context.dataset.split.test_idx)
    pool = [
        batch for batch in batch_iterator(rng.permutation(test_idx), tick_size)
        if batch.shape[0] == tick_size
    ][:distinct]
    order = list(range(len(pool)))
    order += list(rng.integers(0, len(pool), size=max(0, num_ticks - len(pool))))
    ticks = [pool[i] for i in order]

    walls = {}
    for label, workers, backend in (
        ("1_thread", 1, "thread"),
        (f"{WORKERS}_threads", WORKERS, "thread"),
        (f"{WORKERS}_processes", WORKERS, "process"),
    ):
        config = ServingConfig(
            num_workers=workers, backend=backend, max_batch_size=tick_size,
            max_wait_ms=0.5, cache_capacity=0,
        )
        with InferenceServer(predictor, config) as server:
            start = time.perf_counter()
            server.predict_many(ticks, timeout=600.0)
            walls[label] = time.perf_counter() - start
    return {
        "suite": "worker_backends",
        "dataset": dataset_name,
        "ticks": len(ticks),
        "tick_size": tick_size,
        "wall_seconds": walls,
        "thread_pool_speedup": walls["1_thread"] / walls[f"{WORKERS}_threads"],
        "fork_pool_speedup": walls["1_thread"] / walls[f"{WORKERS}_processes"],
        "fork_vs_thread": (
            walls[f"{WORKERS}_threads"] / walls[f"{WORKERS}_processes"]
        ),
    }


def run_cache_suite(
    context: TrainedContext, dataset_name: str, *, tick_size: int, num_ticks: int,
    distinct: int,
) -> dict:
    """Canonical subgraph-cache keys + result cache on a *permuted* stream."""
    predictor = _predictor(context, batch_size=tick_size)
    rng = np.random.default_rng(11)
    test_idx = np.asarray(context.dataset.split.test_idx)
    pool = [
        batch for batch in batch_iterator(rng.permutation(test_idx), tick_size)
        if batch.shape[0] == tick_size
    ][:distinct]
    # Every recurrence is a fresh permutation: the pre-canonicalisation cache
    # would miss all of them.
    ticks = [pool[i] for i in range(len(pool))]
    ticks += [
        rng.permutation(pool[i])
        for i in rng.integers(0, len(pool), size=max(0, num_ticks - len(pool)))
    ]
    oracle = [predictor.predict(tick) for tick in ticks]

    config = ServingConfig(
        num_workers=WORKERS, max_batch_size=tick_size, max_wait_ms=0.5,
        cache_capacity=max(2 * distinct, 8),
        result_cache_capacity=max(2 * distinct, 8),
    )
    with InferenceServer(predictor, config) as server:
        responses = [
            server.submit(tick).result(timeout=600.0) for tick in ticks
        ]
        stats = server.stats()
    label = f"{dataset_name}/caches"
    for response, reference in zip(responses, oracle):
        if not np.array_equal(response.predictions, reference.predictions):
            raise AssertionError(f"{label}: cached predictions diverged")
        if not np.array_equal(response.depths, reference.depths):
            raise AssertionError(f"{label}: cached depths diverged")
    lookups = stats.result_cache_hits + stats.result_cache_misses
    return {
        "suite": "subsystem_caches",
        "dataset": dataset_name,
        "ticks": len(ticks),
        "distinct_node_sets": distinct,
        "predictions_equal": True,
        "depths_equal": True,
        "result_cache_hit_rate": (
            stats.result_cache_hits / lookups if lookups else 0.0
        ),
        "result_cache_hits": stats.result_cache_hits,
        "batches_replayed": stats.batches_replayed,
        "computed_macs": stats.macs.total,
        "replayed_macs": stats.replayed_macs.total,
        "replay_mac_fraction": (
            stats.replayed_macs.total
            / (stats.macs.total + stats.replayed_macs.total)
            if stats.macs.total + stats.replayed_macs.total
            else 0.0
        ),
    }


def run_bench(*, quick: bool = False) -> dict:
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    datasets = QUICK_DATASETS if quick else FULL_DATASETS
    batch_size = 64 if quick else 100
    tick_size = 48 if quick else 100
    num_ticks = 10 if quick else 30
    distinct = 2 if quick else 4
    request_size = 2 if quick else 4
    num_requests = 24 if quick else 100

    suites: list[dict] = []
    for dataset_name in datasets:
        context = get_context(dataset_name, profile=profile)
        equivalence = run_equivalence_memory_suite(
            context, dataset_name, batch_size=batch_size
        )
        routed = run_routed_serving_suite(
            context, dataset_name, request_size=request_size,
            max_batch_size=tick_size, num_requests=num_requests,
        )
        backends = run_worker_backend_suite(
            context, dataset_name, tick_size=tick_size, num_ticks=num_ticks,
            distinct=distinct,
        )
        caches = run_cache_suite(
            context, dataset_name, tick_size=tick_size, num_ticks=num_ticks,
            distinct=distinct,
        )
        suites.extend(equivalence)
        suites.extend(routed)
        suites.append(backends)
        suites.append(caches)
        worst = max(
            (r for r in equivalence if r["num_shards"] == max(SHARD_COUNTS)),
            key=lambda r: r["per_shard_state_ratio"],
        )
        print(
            f"{dataset_name:12s} equivalence: bit-identical across "
            f"{len(equivalence)} shardings | x{worst['num_shards']} state ratio "
            f"{worst['per_shard_state_ratio']:.2f} (bound {worst['state_ratio_bound']:.2f}) "
            f"| thread x{backends['thread_pool_speedup']:.2f} fork "
            f"x{backends['fork_pool_speedup']:.2f} | result-cache hit "
            f"{caches['result_cache_hit_rate']:.0%}"
        )

    equivalence_records = [s for s in suites if s["suite"] == "equivalence_memory"]
    cache_records = [s for s in suites if s["suite"] == "subsystem_caches"]
    aggregate = {
        "shard_counts": list(SHARD_COUNTS),
        "strategies": list(STRATEGIES),
        "all_predictions_equal": all(
            s["predictions_equal"] for s in suites if "predictions_equal" in s
        ),
        "all_macs_equal": all(s["macs_equal"] for s in equivalence_records),
        "max_per_shard_state_ratio": {
            str(k): max(
                s["per_shard_state_ratio"]
                for s in equivalence_records
                if s["num_shards"] == k
            )
            for k in SHARD_COUNTS
        },
        "min_result_cache_hit_rate": min(
            s["result_cache_hit_rate"] for s in cache_records
        ),
    }
    return {
        "benchmark": "bench_sharding",
        "quick": quick,
        "profile": {
            "dataset_scale": profile.dataset_scale,
            "depth": profile.depth,
            "seed": profile.seed,
        },
        "workload": {
            "batch_size": batch_size, "tick_size": tick_size,
            "num_ticks": num_ticks, "distinct": distinct,
            "request_size": request_size, "num_requests": num_requests,
            "workers": WORKERS,
        },
        "suites": suites,
        "aggregate": aggregate,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small deterministic smoke run (used by the tier-1 marker test)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sharding.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    aggregate = report["aggregate"]
    print(
        f"aggregate: bit-identical {aggregate['all_predictions_equal']}, "
        f"MACs equal {aggregate['all_macs_equal']}, per-shard state ratio "
        + ", ".join(
            f"x{k}={v:.2f}"
            for k, v in aggregate["max_per_shard_state_ratio"].items()
        )
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
