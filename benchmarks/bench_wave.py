"""Wave benchmark: MACs-per-request against wave width on a Zipfian workload.

One record per wave width, written to ``BENCH_wave.json``:

``wave_width``
    A fixed stream of concurrent requests — node sets drawn from a
    Zipf-skewed popularity, the hub-heavy regime the paper's k-hop
    supports concentrate in — grouped into waves of ``width`` members and
    executed through :func:`~repro.serving.wave.execute_wave` (the
    deterministic core the live dispatcher wraps; see
    ``tests/serving/test_wave_fuzz.py`` for the live-scheduler
    equivalence).  Each record asserts **bit-identical predictions and
    exit depths** for every request versus its isolated run, that the
    per-member MAC attribution **reconciles exactly** with the
    engine-reported union breakdown, and reports MACs-per-request —
    which must fall monotonically as width grows, the wave scheduler's
    reason to exist (``check_bench.py`` gates the monotone decrease and
    the reduction floor at the widest setting).

Usage::

    PYTHONPATH=src python benchmarks/bench_wave.py            # full run
    PYTHONPATH=src python benchmarks/bench_wave.py --quick    # smoke run

``--quick`` is wired into tier-1 as the ``wave_bench`` pytest marker
(see ``tests/benchmarks/test_bench_wave.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ShardConfig
from repro.experiments import ExperimentProfile
from repro.experiments.context import TrainedContext, get_context
from repro.serving import execute_wave
from repro.shard import ShardedPredictor

FULL_PROFILE = ExperimentProfile(
    dataset_scale=1.0,
    depth=3,
    classifier_epochs=25,
    gate_epochs=10,
    batch_size=200,
    seed=0,
)
QUICK_PROFILE = ExperimentProfile(
    dataset_scale=0.3,
    depth=3,
    classifier_epochs=15,
    gate_epochs=8,
    batch_size=128,
    seed=0,
)
DATASET = "flickr-sim"

NUM_SHARDS = 2
REQUEST_SIZE = 8
#: Zipf popularity exponent — hub-heavy, the serving regime waves target.
ZIPF_EXPONENT = 1.2
WAVE_WIDTHS = (1, 2, 4, 8)


def _sharded(context: TrainedContext) -> ShardedPredictor:
    config = context.nai_config(threshold_quantile=0.5, batch_size=64)
    predictor = context.nai.build_predictor(policy="distance", config=config)
    predictor.prepare(context.dataset.graph, context.dataset.features)
    return ShardedPredictor.from_predictor(predictor).prepare(
        context.dataset.graph,
        context.dataset.features,
        ShardConfig(num_shards=NUM_SHARDS, strategy="degree_balanced"),
    )


def _zipfian_requests(num_nodes: int, count: int) -> list[np.ndarray]:
    """Concurrent request stream under Zipf-skewed node popularity."""
    rng = np.random.default_rng(13)
    ranks = rng.permutation(num_nodes)
    weights = 1.0 / (1.0 + ranks.astype(np.float64)) ** ZIPF_EXPONENT
    weights /= weights.sum()
    return [
        rng.choice(num_nodes, size=REQUEST_SIZE, replace=False, p=weights)
        for _ in range(count)
    ]


def run_width_suite(engine, requests, isolated, width: int) -> dict:
    start = time.perf_counter()
    waves = [
        execute_wave(engine, requests[index : index + width])
        for index in range(0, len(requests), width)
    ]
    wall = time.perf_counter() - start

    predictions_identical = True
    depths_identical = True
    position = 0
    union_macs = 0.0
    shared_row_macs = 0
    total_row_macs = 0
    for wave in waves:
        # execute_wave raised already if the attribution failed to
        # reconcile; re-check that the member shares re-sum to the
        # engine-reported union total so the flag is explicit in the report.
        assert wave.attribution.total.total == wave.result.macs.total
        union_macs += float(wave.result.macs.total)
        shared_row_macs += wave.attribution.shared_row_macs
        total_row_macs += wave.attribution.total_row_macs
        for index in range(wave.num_members):
            oracle = isolated[position]
            predictions_identical &= bool(
                np.array_equal(wave.member_predictions(index), oracle.predictions)
            )
            depths_identical &= bool(
                np.array_equal(wave.member_depths(index), oracle.depths)
            )
            position += 1

    record = {
        "suite": f"wave_width_{width}",
        "dataset": DATASET,
        "wave_width": width,
        "num_requests": len(requests),
        "num_waves": len(waves),
        "predictions_identical": bool(predictions_identical),
        "depths_identical": bool(depths_identical),
        "attribution_reconciles_identical": True,
        "macs_total": union_macs,
        "macs_per_request": union_macs / len(requests),
        "shared_row_fraction": (
            shared_row_macs / total_row_macs if total_row_macs else 0.0
        ),
        "wall_seconds": wall,
    }
    if not (predictions_identical and depths_identical):
        raise AssertionError(
            f"wave width {width} diverged from the isolated runs"
        )
    return record


def run_bench(*, quick: bool = False) -> dict:
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    context = get_context(DATASET, profile=profile)
    sharded = _sharded(context)
    engine = sharded.make_engine(home_shard=0)
    num_requests = 32 if quick else 96
    requests = _zipfian_requests(
        context.dataset.graph.num_nodes, num_requests
    )
    isolated = [engine.run_batch(batch) for batch in requests]

    suites = [
        run_width_suite(engine, requests, isolated, width)
        for width in WAVE_WIDTHS
    ]
    by_width = {record["wave_width"]: record for record in suites}
    widest = by_width[max(WAVE_WIDTHS)]
    reduction = (
        by_width[1]["macs_per_request"] / widest["macs_per_request"]
        if widest["macs_per_request"]
        else 0.0
    )
    monotone = all(
        by_width[a]["macs_per_request"] >= by_width[b]["macs_per_request"]
        for a, b in zip(WAVE_WIDTHS, WAVE_WIDTHS[1:])
    )
    print(
        f"{DATASET:12s} macs/request "
        + " -> ".join(
            f"{by_width[w]['macs_per_request']:.0f} (w{w})" for w in WAVE_WIDTHS
        )
        + f" | x{reduction:.2f} reduction at width {max(WAVE_WIDTHS)}, "
        f"shared rows {widest['shared_row_fraction']:.0%} | bit-identical"
    )

    aggregate = {
        "all_predictions_identical": all(
            record["predictions_identical"] for record in suites
        ),
        "all_depths_identical": all(
            record["depths_identical"] for record in suites
        ),
        "attribution_reconciles_identical": all(
            record["attribution_reconciles_identical"] for record in suites
        ),
        "macs_per_request_monotone_identical": bool(monotone),
        "macs_per_request_by_width": {
            str(width): by_width[width]["macs_per_request"]
            for width in WAVE_WIDTHS
        },
        "macs_reduction_at_max_width": reduction,
        "shared_row_fraction_at_max_width": widest["shared_row_fraction"],
    }
    return {
        "benchmark": "bench_wave",
        "quick": quick,
        "profile": {
            "dataset_scale": profile.dataset_scale,
            "depth": profile.depth,
            "seed": profile.seed,
        },
        "workload": {
            "request_size": REQUEST_SIZE,
            "num_requests": num_requests,
            "num_shards": NUM_SHARDS,
            "zipf_exponent": ZIPF_EXPONENT,
            "wave_widths": list(WAVE_WIDTHS),
        },
        "suites": suites,
        "aggregate": aggregate,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small deterministic smoke run (used by the tier-1 marker test)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_wave.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
