"""Monitoring benchmark: health-monitor overhead + the auto-rebalance loop.

Two suites, each on the synthetic paper datasets, recorded to
``BENCH_monitor.json``:

``monitor_overhead`` (observation must be ~free)
    The routed online workload of ``bench_sharding.py`` through a
    :class:`~repro.shard.ShardRouter`, once bare and once with the full
    observation stack attached — :class:`~repro.obs.HealthMonitor` ticking
    at a production cadence plus an :class:`~repro.obs.SLOEngine`
    evaluating a latency SLO on every snapshot.  Both modes must reproduce
    the sequential predictions, depth distributions **and MAC totals**
    bit-for-bit — monitoring observes, never changes results.  The
    headline gate: best-of-``repeats`` monitored throughput must stay
    within **>= 0.95x** of unmonitored (``monitor_overhead_within_slo``).

``auto_rebalance_loop`` (the readings must close the loop)
    The deterministic congestion scenario of
    ``tests/obs/test_rebalance.py``: a skewed workload hammers one shard
    whose feature fetches carry an injected 50ms delay, the windowed
    latency burn-rate alert fires, the :class:`~repro.obs.AutoRebalancer`
    installs a replica-boosted plan through the router's versioned
    rollout, latency-routed reads drain to the spare rail and the alert
    resolves.  The control plane runs on a ``FakeClock`` advanced one
    virtual second per request, so the pending → firing → resolved
    timeline is exact; the identical workload also runs with monitoring
    off, and predictions, depths and MAC totals must match bit-for-bit
    (``*_identical`` flags) — the rebalance moved *placement*, never
    answers.  ``p95_recovered_within_slo`` asserts the windowed p95 ends
    below the SLO threshold it breached while congested.

Every equivalence claim is asserted, not just recorded: a divergence fails
the benchmark.  Timing fields are machine-dependent and never gated by
``check_bench.py``; the overhead SLO flag is gated, which is why it is
measured best-of-``repeats`` with one full re-measurement before a breach
fails the gate — equivalence assertions are exact and never retried.

Usage::

    PYTHONPATH=src python benchmarks/bench_monitor.py            # full run
    PYTHONPATH=src python benchmarks/bench_monitor.py --quick    # smoke run

``--quick`` is wired into tier-1 as the ``monitor_bench`` pytest marker
(see ``tests/benchmarks/test_bench_monitor.py``).
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import MonitorConfig, ServingConfig, ShardConfig
from repro.experiments import ExperimentProfile
from repro.experiments.context import TrainedContext, get_context
from repro.graph.sampling import batch_iterator
from repro.obs import (
    FIRING,
    PENDING,
    RESOLVED,
    SLO,
    AutoRebalancer,
    HealthMonitor,
    MemoryAlertSink,
    MetricsRegistry,
    RebalanceAdvisor,
    SLOEngine,
)
from repro.serving.clock import FakeClock
from repro.shard import GraphPartitioner, ShardRouter, ShardedPredictor
from repro.transport import OP_FEATURES, LocalTransport, ShardTransport

FULL_PROFILE = ExperimentProfile(
    dataset_scale=1.0,
    depth=5,
    classifier_epochs=40,
    gate_epochs=15,
    batch_size=500,
    seed=0,
)
FULL_DATASETS = ("flickr-sim", "arxiv-sim", "products-sim")

QUICK_PROFILE = ExperimentProfile(
    dataset_scale=0.3,
    depth=3,
    classifier_epochs=20,
    gate_epochs=10,
    batch_size=200,
    seed=0,
)
QUICK_DATASETS = ("flickr-sim",)

WORKERS = 4
#: Monitored throughput must stay within this fraction of unmonitored.
OVERHEAD_SLO = 0.95
#: Injected per-round feature-fetch delay on the congested shard.
HOT_DELAY = 0.05
#: Latency SLO threshold the congestion breaches and the rebalance restores.
SLO_THRESHOLD = 0.025


def _predictor(context: TrainedContext, *, batch_size: int):
    config = context.nai_config(threshold_quantile=0.5, batch_size=batch_size)
    predictor = context.nai.build_predictor(policy="distance", config=config)
    predictor.prepare(context.dataset.graph, context.dataset.features)
    return predictor


def _assert_equal(label: str, name: str, lhs, rhs) -> None:
    if not np.array_equal(lhs, rhs):
        raise AssertionError(f"{label}: {name} diverged")


def _routed_macs(responses) -> float:
    """Executed MACs across routed responses, deduplicated per micro-batch.

    ``batch_macs`` is shared by every request a micro-batch carried, and
    batch ids restart with each plan generation — key by (version, shard,
    batch) so a mid-run rollout never merges distinct batches.
    """
    seen = {}
    for response in responses:
        for shard_id, sub in response.per_shard.items():
            seen[(response.plan_version, shard_id, sub.batch_id)] = sub
    return sum(sub.batch_macs.total for sub in seen.values())


@contextlib.contextmanager
def _gc_paused():
    """Pause the cyclic collector inside a timed region (timeit-style).

    Under pytest the process carries a large retained heap, and collection
    pauses land on whichever mode happens to allocate more — drowning a
    sub-millisecond per-request measurement in collector noise.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _latency_slo(*, min_events: int) -> SLO:
    return SLO(
        name="latency",
        objective="latency",
        threshold_seconds=SLO_THRESHOLD,
        budget_fraction=0.05,
        fast_window_seconds=60.0,
        slow_window_seconds=3600.0,
        for_seconds=0.0,
        resolve_after_seconds=30.0,
        min_events=min_events,
    )


# ---------------------------------------------------------------------- #
# Suite 1: monitor overhead on the routed online workload
# ---------------------------------------------------------------------- #
def run_monitor_overhead_suite(
    context: TrainedContext, dataset_name: str, *, request_size: int,
    max_batch_size: int, num_requests: int, num_shards: int, repeats: int,
    cadence_seconds: float,
) -> dict:
    """Monitored vs. bare routed serving: identical results, ~no cost."""
    predictor = _predictor(context, batch_size=max_batch_size)
    rng = np.random.default_rng(5)
    test_idx = rng.permutation(np.asarray(context.dataset.split.test_idx))
    requests = batch_iterator(test_idx, request_size)[:num_requests]
    sequential = [predictor.predict(request) for request in requests]
    oracle_predictions = np.concatenate([r.predictions for r in sequential])
    oracle_depths = np.concatenate([r.depths for r in sequential])

    sharded = ShardedPredictor.from_predictor(predictor).prepare(
        context.dataset.graph,
        context.dataset.features,
        ShardConfig(num_shards=num_shards, strategy="degree_balanced"),
    )
    serving = ServingConfig(
        num_workers=max(1, WORKERS // num_shards),
        max_batch_size=max_batch_size, max_wait_ms=0.5, cache_capacity=0,
    )
    label = f"{dataset_name}/monitor_overhead/x{num_shards}"
    monitor_config = MonitorConfig(
        window_seconds=60.0, num_buckets=12, cadence_seconds=cadence_seconds
    )

    def timed_run(mode: str):
        registry = MetricsRegistry()
        monitor = engine = None
        ticks = 0
        with ShardRouter(sharded, serving, registry=registry) as router:
            if mode == "monitored":
                monitor = HealthMonitor(
                    router, monitor_config, registry=registry
                )
                engine = SLOEngine([_latency_slo(min_events=8)])
            # Untimed warmup: worker threads spin up lazily and the first
            # submissions pay import/allocation costs that belong to
            # neither mode.  Results are discarded; the timed pass below
            # serves every request, so equivalence still covers them all.
            for request in requests[:4]:
                router.submit(request, timeout=600.0).result(timeout=600.0)
            with _gc_paused():
                start = time.perf_counter()
                responses = []
                for request in requests:
                    responses.append(
                        router.submit(request, timeout=600.0).result(
                            timeout=600.0
                        )
                    )
                    if monitor is not None:
                        health = monitor.maybe_tick()
                        if health is not None:
                            engine.tick(health)
                wall = time.perf_counter() - start
            if monitor is not None:
                ticks = monitor.ticks
                if engine.firing():
                    raise AssertionError(
                        f"{label}: latency SLO fired on the uncongested "
                        "overhead workload"
                    )
            macs = _routed_macs(responses)
        _assert_equal(
            f"{label}/{mode}", "predictions",
            np.concatenate([r.predictions for r in responses]),
            oracle_predictions,
        )
        _assert_equal(
            f"{label}/{mode}", "depths",
            np.concatenate([r.depths for r in responses]),
            oracle_depths,
        )
        return wall, ticks, macs

    # Single measurements are scheduler-jitter dominated; run the modes
    # back to back ``repeats`` times and gate on the better of the best
    # back-to-back pair and the ratio of best walls: a contended scheduler
    # slows one run of a pair far more than the monitor ever could, while
    # the best wall of each mode converges on the uncontended speed as
    # repeats accumulate.  The per-request MAC work is deterministic (one
    # request, one batch per owning shard), so every run — either mode,
    # either attempt — must tally the same total.
    reference_macs = None

    def measure():
        nonlocal reference_macs
        walls = {"bare": float("inf"), "monitored": float("inf")}
        pair_ratios = []
        monitor_ticks = 0
        for _ in range(repeats):
            bare_wall, _, bare_macs = timed_run("bare")
            monitored_wall, monitor_ticks, monitored_macs = timed_run(
                "monitored"
            )
            if reference_macs is None:
                reference_macs = bare_macs
            for mode, macs in (
                ("bare", bare_macs),
                ("monitored", monitored_macs),
            ):
                if abs(macs - reference_macs) >= 1e-6:
                    raise AssertionError(
                        f"{label}/{mode}: MAC totals diverged"
                    )
            walls["bare"] = min(walls["bare"], bare_wall)
            walls["monitored"] = min(walls["monitored"], monitored_wall)
            pair_ratios.append(
                bare_wall / monitored_wall if monitored_wall else float("inf")
            )
        best_wall_ratio = (
            walls["bare"] / walls["monitored"]
            if walls["monitored"]
            else float("inf")
        )
        return walls, pair_ratios, monitor_ticks, max(
            max(pair_ratios), best_wall_ratio
        )

    # The equivalence assertions are exact and never retried; the wall
    # ratio is a measurement, so a breach earns one full re-measurement
    # before it fails the gate (a noisy-neighbour burst can slow every
    # run of an attempt by more than the whole overhead budget).
    for attempt in range(1, 3):
        walls, pair_ratios, monitor_ticks, throughput_ratio = measure()
        if throughput_ratio >= OVERHEAD_SLO:
            break
    if throughput_ratio < OVERHEAD_SLO:
        raise AssertionError(
            f"{label}: monitored throughput {throughput_ratio:.3f}x of bare "
            f"(SLO {OVERHEAD_SLO}x, {attempt} attempts)"
        )
    return {
        "dataset": dataset_name,
        "suite": "monitor_overhead",
        "num_shards": num_shards,
        "requests": len(requests),
        "nodes": int(sum(r.shape[0] for r in requests)),
        "repeats": repeats,
        "monitor_ticks": monitor_ticks,
        "cadence_seconds": monitor_config.cadence_seconds,
        "run_macs": reference_macs,
        "bare_wall_seconds": walls["bare"],
        "monitored_wall_seconds": walls["monitored"],
        "monitored_throughput_ratio": throughput_ratio,
        "pair_throughput_ratios": pair_ratios,
        "measure_attempts": attempt,
        "overhead_slo": OVERHEAD_SLO,
        "predictions_identical": True,
        "depths_identical": True,
        "macs_identical": True,
        "monitor_overhead_within_slo": True,
    }


# ---------------------------------------------------------------------- #
# Suite 2: the closed loop — alert fires, rebalance installs, SLO recovers
# ---------------------------------------------------------------------- #
class ShardDelayTransport(ShardTransport):
    """Injects a fixed per-round service delay on configured shards."""

    def __init__(self, inner, delays, *, ops=(OP_FEATURES,)):
        super().__init__()
        self.inner = inner
        self.delays = {int(s): float(d) for s, d in delays.items()}
        self.ops = set(ops)

    @property
    def num_shards(self):
        return self.inner.num_shards

    def fetch(self, op, requests):
        if op in self.ops:
            delay = max(
                (self.delays.get(int(s), 0.0) for s, _ in requests), default=0.0
            )
            if delay > 0.0:
                time.sleep(delay)
        return self.inner.fetch(op, requests)

    def close(self):
        self.inner.close()


def run_auto_rebalance_suite(
    context: TrainedContext, dataset_name: str, *, num_requests: int,
    request_size: int, num_shards: int,
) -> dict:
    """Skew → alert → versioned replica boost → recovery, vs. monitor-off."""
    predictor = _predictor(context, batch_size=32)
    shard_config = ShardConfig(num_shards=num_shards, strategy="degree_balanced")
    plan0 = GraphPartitioner(shard_config).partition(context.dataset.graph)
    hot = int(np.argmax(plan0.shard_sizes()))
    label = f"{dataset_name}/auto_rebalance_loop/x{num_shards}"

    def build(plan):
        sharded = ShardedPredictor.from_predictor(predictor).prepare(
            context.dataset.graph, context.dataset.features, shard_config,
            plan=plan,
        )
        rails = [
            ShardDelayTransport(
                LocalTransport(sharded.store.shards), {hot: HOT_DELAY}
            ),
            LocalTransport(sharded.store.shards),
        ][: plan.max_replication]
        sharded.store.use_replicated_transport(rails, route_by="latency")
        return sharded

    # Zipf-ish skew: 80% of batches target the hot shard's owned nodes.
    rng = np.random.default_rng(7)
    batches = [
        rng.choice(
            plan0.owned[
                hot if rng.random() < 0.8 else int(rng.integers(0, num_shards))
            ],
            size=request_size,
            replace=False,
        )
        for _ in range(num_requests)
    ]
    serving = ServingConfig(
        num_workers=2, max_batch_size=32, max_wait_ms=0.5, cache_capacity=0
    )

    def run(monitored: bool) -> dict:
        fake = FakeClock()
        registry = MetricsRegistry()
        router = ShardRouter(build(plan0), serving, registry=registry)
        monitor = engine = auto = sink = None
        if monitored:
            monitor = HealthMonitor(
                router,
                MonitorConfig(
                    window_seconds=60.0, num_buckets=12, cadence_seconds=1.0
                ),
                clock=fake,
                registry=registry,
            )
            sink = MemoryAlertSink()
            engine = SLOEngine(
                [_latency_slo(min_events=8)], sinks=[sink], clock=fake
            )
            auto = AutoRebalancer(
                router,
                RebalanceAdvisor(
                    base_replication=1, boost=1,
                    hot_fraction=1.0 / num_shards, max_rails=2,
                ),
                build,
                monitor=monitor,
                cooldown_seconds=10_000.0,
                clock=fake,
            )
            engine.add_sink(auto)

        responses = []
        congested_p95 = recovered_p95 = 0.0
        start = time.perf_counter()
        with router:
            for batch in batches:
                responses.append(
                    router.submit(batch, timeout=600.0).result(timeout=600.0)
                )
                if monitored:
                    fake.advance(1.0)
                    health = monitor.tick()
                    if auto.installs == 0:
                        congested_p95 = max(congested_p95, health.latency.p95)
                    engine.tick(health)
            rollout = router.rollout_state()  # before retiring drains it
            router.finish_rollout(timeout=600.0)
            if monitored:
                recovered_p95 = monitor.tick().latency.p95
            wall = time.perf_counter() - start
        return {
            "wall": wall,
            "predictions": np.concatenate([r.predictions for r in responses]),
            "depths": np.concatenate([r.depths for r in responses]),
            "macs": _routed_macs(responses),
            "failed": sum(row["requests_failed"] for row in rollout),
            "routed": sum(row["requests_routed"] for row in rollout),
            "plan_versions": sorted({r.plan_version for r in responses}),
            "alert_states": sink.states("latency") if monitored else [],
            "installs": auto.installs if monitored else 0,
            "history": (
                [h for h in (auto.history if monitored else []) if "version" in h]
            ),
            "congested_p95": congested_p95,
            "recovered_p95": recovered_p95,
            "final_version": router.plan_version,
        }

    monitored = run(monitored=True)
    bare = run(monitored=False)

    if monitored["alert_states"] != [PENDING, FIRING, RESOLVED]:
        raise AssertionError(
            f"{label}: alert lifecycle was {monitored['alert_states']}"
        )
    if monitored["installs"] != 1 or monitored["final_version"] != (
        plan0.version + 1
    ):
        raise AssertionError(f"{label}: expected exactly one versioned install")
    (install,) = monitored["history"]
    if install["diff"]["boosted"].get(str(hot)) != {"from": 1, "to": 2}:
        raise AssertionError(f"{label}: hot shard {hot} was not boosted")
    for run_record in (monitored, bare):
        if run_record["failed"] != 0 or run_record["routed"] != len(batches):
            raise AssertionError(f"{label}: requests lost across the rollout")
    if not monitored["congested_p95"] > SLO_THRESHOLD:
        raise AssertionError(f"{label}: congestion never breached the SLO")
    if not monitored["recovered_p95"] < SLO_THRESHOLD:
        raise AssertionError(
            f"{label}: windowed p95 {monitored['recovered_p95'] * 1e3:.1f}ms "
            f"did not recover below {SLO_THRESHOLD * 1e3:.0f}ms"
        )
    _assert_equal(label, "predictions", monitored["predictions"], bare["predictions"])
    _assert_equal(label, "depths", monitored["depths"], bare["depths"])
    if abs(monitored["macs"] - bare["macs"]) >= 1e-6:
        raise AssertionError(f"{label}: MAC totals diverged")

    return {
        "dataset": dataset_name,
        "suite": "auto_rebalance_loop",
        "num_shards": num_shards,
        "hot_shard": hot,
        "hot_delay_seconds": HOT_DELAY,
        "slo_threshold_seconds": SLO_THRESHOLD,
        "requests": len(batches),
        "nodes": int(sum(b.shape[0] for b in batches)),
        "alert_states": monitored["alert_states"],
        "installs": monitored["installs"],
        "plan_versions_served": monitored["plan_versions"],
        "boosted_diff": install["diff"],
        "congested_p95_seconds": monitored["congested_p95"],
        "recovered_p95_seconds": monitored["recovered_p95"],
        "failed_requests": monitored["failed"],
        "monitored_wall_seconds": monitored["wall"],
        "unmonitored_wall_seconds": bare["wall"],
        "run_macs": monitored["macs"],
        "alert_fired": True,
        "alert_resolved": True,
        "rebalance_installed": True,
        "zero_failed_requests": True,
        "p95_recovered_within_slo": True,
        "predictions_identical": True,
        "depths_identical": True,
        "macs_identical": True,
    }


# ---------------------------------------------------------------------- #
def run_bench(*, quick: bool = False) -> dict:
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    datasets = QUICK_DATASETS if quick else FULL_DATASETS
    request_size = 2 if quick else 4
    max_batch_size = 64 if quick else 100
    # Long enough that scheduler jitter (±a few ms per run) stays small
    # against the measured wall; the overhead gate is a ratio of walls.
    overhead_requests = 64 if quick else 120
    # The quick run's wall is tens of milliseconds; tighten the cadence so
    # the monitored mode still takes a meaningful number of snapshots
    # (several, vs. one every few *thousand* requests at a production
    # cadence — the quick gate is already far harsher than deployment).
    cadence_seconds = 0.01 if quick else 0.05
    repeats = 7 if quick else 3
    num_shards = 2 if quick else 4
    rebalance_shards = 4
    rebalance_requests = 120 if quick else 160
    rebalance_request_size = 8

    suites: list[dict] = []
    for dataset_name in datasets:
        context = get_context(dataset_name, profile=profile)
        overhead = run_monitor_overhead_suite(
            context, dataset_name, request_size=request_size,
            max_batch_size=max_batch_size, num_requests=overhead_requests,
            num_shards=num_shards, repeats=repeats,
            cadence_seconds=cadence_seconds,
        )
        suites.append(overhead)
        loop = run_auto_rebalance_suite(
            context, dataset_name, num_requests=rebalance_requests,
            request_size=rebalance_request_size, num_shards=rebalance_shards,
        )
        suites.append(loop)
        print(
            f"{dataset_name.ljust(12)} | monitoring "
            f"{overhead['monitored_throughput_ratio']:.3f}x bare "
            f"({overhead['monitor_ticks']} ticks) | loop: "
            f"{' -> '.join(loop['alert_states'])}, "
            f"p95 {loop['congested_p95_seconds'] * 1e3:.1f}ms -> "
            f"{loop['recovered_p95_seconds'] * 1e3:.1f}ms, "
            f"{loop['installs']} install(s)"
        )

    overhead_records = [s for s in suites if s["suite"] == "monitor_overhead"]
    loop_records = [s for s in suites if s["suite"] == "auto_rebalance_loop"]
    aggregate = {
        "workers": WORKERS,
        "all_predictions_identical": all(
            s["predictions_identical"] for s in suites
        ),
        "all_depths_identical": all(s["depths_identical"] for s in suites),
        "all_macs_identical": all(s["macs_identical"] for s in suites),
        "monitor_overhead_within_slo": all(
            s["monitor_overhead_within_slo"] for s in overhead_records
        ),
        "min_monitored_throughput_ratio": min(
            s["monitored_throughput_ratio"] for s in overhead_records
        ),
        "all_alerts_resolved": all(s["alert_resolved"] for s in loop_records),
        "all_p95_recovered_within_slo": all(
            s["p95_recovered_within_slo"] for s in loop_records
        ),
    }
    return {
        "benchmark": "bench_monitor",
        "quick": quick,
        "profile": {
            "dataset_scale": profile.dataset_scale,
            "depth": profile.depth,
            "seed": profile.seed,
        },
        "workload": {
            "request_size": request_size, "max_batch_size": max_batch_size,
            "overhead_requests": overhead_requests, "repeats": repeats,
            "cadence_seconds": cadence_seconds,
            "num_shards": num_shards, "rebalance_shards": rebalance_shards,
            "rebalance_requests": rebalance_requests,
            "rebalance_request_size": rebalance_request_size,
        },
        "suites": suites,
        "aggregate": aggregate,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small deterministic smoke run (used by the tier-1 marker test)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_monitor.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    aggregate = report["aggregate"]
    print(
        f"aggregate: monitoring {aggregate['min_monitored_throughput_ratio']:.3f}x "
        f"bare (SLO {OVERHEAD_SLO}x), alerts resolved: "
        f"{aggregate['all_alerts_resolved']}, outputs identical: "
        f"{aggregate['all_predictions_identical'] and aggregate['all_macs_identical']}"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
