"""Table XI: generalization of NAI to the GAMLP backbone on Flickr.

Paper reference (Table XI): with GAMLP as the base model NAI keeps accuracy
within ~0.3 points of the vanilla model while cutting feature-processing MACs
by ~12-13x; the MLP students lose 2.8-4.2 points.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_generalization
from repro.metrics import format_table


def test_table11_gamlp_generalization(benchmark, profile):
    rows = run_once(
        benchmark, run_generalization, "gamlp", dataset_name="flickr-sim", profile=profile
    )
    print()
    print(format_table(rows, reference_method="GAMLP", title="Table XI — GAMLP on flickr-sim"))
    by_method = {row.method: row for row in rows}
    assert by_method["NAI_d"].fp_macs_per_node < by_method["GAMLP"].fp_macs_per_node
    assert by_method["NAI_d"].accuracy > by_method["GLNN"].accuracy
    for row in rows:
        benchmark.extra_info[f"{row.method}_acc"] = round(row.accuracy, 4)
