"""Table I: analytic inference complexity of scalable GNNs with and without NAI.

Paper reference (Table I): NAI replaces the ``k m f`` propagation term of
every backbone with ``q m f`` (q = average personalised depth) plus an
additive stationary-state term; the benefit therefore grows with graph size,
density and feature dimension.  The second benchmark cross-checks the
formula-level speedup against the MAC counts measured by the engine.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import measured_vs_analytic, run_complexity_table


def test_table1_analytic_complexity(benchmark):
    rows = run_once(
        benchmark,
        run_complexity_table,
        num_nodes=100_000,
        num_edges=5_000_000,
        num_features=128,
        depth=5,
        classifier_layers=2,
        average_depth=1.8,
    )
    print("\nTable I — analytic inference MACs (n=100k, m=5M, f=128, k=5, q=1.8)")
    print(
        f"{'backbone':<10} {'vanilla':>14} {'NAI (Table I)':>14} "
        f"{'NAI w/o stat.':>14} {'prop. ratio':>12}"
    )
    for row in rows:
        print(
            f"{row.backbone:<10} {row.vanilla_macs:>14.3e} {row.nai_macs:>14.3e} "
            f"{row.nai_macs_excluding_stationary:>14.3e} {row.propagation_speedup:>12.2f}"
        )
        benchmark.extra_info[f"{row.backbone}_propagation_ratio"] = round(
            row.propagation_speedup, 3
        )
    assert len(rows) == 4
    # Once the stationary-state upper bound is excluded, the q < k reduction
    # makes NAI strictly cheaper for every backbone.
    assert all(row.propagation_speedup > 1.0 for row in rows)
    assert all(row.vanilla_macs > 0 and row.nai_macs > 0 for row in rows)


def test_table1_measured_vs_analytic(benchmark, flickr_context, profile):
    summary = run_once(benchmark, measured_vs_analytic, "flickr-sim", profile=profile)
    print("\nTable I cross-check — measured vs analytic speedup on flickr-sim")
    for key, value in summary.items():
        print(f"{key:<24} {value:.4g}")
        benchmark.extra_info[key] = round(float(value), 4)
    assert summary["measured_speedup"] > 1.0
    assert summary["average_depth"] < profile.depth
