"""Table VII: ablation of Node-Adaptive Propagation across T_max.

Paper reference (Table VII): for every maximum depth, replacing fixed-depth
inference ("NAI w/o NAP") with the adaptive variants keeps (or improves)
accuracy while lowering latency, and inference cost grows steeply with
T_max for the fixed-depth variant.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_nap_ablation


def _print_rows(dataset_name, rows):
    print(f"\nTable VII — {dataset_name}")
    print(f"{'T_max':>5} {'method':<14} {'ACC%':>8} {'ms/node':>10}  node distribution")
    for row in rows:
        print(
            f"{row.t_max:>5} {row.method:<14} {row.accuracy * 100:>8.2f} "
            f"{row.time_ms_per_node:>10.3f}  {list(row.depth_distribution)}"
        )


def _check_shape(rows):
    by_key = {(row.t_max, row.method): row for row in rows}
    t_values = sorted({row.t_max for row in rows})
    for t_max in t_values:
        fixed = by_key[(t_max, "NAI w/o NAP")]
        adaptive = by_key[(t_max, "NAI_d")]
        # Adaptive inference never assigns a deeper average depth than the
        # fixed-depth variant and therefore never costs more propagation.
        assert sum(
            depth * count for depth, count in enumerate(adaptive.depth_distribution, start=1)
        ) <= sum(
            depth * count for depth, count in enumerate(fixed.depth_distribution, start=1)
        )
    # Fixed-depth cost grows with T_max (neighbour explosion).
    shallow = by_key[(t_values[0], "NAI w/o NAP")]
    deep = by_key[(t_values[-1], "NAI w/o NAP")]
    assert deep.time_ms_per_node >= shallow.time_ms_per_node * 0.8


def test_table7_arxiv(benchmark, arxiv_context, profile):
    rows = run_once(benchmark, run_nap_ablation, "arxiv-sim", profile=profile)
    _print_rows("arxiv-sim", rows)
    _check_shape(rows)
    for row in rows:
        benchmark.extra_info[f"{row.method}@{row.t_max}_acc"] = round(row.accuracy, 4)


def test_table7_products(benchmark, products_context, profile):
    rows = run_once(benchmark, run_nap_ablation, "products-sim", profile=profile)
    _print_rows("products-sim", rows)
    _check_shape(rows)
