"""Serving benchmark: the online subsystem vs. sequential ``NAIPredictor.predict``.

Three suites, each on the synthetic paper datasets, recorded to
``BENCH_serving.json``:

``streaming`` (equivalence + cache)
    A tick stream whose batches recur (sessions / hot queries).  The server
    (4 workers, subgraph cache) must produce **bit-identical predictions,
    depth distributions and MAC counts** to running ``predict`` over the
    same tick stream — the cache only skips MAC-free sampling work — while
    finishing faster.  Records the cache hit rate and the sampling-time
    reduction.

``online`` (micro-batching throughput)
    The serving workload the paper motivates: many small requests arriving
    independently.  The baseline answers each request with its own
    ``predict`` call; the server coalesces them into micro-batches whose
    supporting subgraphs are shared.  Predictions and depth distributions
    stay bit-identical (per-node results are batch-independent); total MACs
    *drop* — the paper's Figure-5 batch-size effect captured by the serving
    layer — and throughput is the headline ``>= 2x``.

``scaling`` (worker-pool)
    The streaming workload at 1 vs. 4 workers, recording how much the pool
    adds on this machine (on a single-core container the speedup comes from
    the cache and batching; on multi-core hardware the workers multiply it).

Every equivalence claim is asserted, not just recorded: a divergence fails
the benchmark.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full run
    PYTHONPATH=src python benchmarks/bench_serving.py --quick    # smoke run
    PYTHONPATH=src python benchmarks/bench_serving.py --sweep-run-dispatch

The ``--quick`` mode is wired into tier-1 as the ``serving_bench`` pytest
marker (see ``tests/benchmarks/test_bench_serving.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ServingConfig
from repro.experiments import ExperimentProfile
from repro.experiments.context import TrainedContext, get_context
from repro.graph.sampling import batch_iterator
from repro.serving import InferenceServer

#: Full profile: the three synthetic paper datasets.
FULL_PROFILE = ExperimentProfile(
    dataset_scale=1.0,
    depth=5,
    classifier_epochs=40,
    gate_epochs=15,
    batch_size=500,
    seed=0,
)
FULL_DATASETS = ("flickr-sim", "arxiv-sim", "products-sim")

#: Quick profile: one small dataset, enough to exercise every code path.
QUICK_PROFILE = ExperimentProfile(
    dataset_scale=0.3,
    depth=3,
    classifier_epochs=20,
    gate_epochs=10,
    batch_size=200,
    seed=0,
)
QUICK_DATASETS = ("flickr-sim",)

WORKERS = 4


def _predictor(context: TrainedContext, *, batch_size: int):
    config = context.nai_config(threshold_quantile=0.5, batch_size=batch_size)
    predictor = context.nai.build_predictor(policy="distance", config=config)
    predictor.prepare(context.dataset.graph, context.dataset.features)
    return predictor


def _streaming_ticks(context: TrainedContext, *, tick_size: int, num_ticks: int,
                     distinct: int, seed: int = 3) -> list[np.ndarray]:
    """A stream drawn (with recurrence) from a pool of ``distinct`` sessions.

    Every session is exactly ``tick_size`` nodes so the micro-batcher (whose
    node budget is ``tick_size`` in the streaming suite) maps each request to
    one micro-batch — the served batch composition matches the sequential
    baseline exactly, which the bit-identical MAC assertion requires.
    """
    rng = np.random.default_rng(seed)
    test_idx = np.asarray(context.dataset.split.test_idx)
    pool = [
        batch for batch in batch_iterator(rng.permutation(test_idx), tick_size)
        if batch.shape[0] == tick_size
    ][:distinct]
    # First visit every distinct session once (cold), then recur.
    order = list(range(len(pool)))
    order += list(rng.integers(0, len(pool), size=num_ticks - len(pool)))
    return [pool[i] for i in order]


def _assert_equal(label: str, name: str, lhs, rhs) -> None:
    if not np.array_equal(lhs, rhs):
        raise AssertionError(f"{label}: served {name} diverged from sequential")


def _merge_batches(responses) -> tuple[float, float, float]:
    """(total MACs, total engine seconds, sampling seconds), deduped by batch."""
    seen: dict[int, object] = {}
    for response in responses:
        seen[response.batch_id] = response
    macs = sum(r.batch_macs.total for r in seen.values())
    total = sum(r.batch_timings.total for r in seen.values())
    sampling = sum(r.batch_timings.sampling for r in seen.values())
    return macs, total, sampling


def run_streaming_suite(
    context: TrainedContext, dataset_name: str, *, tick_size: int,
    num_ticks: int, distinct: int,
) -> dict:
    """Equivalence + cache suite: identical tick streams through both paths."""
    predictor = _predictor(context, batch_size=tick_size)
    ticks = _streaming_ticks(
        context, tick_size=tick_size, num_ticks=num_ticks, distinct=distinct
    )

    start = time.perf_counter()
    sequential = [predictor.predict(tick) for tick in ticks]
    sequential_wall = time.perf_counter() - start

    config = ServingConfig(
        num_workers=WORKERS, max_batch_size=tick_size, max_wait_ms=0.5,
        cache_capacity=max(2 * distinct, 8),
    )
    with InferenceServer(predictor, config) as server:
        start = time.perf_counter()
        responses = server.predict_many(ticks, timeout=600.0)
        served_wall = time.perf_counter() - start
        stats = server.stats()

    label = f"{dataset_name}/streaming"
    _assert_equal(
        label, "predictions",
        np.concatenate([r.predictions for r in responses]),
        np.concatenate([r.predictions for r in sequential]),
    )
    _assert_equal(
        label, "depths",
        np.concatenate([r.depths for r in responses]),
        np.concatenate([r.depths for r in sequential]),
    )
    sequential_macs = sum(r.macs.total for r in sequential)
    served_macs, _, served_sampling = _merge_batches(responses)
    macs_equal = abs(served_macs - sequential_macs) < 1e-6
    if not macs_equal:
        raise AssertionError(f"{label}: MAC counts diverged")
    sequential_sampling = sum(r.timings.sampling for r in sequential)
    num_nodes = sum(t.shape[0] for t in ticks)
    return {
        "dataset": dataset_name,
        "suite": "streaming",
        "ticks": len(ticks),
        "distinct_batches": len({t.tobytes() for t in ticks}),
        "nodes": num_nodes,
        "sequential_wall_seconds": sequential_wall,
        "served_wall_seconds": served_wall,
        "throughput_speedup": sequential_wall / served_wall if served_wall else float("inf"),
        "predictions_equal": True,
        "depths_equal": True,
        "macs_equal": True,
        "cache_hit_rate": stats.cache_hit_rate,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "sequential_sampling_seconds": sequential_sampling,
        "served_sampling_seconds": served_sampling,
        "sampling_time_reduction": (
            1.0 - served_sampling / sequential_sampling if sequential_sampling else 0.0
        ),
        "served_latency_ms": stats.latency.scaled(1e3).as_dict(),
    }


def run_online_suite(
    context: TrainedContext, dataset_name: str, *, request_size: int,
    max_batch_size: int, num_requests: int,
) -> dict:
    """Micro-batching suite: tiny requests, per-request predict as baseline."""
    predictor = _predictor(context, batch_size=max_batch_size)
    rng = np.random.default_rng(5)
    test_idx = rng.permutation(np.asarray(context.dataset.split.test_idx))
    requests = batch_iterator(test_idx, request_size)[:num_requests]

    start = time.perf_counter()
    sequential = [predictor.predict(request) for request in requests]
    sequential_wall = time.perf_counter() - start

    config = ServingConfig(
        num_workers=WORKERS, max_batch_size=max_batch_size, max_wait_ms=2.0,
        cache_capacity=0,  # isolate the micro-batching effect
    )
    with InferenceServer(predictor, config) as server:
        start = time.perf_counter()
        responses = server.predict_many(requests, timeout=600.0)
        served_wall = time.perf_counter() - start
        stats = server.stats()

    label = f"{dataset_name}/online"
    _assert_equal(
        label, "predictions",
        np.concatenate([r.predictions for r in responses]),
        np.concatenate([r.predictions for r in sequential]),
    )
    _assert_equal(
        label, "depths",
        np.concatenate([r.depths for r in responses]),
        np.concatenate([r.depths for r in sequential]),
    )
    sequential_macs = sum(r.macs.total for r in sequential)
    served_macs, _, _ = _merge_batches(responses)
    num_nodes = sum(r.shape[0] for r in requests)
    return {
        "dataset": dataset_name,
        "suite": "online",
        "requests": len(requests),
        "request_size": request_size,
        "nodes": num_nodes,
        "avg_coalesced_batch_nodes": stats.avg_batch_nodes,
        "sequential_wall_seconds": sequential_wall,
        "served_wall_seconds": served_wall,
        "throughput_speedup": sequential_wall / served_wall if served_wall else float("inf"),
        "sequential_throughput_nodes_per_second": (
            num_nodes / sequential_wall if sequential_wall else float("inf")
        ),
        "served_throughput_nodes_per_second": (
            num_nodes / served_wall if served_wall else float("inf")
        ),
        "predictions_equal": True,
        "depths_equal": True,
        # Micro-batching shares supporting subgraphs, so the served MACs are
        # *lower* than per-request sequential MACs (paper Figure 5); the
        # ratio is a benefit, reported explicitly rather than asserted equal.
        "sequential_macs": sequential_macs,
        "served_macs": served_macs,
        "mac_reduction": 1.0 - served_macs / sequential_macs if sequential_macs else 0.0,
        "served_latency_ms": stats.latency.scaled(1e3).as_dict(),
    }


def run_scaling_suite(
    context: TrainedContext, dataset_name: str, *, tick_size: int, num_ticks: int,
    distinct: int,
) -> dict:
    """Worker-scaling record: same workload at 1 and WORKERS workers."""
    predictor = _predictor(context, batch_size=tick_size)
    ticks = _streaming_ticks(
        context, tick_size=tick_size, num_ticks=num_ticks, distinct=distinct, seed=7
    )
    walls = {}
    for workers in (1, WORKERS):
        config = ServingConfig(
            num_workers=workers, max_batch_size=tick_size, max_wait_ms=0.5,
            cache_capacity=max(2 * distinct, 8),
        )
        with InferenceServer(predictor, config) as server:
            start = time.perf_counter()
            server.predict_many(ticks, timeout=600.0)
            walls[workers] = time.perf_counter() - start
    return {
        "dataset": dataset_name,
        "suite": "scaling",
        "wall_seconds_1_worker": walls[1],
        f"wall_seconds_{WORKERS}_workers": walls[WORKERS],
        "worker_scaling_speedup": walls[1] / walls[WORKERS] if walls[WORKERS] else float("inf"),
    }


def sweep_run_dispatch(context: TrainedContext, dataset_name: str) -> list[dict]:
    """Sweep ``NAIConfig.run_dispatch_threshold`` (ROADMAP tunable)."""
    records = []
    test_idx = np.asarray(context.dataset.split.test_idx)
    for threshold in (0, 2, 8, 32, 128):
        config = context.nai_config(threshold_quantile=0.5).with_updates(
            run_dispatch_threshold=threshold
        )
        predictor = context.nai.build_predictor(policy="distance", config=config)
        predictor.prepare(context.dataset.graph, context.dataset.features)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            result = predictor.predict(test_idx)
            best = min(best, time.perf_counter() - start)
        records.append({
            "dataset": dataset_name,
            "run_dispatch_threshold": threshold,
            "wall_seconds": best,
            "propagation_seconds": result.timings.propagation,
        })
    return records


def run_bench(*, quick: bool = False, sweep: bool = False) -> dict:
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    datasets = QUICK_DATASETS if quick else FULL_DATASETS
    tick_size = 64 if quick else 100
    num_ticks = 12 if quick else 40
    distinct = 2 if quick else 4
    request_size = 2 if quick else 4
    num_requests = 30 if quick else 120

    suites: list[dict] = []
    sweeps: list[dict] = []
    for dataset_name in datasets:
        context = get_context(dataset_name, profile=profile)
        streaming = run_streaming_suite(
            context, dataset_name, tick_size=tick_size, num_ticks=num_ticks,
            distinct=distinct,
        )
        online = run_online_suite(
            context, dataset_name, request_size=request_size,
            max_batch_size=tick_size, num_requests=num_requests,
        )
        scaling = run_scaling_suite(
            context, dataset_name, tick_size=tick_size, num_ticks=num_ticks,
            distinct=distinct,
        )
        suites.extend([streaming, online, scaling])
        if sweep:
            sweeps.extend(sweep_run_dispatch(context, dataset_name))
        print(
            f"{dataset_name:12s} streaming {streaming['throughput_speedup']:.2f}x "
            f"(cache hit {streaming['cache_hit_rate']:.0%}, sampling "
            f"-{streaming['sampling_time_reduction']:.0%}) | online "
            f"{online['throughput_speedup']:.2f}x (MACs -{online['mac_reduction']:.0%}) "
            f"| {WORKERS}-worker scaling {scaling['worker_scaling_speedup']:.2f}x"
        )

    streaming_records = [s for s in suites if s["suite"] == "streaming"]
    online_records = [s for s in suites if s["suite"] == "online"]
    seq_wall = sum(s["sequential_wall_seconds"] for s in online_records)
    srv_wall = sum(s["served_wall_seconds"] for s in online_records)
    aggregate = {
        "workers": WORKERS,
        "online_throughput_speedup": seq_wall / srv_wall if srv_wall else float("inf"),
        "streaming_throughput_speedup": (
            sum(s["sequential_wall_seconds"] for s in streaming_records)
            / sum(s["served_wall_seconds"] for s in streaming_records)
        ),
        "all_predictions_equal": all(
            s["predictions_equal"] for s in suites if "predictions_equal" in s
        ),
        "all_depths_equal": all(
            s["depths_equal"] for s in suites if "depths_equal" in s
        ),
        "streaming_macs_equal": all(s["macs_equal"] for s in streaming_records),
        "min_cache_hit_rate": min(s["cache_hit_rate"] for s in streaming_records),
        "min_sampling_time_reduction": min(
            s["sampling_time_reduction"] for s in streaming_records
        ),
    }
    return {
        "benchmark": "bench_serving",
        "quick": quick,
        "profile": {
            "dataset_scale": profile.dataset_scale,
            "depth": profile.depth,
            "seed": profile.seed,
        },
        "workload": {
            "tick_size": tick_size, "num_ticks": num_ticks, "distinct": distinct,
            "request_size": request_size, "num_requests": num_requests,
        },
        "suites": suites,
        "run_dispatch_sweep": sweeps,
        "aggregate": aggregate,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small deterministic smoke run (used by the tier-1 marker test)",
    )
    parser.add_argument(
        "--sweep-run-dispatch", action="store_true",
        help="also sweep NAIConfig.run_dispatch_threshold (ROADMAP tunable)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serving.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick, sweep=args.sweep_run_dispatch)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    aggregate = report["aggregate"]
    print(
        f"aggregate: online {aggregate['online_throughput_speedup']:.2f}x, "
        f"streaming {aggregate['streaming_throughput_speedup']:.2f}x "
        f"({report['aggregate']['workers']} workers), outputs equal: "
        f"{aggregate['all_predictions_equal'] and aggregate['all_depths_equal']}, "
        f"min cache hit rate {aggregate['min_cache_hit_rate']:.0%}"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
