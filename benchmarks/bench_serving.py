"""Serving benchmark: the online subsystem vs. sequential ``NAIPredictor.predict``.

Three suites, each on the synthetic paper datasets, recorded to
``BENCH_serving.json``:

``streaming`` (equivalence + cache)
    A tick stream whose batches recur (sessions / hot queries).  The server
    (4 workers, subgraph cache) must produce **bit-identical predictions,
    depth distributions and MAC counts** to running ``predict`` over the
    same tick stream — the cache only skips MAC-free sampling work — while
    finishing faster.  Records the cache hit rate and the sampling-time
    reduction.

``online`` (micro-batching throughput)
    The serving workload the paper motivates: many small requests arriving
    independently.  The baseline answers each request with its own
    ``predict`` call; the server coalesces them into micro-batches whose
    supporting subgraphs are shared.  Predictions and depth distributions
    stay bit-identical (per-node results are batch-independent); total MACs
    *drop* — the paper's Figure-5 batch-size effect captured by the serving
    layer — and throughput is the headline ``>= 2x``.

``scaling`` (worker-pool)
    The streaming workload at 1 vs. 4 workers, recording how much the pool
    adds on this machine (on a single-core container the speedup comes from
    the cache and batching; on multi-core hardware the workers multiply it).

``adaptive`` (batching controllers)
    Static vs. adaptive batching policies (:mod:`repro.serving.controller`).
    Two parts: deterministic *virtual-time* load-ramp curves through the
    :mod:`repro.serving.simulator` — throughput and p95 latency per policy
    across offered-load levels, with ``QueuePressurePolicy`` asserted to
    beat ``StaticPolicy`` under overload while holding the SLO — and a
    real-server streaming run under each policy asserted **bit-identical**
    (predictions, depths, MAC totals) to the sequential baseline: the
    controllers move batching, never results.

Every equivalence claim is asserted, not just recorded: a divergence fails
the benchmark.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full run
    PYTHONPATH=src python benchmarks/bench_serving.py --quick    # smoke run
    PYTHONPATH=src python benchmarks/bench_serving.py --sweep-run-dispatch
    PYTHONPATH=src python benchmarks/bench_serving.py --suites adaptive

The ``--quick`` mode is wired into tier-1 as the ``serving_bench`` pytest
marker (see ``tests/benchmarks/test_bench_serving.py``); the adaptive suite
alone runs under the ``adaptive_bench`` marker.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ServingConfig
from repro.experiments import ExperimentProfile
from repro.experiments.context import TrainedContext, get_context
from repro.graph.sampling import batch_iterator
from repro.serving import (
    InferenceServer,
    LinearServiceModel,
    MarginalLatencyPolicy,
    QueuePressurePolicy,
    StaticPolicy,
    ramp_arrivals,
    simulate_policy,
)

#: Full profile: the three synthetic paper datasets.
FULL_PROFILE = ExperimentProfile(
    dataset_scale=1.0,
    depth=5,
    classifier_epochs=40,
    gate_epochs=15,
    batch_size=500,
    seed=0,
)
FULL_DATASETS = ("flickr-sim", "arxiv-sim", "products-sim")

#: Quick profile: one small dataset, enough to exercise every code path.
QUICK_PROFILE = ExperimentProfile(
    dataset_scale=0.3,
    depth=3,
    classifier_epochs=20,
    gate_epochs=10,
    batch_size=200,
    seed=0,
)
QUICK_DATASETS = ("flickr-sim",)

WORKERS = 4


def _predictor(context: TrainedContext, *, batch_size: int):
    config = context.nai_config(threshold_quantile=0.5, batch_size=batch_size)
    predictor = context.nai.build_predictor(policy="distance", config=config)
    predictor.prepare(context.dataset.graph, context.dataset.features)
    return predictor


def _streaming_ticks(context: TrainedContext, *, tick_size: int, num_ticks: int,
                     distinct: int, seed: int = 3) -> list[np.ndarray]:
    """A stream drawn (with recurrence) from a pool of ``distinct`` sessions.

    Every session is exactly ``tick_size`` nodes so the micro-batcher (whose
    node budget is ``tick_size`` in the streaming suite) maps each request to
    one micro-batch — the served batch composition matches the sequential
    baseline exactly, which the bit-identical MAC assertion requires.
    """
    rng = np.random.default_rng(seed)
    test_idx = np.asarray(context.dataset.split.test_idx)
    pool = [
        batch for batch in batch_iterator(rng.permutation(test_idx), tick_size)
        if batch.shape[0] == tick_size
    ][:distinct]
    # First visit every distinct session once (cold), then recur.
    order = list(range(len(pool)))
    order += list(rng.integers(0, len(pool), size=num_ticks - len(pool)))
    return [pool[i] for i in order]


def _assert_equal(label: str, name: str, lhs, rhs) -> None:
    if not np.array_equal(lhs, rhs):
        raise AssertionError(f"{label}: served {name} diverged from sequential")


def _merge_batches(responses) -> tuple[float, float, float]:
    """(total MACs, total engine seconds, sampling seconds), deduped by batch."""
    seen: dict[int, object] = {}
    for response in responses:
        seen[response.batch_id] = response
    macs = sum(r.batch_macs.total for r in seen.values())
    total = sum(r.batch_timings.total for r in seen.values())
    sampling = sum(r.batch_timings.sampling for r in seen.values())
    return macs, total, sampling


def run_streaming_suite(
    context: TrainedContext, dataset_name: str, *, tick_size: int,
    num_ticks: int, distinct: int,
) -> dict:
    """Equivalence + cache suite: identical tick streams through both paths."""
    predictor = _predictor(context, batch_size=tick_size)
    ticks = _streaming_ticks(
        context, tick_size=tick_size, num_ticks=num_ticks, distinct=distinct
    )

    start = time.perf_counter()
    sequential = [predictor.predict(tick) for tick in ticks]
    sequential_wall = time.perf_counter() - start

    config = ServingConfig(
        num_workers=WORKERS, max_batch_size=tick_size, max_wait_ms=0.5,
        cache_capacity=max(2 * distinct, 8),
    )
    with InferenceServer(predictor, config) as server:
        start = time.perf_counter()
        responses = server.predict_many(ticks, timeout=600.0)
        served_wall = time.perf_counter() - start
        stats = server.stats()

    label = f"{dataset_name}/streaming"
    _assert_equal(
        label, "predictions",
        np.concatenate([r.predictions for r in responses]),
        np.concatenate([r.predictions for r in sequential]),
    )
    _assert_equal(
        label, "depths",
        np.concatenate([r.depths for r in responses]),
        np.concatenate([r.depths for r in sequential]),
    )
    sequential_macs = sum(r.macs.total for r in sequential)
    served_macs, _, served_sampling = _merge_batches(responses)
    macs_equal = abs(served_macs - sequential_macs) < 1e-6
    if not macs_equal:
        raise AssertionError(f"{label}: MAC counts diverged")
    sequential_sampling = sum(r.timings.sampling for r in sequential)
    num_nodes = sum(t.shape[0] for t in ticks)
    return {
        "dataset": dataset_name,
        "suite": "streaming",
        "ticks": len(ticks),
        "distinct_batches": len({t.tobytes() for t in ticks}),
        "nodes": num_nodes,
        "sequential_wall_seconds": sequential_wall,
        "served_wall_seconds": served_wall,
        "throughput_speedup": sequential_wall / served_wall if served_wall else float("inf"),
        "predictions_equal": True,
        "depths_equal": True,
        "macs_equal": True,
        "cache_hit_rate": stats.cache_hit_rate,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "sequential_sampling_seconds": sequential_sampling,
        "served_sampling_seconds": served_sampling,
        "sampling_time_reduction": (
            1.0 - served_sampling / sequential_sampling if sequential_sampling else 0.0
        ),
        "served_latency_ms": stats.latency.scaled(1e3).as_dict(),
    }


def run_online_suite(
    context: TrainedContext, dataset_name: str, *, request_size: int,
    max_batch_size: int, num_requests: int,
) -> dict:
    """Micro-batching suite: tiny requests, per-request predict as baseline."""
    predictor = _predictor(context, batch_size=max_batch_size)
    rng = np.random.default_rng(5)
    test_idx = rng.permutation(np.asarray(context.dataset.split.test_idx))
    requests = batch_iterator(test_idx, request_size)[:num_requests]

    start = time.perf_counter()
    sequential = [predictor.predict(request) for request in requests]
    sequential_wall = time.perf_counter() - start

    config = ServingConfig(
        num_workers=WORKERS, max_batch_size=max_batch_size, max_wait_ms=2.0,
        cache_capacity=0,  # isolate the micro-batching effect
    )
    with InferenceServer(predictor, config) as server:
        start = time.perf_counter()
        responses = server.predict_many(requests, timeout=600.0)
        served_wall = time.perf_counter() - start
        stats = server.stats()

    label = f"{dataset_name}/online"
    _assert_equal(
        label, "predictions",
        np.concatenate([r.predictions for r in responses]),
        np.concatenate([r.predictions for r in sequential]),
    )
    _assert_equal(
        label, "depths",
        np.concatenate([r.depths for r in responses]),
        np.concatenate([r.depths for r in sequential]),
    )
    sequential_macs = sum(r.macs.total for r in sequential)
    served_macs, _, _ = _merge_batches(responses)
    num_nodes = sum(r.shape[0] for r in requests)
    return {
        "dataset": dataset_name,
        "suite": "online",
        "requests": len(requests),
        "request_size": request_size,
        "nodes": num_nodes,
        "avg_coalesced_batch_nodes": stats.avg_batch_nodes,
        "sequential_wall_seconds": sequential_wall,
        "served_wall_seconds": served_wall,
        "throughput_speedup": sequential_wall / served_wall if served_wall else float("inf"),
        "sequential_throughput_nodes_per_second": (
            num_nodes / sequential_wall if sequential_wall else float("inf")
        ),
        "served_throughput_nodes_per_second": (
            num_nodes / served_wall if served_wall else float("inf")
        ),
        "predictions_equal": True,
        "depths_equal": True,
        # Micro-batching shares supporting subgraphs, so the served MACs are
        # *lower* than per-request sequential MACs (paper Figure 5); the
        # ratio is a benefit, reported explicitly rather than asserted equal.
        "sequential_macs": sequential_macs,
        "served_macs": served_macs,
        "mac_reduction": 1.0 - served_macs / sequential_macs if sequential_macs else 0.0,
        "served_latency_ms": stats.latency.scaled(1e3).as_dict(),
    }


def run_scaling_suite(
    context: TrainedContext, dataset_name: str, *, tick_size: int, num_ticks: int,
    distinct: int,
) -> dict:
    """Worker-scaling record: same workload at 1 and WORKERS workers."""
    predictor = _predictor(context, batch_size=tick_size)
    ticks = _streaming_ticks(
        context, tick_size=tick_size, num_ticks=num_ticks, distinct=distinct, seed=7
    )
    walls = {}
    for workers in (1, WORKERS):
        config = ServingConfig(
            num_workers=workers, max_batch_size=tick_size, max_wait_ms=0.5,
            cache_capacity=max(2 * distinct, 8),
        )
        with InferenceServer(predictor, config) as server:
            start = time.perf_counter()
            server.predict_many(ticks, timeout=600.0)
            walls[workers] = time.perf_counter() - start
    return {
        "dataset": dataset_name,
        "suite": "scaling",
        "wall_seconds_1_worker": walls[1],
        f"wall_seconds_{WORKERS}_workers": walls[WORKERS],
        "worker_scaling_speedup": walls[1] / walls[WORKERS] if walls[WORKERS] else float("inf"),
    }


#: Virtual-time cost model of the load-ramp curves: a per-batch overhead
#: (supporting-subgraph BFS + extraction) plus a per-node propagation cost.
VIRTUAL_SERVICE = LinearServiceModel(overhead_seconds=0.004, per_node_seconds=1e-4)
VIRTUAL_SLO_SECONDS = 0.050
#: Offered-load sweep: burst inter-arrival gaps from below to well above the
#: static configuration's service capacity (2-node requests; the static
#: policy serves at most 8 nodes / 4.8 ms ≈ 1.67 nodes/ms).
VIRTUAL_BURST_GAPS = (0.004, 0.002, 0.001, 0.0005)


def _virtual_controllers() -> dict:
    return {
        "static": lambda: StaticPolicy(8, 0.002),
        "queue_pressure": lambda: QueuePressurePolicy(
            base_batch_size=8,
            batch_size_ceiling=64,
            base_wait_seconds=0.002,
            wait_seconds_ceiling=0.008,
            widen_depth=6,
            shrink_depth=1,
            levels=3,
            hold_decisions=1,
        ),
        "marginal_latency": lambda: MarginalLatencyPolicy(
            slo_seconds=VIRTUAL_SLO_SECONDS,
            base_batch_size=8,
            batch_size_ceiling=64,
            base_wait_seconds=0.002,
            wait_seconds_ceiling=0.008,
        ),
    }


def run_virtual_ramp_curves(*, quick: bool) -> dict:
    """Deterministic static-vs-adaptive throughput/latency curves.

    One point per (policy, offered load): the same scripted load ramp
    replayed through each controller on a ``FakeClock``.  The numbers are
    exact — identical on every machine and every run — so the overload
    assertions (adaptive beats static, p95 within the SLO) are as strict
    here as in ``tests/serving/test_controller.py``.
    """
    burst = 120 if quick else 300
    curves: dict[str, list[dict]] = {name: [] for name in _virtual_controllers()}
    for gap in VIRTUAL_BURST_GAPS:
        arrivals = ramp_arrivals(
            idle_requests=10,
            burst_requests=burst,
            drain_requests=10,
            idle_gap_seconds=0.005,
            burst_gap_seconds=gap,
            nodes_per_request=2,
        )
        for name, build in _virtual_controllers().items():
            report = simulate_policy(build(), arrivals, VIRTUAL_SERVICE)
            record = report.as_dict()
            record["burst_gap_seconds"] = gap
            record["offered_nodes_per_second"] = 2.0 / gap
            curves[name].append(record)
    overloaded = [
        index for index, gap in enumerate(VIRTUAL_BURST_GAPS) if 2.0 / gap > 1600.0
    ]
    heaviest = max(overloaded)
    for index in overloaded:
        static_point = curves["static"][index]
        adaptive_point = curves["queue_pressure"][index]
        # Under overload the adaptive policy must hold the SLO and beat the
        # static p95; aggregate throughput is strictly higher wherever the
        # static backlog outlives the arrivals (always at the heaviest load
        # level — milder bursts may drain inside the schedule for both).
        if adaptive_point["latency_ms"]["p95"] > VIRTUAL_SLO_SECONDS * 1e3:
            raise AssertionError(
                "adaptive virtual ramp: QueuePressurePolicy broke the p95 SLO "
                f"at burst gap {VIRTUAL_BURST_GAPS[index]}"
            )
        if adaptive_point["latency_ms"]["p95"] >= static_point["latency_ms"]["p95"]:
            raise AssertionError(
                "adaptive virtual ramp: QueuePressurePolicy p95 did not beat "
                f"StaticPolicy at burst gap {VIRTUAL_BURST_GAPS[index]}"
            )
        if index == heaviest and not (
            adaptive_point["throughput_nodes_per_second"]
            > static_point["throughput_nodes_per_second"]
        ):
            raise AssertionError(
                "adaptive virtual ramp: QueuePressurePolicy did not beat "
                f"StaticPolicy throughput at burst gap {VIRTUAL_BURST_GAPS[index]}"
            )
    return {
        "service_model": {
            "overhead_seconds": VIRTUAL_SERVICE.overhead_seconds,
            "per_node_seconds": VIRTUAL_SERVICE.per_node_seconds,
        },
        "slo_ms": VIRTUAL_SLO_SECONDS * 1e3,
        "curves": curves,
        "overload_speedup": (
            curves["queue_pressure"][heaviest]["throughput_nodes_per_second"]
            / curves["static"][heaviest]["throughput_nodes_per_second"]
        ),
        "queue_pressure_beats_static": True,
        "queue_pressure_p95_within_slo": True,
    }


def run_adaptive_suite(
    context: TrainedContext, dataset_name: str, *, tick_size: int,
    num_ticks: int, distinct: int,
) -> dict:
    """Batching-controller suite: policy equivalence + load-ramp curves.

    The real-server part replays one streaming tick stream under every
    policy.  Each tick fills the width budget exactly, so batch composition
    is pinned and all three policies must reproduce the sequential
    predictions, depth distributions *and MAC totals* bit-for-bit — the
    acceptance bar for "batching changes, results don't".
    """
    predictor = _predictor(context, batch_size=tick_size)
    ticks = _streaming_ticks(
        context, tick_size=tick_size, num_ticks=num_ticks, distinct=distinct, seed=11
    )
    sequential = [predictor.predict(tick) for tick in ticks]
    sequential_macs = sum(r.macs.total for r in sequential)
    expected_predictions = np.concatenate([r.predictions for r in sequential])
    expected_depths = np.concatenate([r.depths for r in sequential])

    base = dict(
        num_workers=WORKERS, max_batch_size=tick_size, max_wait_ms=0.5,
        cache_capacity=max(2 * distinct, 8),
    )
    configs = {
        "static": ServingConfig(**base),
        "queue_pressure": ServingConfig(
            **base, batch_policy="queue_pressure", wait_ms_ceiling=4.0,
            pressure_widen_depth=3, pressure_shrink_depth=1,
        ),
        "marginal_latency": ServingConfig(
            **base, batch_policy="marginal_latency", latency_slo_ms=250.0,
        ),
    }
    policies: dict[str, dict] = {}
    for name, config in configs.items():
        with InferenceServer(predictor, config) as server:
            start = time.perf_counter()
            responses = server.predict_many(ticks, timeout=600.0)
            wall = time.perf_counter() - start
            stats = server.stats()
        label = f"{dataset_name}/adaptive/{name}"
        _assert_equal(
            label, "predictions",
            np.concatenate([r.predictions for r in responses]),
            expected_predictions,
        )
        _assert_equal(
            label, "depths",
            np.concatenate([r.depths for r in responses]),
            expected_depths,
        )
        served_macs, _, _ = _merge_batches(responses)
        if abs(served_macs - sequential_macs) >= 1e-6:
            raise AssertionError(f"{label}: MAC totals diverged from sequential")
        policies[name] = {
            "wall_seconds": wall,
            "throughput_nodes_per_second": stats.throughput_nodes_per_second,
            "latency_ms": stats.latency.scaled(1e3).as_dict(),
            "batch_width_p50": stats.batch_width_p50,
            "batch_width_p95": stats.batch_width_p95,
            "controller_adjustments": stats.controller_adjustments,
            "served_macs": served_macs,
            "predictions_equal": True,
            "depths_equal": True,
            "macs_equal": True,
        }
    return {
        "dataset": dataset_name,
        "suite": "adaptive",
        "ticks": len(ticks),
        "tick_size": tick_size,
        "sequential_macs": sequential_macs,
        "policies": policies,
        "all_policies_bit_identical": True,
    }


def sweep_run_dispatch(context: TrainedContext, dataset_name: str) -> list[dict]:
    """Sweep ``NAIConfig.run_dispatch_threshold`` (ROADMAP tunable)."""
    records = []
    test_idx = np.asarray(context.dataset.split.test_idx)
    for threshold in (0, 2, 8, 32, 128):
        config = context.nai_config(threshold_quantile=0.5).with_updates(
            run_dispatch_threshold=threshold
        )
        predictor = context.nai.build_predictor(policy="distance", config=config)
        predictor.prepare(context.dataset.graph, context.dataset.features)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            result = predictor.predict(test_idx)
            best = min(best, time.perf_counter() - start)
        records.append({
            "dataset": dataset_name,
            "run_dispatch_threshold": threshold,
            "wall_seconds": best,
            "propagation_seconds": result.timings.propagation,
        })
    return records


ALL_SUITES = ("streaming", "online", "scaling", "adaptive")


def run_bench(
    *, quick: bool = False, sweep: bool = False,
    suites_selected: tuple[str, ...] = ALL_SUITES,
) -> dict:
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    datasets = QUICK_DATASETS if quick else FULL_DATASETS
    tick_size = 64 if quick else 100
    num_ticks = 12 if quick else 40
    distinct = 2 if quick else 4
    request_size = 2 if quick else 4
    num_requests = 30 if quick else 120

    suites: list[dict] = []
    sweeps: list[dict] = []
    # The virtual-time ramp depends only on the scripted scenario (not on
    # any dataset), so it is computed exactly once per run.
    virtual_ramp = (
        run_virtual_ramp_curves(quick=quick)
        if "adaptive" in suites_selected
        else None
    )
    for dataset_name in datasets:
        context = get_context(dataset_name, profile=profile)
        headline = [dataset_name.ljust(12)]
        if "streaming" in suites_selected:
            streaming = run_streaming_suite(
                context, dataset_name, tick_size=tick_size, num_ticks=num_ticks,
                distinct=distinct,
            )
            suites.append(streaming)
            headline.append(
                f"streaming {streaming['throughput_speedup']:.2f}x "
                f"(cache hit {streaming['cache_hit_rate']:.0%}, sampling "
                f"-{streaming['sampling_time_reduction']:.0%})"
            )
        if "online" in suites_selected:
            online = run_online_suite(
                context, dataset_name, request_size=request_size,
                max_batch_size=tick_size, num_requests=num_requests,
            )
            suites.append(online)
            headline.append(
                f"online {online['throughput_speedup']:.2f}x "
                f"(MACs -{online['mac_reduction']:.0%})"
            )
        if "scaling" in suites_selected:
            scaling = run_scaling_suite(
                context, dataset_name, tick_size=tick_size, num_ticks=num_ticks,
                distinct=distinct,
            )
            suites.append(scaling)
            headline.append(
                f"{WORKERS}-worker scaling "
                f"{scaling['worker_scaling_speedup']:.2f}x"
            )
        if "adaptive" in suites_selected:
            adaptive = run_adaptive_suite(
                context, dataset_name, tick_size=tick_size, num_ticks=num_ticks,
                distinct=distinct,
            )
            suites.append(adaptive)
            headline.append(
                "adaptive overload "
                f"{virtual_ramp['overload_speedup']:.2f}x"
            )
        if sweep:
            sweeps.extend(sweep_run_dispatch(context, dataset_name))
        print(" | ".join(headline))

    streaming_records = [s for s in suites if s["suite"] == "streaming"]
    online_records = [s for s in suites if s["suite"] == "online"]
    adaptive_records = [s for s in suites if s["suite"] == "adaptive"]
    seq_wall = sum(s["sequential_wall_seconds"] for s in online_records)
    srv_wall = sum(s["served_wall_seconds"] for s in online_records)
    aggregate = {
        "workers": WORKERS,
        "all_predictions_equal": all(
            s["predictions_equal"] for s in suites if "predictions_equal" in s
        ),
        "all_depths_equal": all(
            s["depths_equal"] for s in suites if "depths_equal" in s
        ),
    }
    if online_records:
        aggregate["online_throughput_speedup"] = (
            seq_wall / srv_wall if srv_wall else float("inf")
        )
    if streaming_records:
        aggregate["streaming_throughput_speedup"] = (
            sum(s["sequential_wall_seconds"] for s in streaming_records)
            / sum(s["served_wall_seconds"] for s in streaming_records)
        )
        aggregate["streaming_macs_equal"] = all(
            s["macs_equal"] for s in streaming_records
        )
        aggregate["min_cache_hit_rate"] = min(
            s["cache_hit_rate"] for s in streaming_records
        )
        aggregate["min_sampling_time_reduction"] = min(
            s["sampling_time_reduction"] for s in streaming_records
        )
    if adaptive_records:
        aggregate["adaptive_policies_bit_identical"] = all(
            s["all_policies_bit_identical"] for s in adaptive_records
        )
    if virtual_ramp is not None:
        aggregate["adaptive_overload_speedup"] = virtual_ramp["overload_speedup"]
        aggregate["adaptive_p95_within_slo"] = virtual_ramp[
            "queue_pressure_p95_within_slo"
        ]
    return {
        "benchmark": "bench_serving",
        "quick": quick,
        "profile": {
            "dataset_scale": profile.dataset_scale,
            "depth": profile.depth,
            "seed": profile.seed,
        },
        "workload": {
            "tick_size": tick_size, "num_ticks": num_ticks, "distinct": distinct,
            "request_size": request_size, "num_requests": num_requests,
            "suites_selected": list(suites_selected),
        },
        "suites": suites,
        "virtual_ramp": virtual_ramp,
        "run_dispatch_sweep": sweeps,
        "aggregate": aggregate,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small deterministic smoke run (used by the tier-1 marker test)",
    )
    parser.add_argument(
        "--sweep-run-dispatch", action="store_true",
        help="also sweep NAIConfig.run_dispatch_threshold (ROADMAP tunable)",
    )
    parser.add_argument(
        "--suites", default=",".join(ALL_SUITES),
        help="comma-separated subset of suites to run "
        f"(default: {','.join(ALL_SUITES)})",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serving.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    suites_selected = tuple(
        name.strip() for name in args.suites.split(",") if name.strip()
    )
    unknown = set(suites_selected) - set(ALL_SUITES)
    if unknown:
        parser.error(f"unknown suites: {sorted(unknown)}")

    report = run_bench(
        quick=args.quick, sweep=args.sweep_run_dispatch,
        suites_selected=suites_selected,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    aggregate = report["aggregate"]
    parts = []
    if "online_throughput_speedup" in aggregate:
        parts.append(f"online {aggregate['online_throughput_speedup']:.2f}x")
    if "streaming_throughput_speedup" in aggregate:
        parts.append(
            f"streaming {aggregate['streaming_throughput_speedup']:.2f}x"
        )
    if "adaptive_overload_speedup" in aggregate:
        parts.append(
            f"adaptive overload {aggregate['adaptive_overload_speedup']:.2f}x"
        )
    print(
        f"aggregate: {', '.join(parts)} ({aggregate['workers']} workers), "
        "outputs equal: "
        f"{aggregate['all_predictions_equal'] and aggregate['all_depths_equal']}"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
