"""Figure 6: sensitivity of Inception Distillation to λ, T and r (Flickr).

Paper reference (Figure 6): the distillation weight λ matters most (for the
multi-scale stage it should stay high), temperature has a milder effect, and
growing the ensemble r helps until low-quality shallow classifiers join the
teacher.  Every sweep point retrains the classifier stack, so this is the
slowest benchmark in the suite.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_sensitivity_study

LAMBDAS = (0.1, 0.5, 0.9)
TEMPERATURES = (1.0, 1.5, 2.0)
ENSEMBLE_SIZES = (1, 2, 3)


def test_figure6_sensitivity(benchmark, profile):
    study = run_once(
        benchmark,
        run_sensitivity_study,
        "flickr-sim",
        profile=profile,
        lambdas=LAMBDAS,
        temperatures=TEMPERATURES,
        ensemble_sizes=ENSEMBLE_SIZES,
    )
    print("\nFigure 6 — flickr-sim: f^(1) accuracy under hyper-parameter sweeps")
    for parameter, points in study.items():
        values = ", ".join(f"{p.value:g}:{p.accuracy * 100:.2f}%" for p in points)
        print(f"{parameter:<20} {values}")
        for point in points:
            benchmark.extra_info[f"{parameter}@{point.value:g}"] = round(point.accuracy, 4)

    for parameter, points in study.items():
        accuracies = [p.accuracy for p in points]
        # Sweeps stay within a sane band — no configuration collapses to chance.
        assert max(accuracies) - min(accuracies) < 0.5
        assert min(accuracies) > 0.2
