"""Failover benchmark: throughput under replica kills, rollout in flight.

Two record types, written to ``BENCH_failover.json``:

``failover_throughput``
    For every shard count: run the full test set through
    :class:`~repro.shard.ShardedPredictor` over a two-rail
    :class:`~repro.transport.ReplicatedTransport` (fault-injecting local
    rails, virtual-time retries) with **0 and 1 replica kills** — the
    1-kill run schedules a permanent mid-stream kill of rail 0 for every
    shard, so the whole workload fails over to the surviving rail.  Both
    runs **assert bit-identical predictions, exit depths and MAC totals**
    against the unsharded ``NAIPredictor`` and record wall clock,
    throughput and the retry/failover/health counters.

``rollout_in_flight``
    A versioned repartition rolled through live traffic on a
    :class:`~repro.shard.ShardRouter`: batches are submitted on the v0
    plan and left in flight, ``install_plan`` swaps in a v1 plan with a
    different shard count and strategy, more batches are submitted, and
    everything drains — zero failed requests, every response bit-identical
    to the oracle, throughput measured across the rollout.

Timing fields are machine-dependent and never gated; the ``*_equal``
flags and the deterministic offline ``macs_total`` are gated by
``check_bench.py`` against the committed ``BENCH_failover.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_failover.py            # full run
    PYTHONPATH=src python benchmarks/bench_failover.py --quick    # smoke run

``--quick`` is wired into tier-1 as the ``failover_bench`` pytest marker
(see ``tests/benchmarks/test_bench_failover.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ServingConfig, ShardConfig
from repro.experiments import ExperimentProfile
from repro.experiments.context import TrainedContext, get_context
from repro.serving.clock import FakeClock
from repro.shard import GraphPartitioner, ShardRouter, ShardedPredictor
from repro.transport import (
    FaultInjectingTransport,
    LocalTransport,
    RetryPolicy,
)

FULL_PROFILE = ExperimentProfile(
    dataset_scale=1.0,
    depth=5,
    classifier_epochs=40,
    gate_epochs=15,
    batch_size=500,
    seed=0,
)
FULL_DATASETS = ("flickr-sim", "arxiv-sim", "products-sim")

QUICK_PROFILE = ExperimentProfile(
    dataset_scale=0.3,
    depth=3,
    classifier_epochs=20,
    gate_epochs=10,
    batch_size=200,
    seed=0,
)
QUICK_DATASETS = ("flickr-sim",)

SHARD_COUNTS = (2, 4)
REPLICAS = 2
MAC_FIELDS = ("stationary", "propagation", "decision", "classification")

#: Zero-backoff retries on a virtual clock: the retry ladder runs without
#: a single real sleep, so the bench measures failover cost, not waiting.
FAST_RETRY = RetryPolicy(
    max_attempts=2,
    backoff_base_seconds=0.0,
    backoff_cap_seconds=0.0,
    jitter_fraction=0.0,
)


def _predictor(context: TrainedContext, *, batch_size: int):
    config = context.nai_config(threshold_quantile=0.5, batch_size=batch_size)
    predictor = context.nai.build_predictor(policy="distance", config=config)
    predictor.prepare(context.dataset.graph, context.dataset.features)
    return predictor


def _assert_bit_identical(label, result, baseline) -> None:
    if not np.array_equal(result.predictions, baseline.predictions):
        raise AssertionError(f"{label}: predictions diverged")
    if not np.array_equal(result.depths, baseline.depths):
        raise AssertionError(f"{label}: depths diverged")
    for name in MAC_FIELDS:
        if getattr(result.macs, name) != getattr(baseline.macs, name):
            raise AssertionError(f"{label}: MAC field {name} diverged")


def run_failover_suite(
    context: TrainedContext, dataset_name: str, *, batch_size: int
) -> list[dict]:
    predictor = _predictor(context, batch_size=batch_size)
    test_idx = np.asarray(context.dataset.split.test_idx)
    baseline = predictor.predict(test_idx)

    records = []
    for num_shards in SHARD_COUNTS:
        sharded = ShardedPredictor.from_predictor(predictor).prepare(
            context.dataset.graph,
            context.dataset.features,
            ShardConfig(
                num_shards=num_shards,
                strategy="degree_balanced",
                replication_factor=REPLICAS,
            ),
        )
        store = sharded.store
        for kills in (0, 1):
            rails = [
                FaultInjectingTransport(
                    LocalTransport(store.shards), replica_index=index
                )
                for index in range(REPLICAS)
            ]
            if kills:
                # Rail 0 loses every shard mid-stream and never heals: the
                # whole remaining workload fails over to rail 1.
                for shard_id in range(num_shards):
                    rails[0].schedule_kill(shard_id, 2, replica_index=0)
            store.use_replicated_transport(
                rails, retry_policy=FAST_RETRY, clock=FakeClock()
            )
            transport = store.transport
            try:
                start = time.perf_counter()
                result = sharded.predict(test_idx)
                wall = time.perf_counter() - start
            finally:
                store.use_transport(LocalTransport(store.shards))
                transport.close()
            label = f"{dataset_name}/x{num_shards}/kills={kills}"
            _assert_bit_identical(label, result, baseline)
            stats = transport.stats.as_dict()
            if kills and not stats["failovers"]:
                raise AssertionError(f"{label}: kill produced no failovers")
            records.append({
                "suite": "failover_throughput",
                "dataset": dataset_name,
                "num_shards": num_shards,
                "replicas": REPLICAS,
                "replica_kills": kills,
                "test_nodes": int(test_idx.shape[0]),
                "wall_seconds": wall,
                "throughput_nodes_per_second": (
                    test_idx.shape[0] / wall if wall else 0.0
                ),
                "predictions_equal": True,
                "depths_equal": True,
                "macs_equal": True,
                "macs_total": int(result.macs.total),
                "transport": stats,
            })
    return records


def run_rollout_suite(
    context: TrainedContext, dataset_name: str, *, batch_size: int
) -> dict:
    predictor = _predictor(context, batch_size=batch_size)
    graph = context.dataset.graph
    features = context.dataset.features
    test_idx = np.asarray(context.dataset.split.test_idx)
    baseline = predictor.predict(test_idx)
    batches = [
        test_idx[i:i + batch_size]
        for i in range(0, test_idx.shape[0], batch_size)
    ]

    old_config = ShardConfig(num_shards=2, strategy="hash")
    new_config = ShardConfig(num_shards=3, strategy="degree_balanced")
    old = ShardedPredictor.from_predictor(predictor).prepare(
        graph, features, old_config
    )
    new_plan = GraphPartitioner(new_config).partition(graph, version=1)
    new = ShardedPredictor.from_predictor(predictor).prepare(
        graph, features, new_config, plan=new_plan
    )
    serving = ServingConfig(
        num_workers=2,
        max_batch_size=batch_size,
        max_wait_ms=0.5,
        cache_capacity=8,
    )

    start = time.perf_counter()
    with ShardRouter(old, serving) as router:
        in_flight = [router.submit(batch, timeout=300.0) for batch in batches]
        router.install_plan(new)
        after = [router.submit(batch, timeout=300.0) for batch in batches]
        old_responses = [handle.result(timeout=300.0) for handle in in_flight]
        new_responses = [handle.result(timeout=300.0) for handle in after]
        retired = router.finish_rollout(timeout=300.0)
        state = router.rollout_state()
        stats = router.stats()
    wall = time.perf_counter() - start

    flags = {}
    for phase, responses in (("old", old_responses), ("new", new_responses)):
        predictions = np.concatenate([r.predictions for r in responses])
        depths = np.concatenate([r.depths for r in responses])
        flags[f"{phase}_plan_predictions_equal"] = bool(
            np.array_equal(predictions, baseline.predictions)
        )
        flags[f"{phase}_plan_depths_equal"] = bool(
            np.array_equal(depths, baseline.depths)
        )
    if not all(flags.values()):
        raise AssertionError(f"{dataset_name}: rollout responses diverged")
    if stats.requests_failed:
        raise AssertionError(
            f"{dataset_name}: {stats.requests_failed} requests failed "
            "during the rollout"
        )
    total_nodes = 2 * int(test_idx.shape[0])
    return {
        "suite": "rollout_in_flight",
        "dataset": dataset_name,
        "old_plan": {"version": 0, "num_shards": 2, "strategy": "hash"},
        "new_plan": {
            "version": 1, "num_shards": 3, "strategy": "degree_balanced",
        },
        "requests": 2 * len(batches),
        "nodes_served": total_nodes,
        "wall_seconds": wall,
        "throughput_nodes_per_second": total_nodes / wall if wall else 0.0,
        **flags,
        "requests_failed": int(stats.requests_failed),
        "retired_generations": retired,
        "final_plan_version": int(stats.plan_version),
        "rollout_state": state,
    }


def run_bench(*, quick: bool = False) -> dict:
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    datasets = QUICK_DATASETS if quick else FULL_DATASETS
    batch_size = 64 if quick else 100

    suites: list[dict] = []
    for dataset_name in datasets:
        context = get_context(dataset_name, profile=profile)
        failover = run_failover_suite(context, dataset_name, batch_size=batch_size)
        rollout = run_rollout_suite(context, dataset_name, batch_size=batch_size)
        suites.extend(failover)
        suites.append(rollout)
        degraded = min(
            one["throughput_nodes_per_second"]
            / zero["throughput_nodes_per_second"]
            for zero, one in zip(failover[::2], failover[1::2])
            if zero["throughput_nodes_per_second"]
        )
        print(
            f"{dataset_name:12s} bit-identical through failover at "
            f"x{', x'.join(str(s) for s in SHARD_COUNTS)} shards | 1-kill "
            f"throughput >= {degraded:.2f}x of clean | rollout "
            f"{rollout['requests']} requests, 0 failed, "
            f"{rollout['throughput_nodes_per_second']:.0f} nodes/s"
        )

    failover_records = [s for s in suites if s["suite"] == "failover_throughput"]
    rollout_records = [s for s in suites if s["suite"] == "rollout_in_flight"]
    aggregate = {
        "shard_counts": list(SHARD_COUNTS),
        "replicas": REPLICAS,
        "all_predictions_equal": all(
            s["predictions_equal"] for s in failover_records
        ) and all(
            s["old_plan_predictions_equal"] and s["new_plan_predictions_equal"]
            for s in rollout_records
        ),
        "all_macs_equal": all(s["macs_equal"] for s in failover_records),
        "total_failovers": sum(
            s["transport"]["failovers"] for s in failover_records
        ),
        "rollout_requests_failed": sum(
            s["requests_failed"] for s in rollout_records
        ),
        "min_degraded_throughput_ratio": min(
            one["throughput_nodes_per_second"]
            / zero["throughput_nodes_per_second"]
            for zero, one in zip(failover_records[::2], failover_records[1::2])
            if zero["throughput_nodes_per_second"]
        ),
    }
    return {
        "benchmark": "bench_failover",
        "quick": quick,
        "profile": {
            "dataset_scale": profile.dataset_scale,
            "depth": profile.depth,
            "seed": profile.seed,
        },
        "workload": {"batch_size": batch_size},
        "suites": suites,
        "aggregate": aggregate,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small deterministic smoke run (used by the tier-1 marker test)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_failover.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    aggregate = report["aggregate"]
    print(
        f"aggregate: bit-identical {aggregate['all_predictions_equal']}, "
        f"MACs equal {aggregate['all_macs_equal']}, "
        f"{aggregate['total_failovers']} failovers absorbed, degraded "
        f"throughput >= {aggregate['min_degraded_throughput_ratio']:.2f}x, "
        f"rollout failures {aggregate['rollout_requests_failed']}"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
