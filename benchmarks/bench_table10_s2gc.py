"""Table X: generalization of NAI to the S2GC backbone on Flickr.

Paper reference (Table X): with S2GC as the base model NAI achieves its
largest MAC reductions (27-44x on feature processing) at a ~1 point accuracy
cost, still well above the MLP students.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_generalization
from repro.metrics import format_table


def test_table10_s2gc_generalization(benchmark, profile):
    rows = run_once(
        benchmark, run_generalization, "s2gc", dataset_name="flickr-sim", profile=profile
    )
    print()
    print(format_table(rows, reference_method="S2GC", title="Table X — S2GC on flickr-sim"))
    by_method = {row.method: row for row in rows}
    assert by_method["NAI_d"].fp_macs_per_node < by_method["S2GC"].fp_macs_per_node
    assert by_method["NAI_d"].accuracy > by_method["GLNN"].accuracy
    for row in rows:
        benchmark.extra_info[f"{row.method}_acc"] = round(row.accuracy, 4)
