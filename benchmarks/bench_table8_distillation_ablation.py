"""Table VIII: ablation of Inception Distillation on the shallowest classifier.

Paper reference (Table VIII): the accuracy of f^(1) (the classifier every
aggressive early exit relies on) drops when either Single-Scale or
Multi-Scale Distillation is removed, and drops the most when both are
removed ("NAI w/o ID").
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import PAPER_DATASETS, run_distillation_ablation


def test_table8_distillation_ablation(benchmark, profile):
    table = run_once(
        benchmark, run_distillation_ablation, PAPER_DATASETS, profile=profile
    )
    print("\nTable VIII — accuracy of f^(1) under distillation ablations")
    header = f"{'variant':<14}" + "".join(f"{name:>16}" for name in PAPER_DATASETS)
    print(header)
    for variant, per_dataset in table.items():
        row = f"{variant:<14}" + "".join(
            f"{per_dataset[name] * 100:>16.2f}" for name in PAPER_DATASETS
        )
        print(row)
        for name, accuracy in per_dataset.items():
            benchmark.extra_info[f"{variant}@{name}"] = round(accuracy, 4)

    # Full Inception Distillation should not be worse than no distillation on
    # average across datasets (the paper reports consistent gains).
    def mean(variant):
        return sum(table[variant].values()) / len(table[variant])

    assert mean("NAI") >= mean("NAI w/o ID") - 0.01
