"""Observability benchmark: tracing overhead + end-to-end span coverage.

Two suites, each on the synthetic paper datasets, recorded to
``BENCH_observability.json``:

``server_overhead`` (tracing must be ~free)
    The pinned streaming workload of ``bench_serving.py`` through one
    :class:`~repro.serving.InferenceServer`, once untraced and once with a
    full-sampling :class:`~repro.obs.Tracer` attached.  Every tick exactly
    fills the width budget, so batch composition is pinned and both modes
    must reproduce the sequential predictions, depth distributions **and
    MAC totals** bit-for-bit — tracing observes, never changes results.
    The headline gate: best-of-``repeats`` traced throughput must stay
    within **>= 0.95x** of untraced (``tracing_overhead_within_slo``).

``routed_tracing`` (the spans must mean something)
    The routed online workload of ``bench_sharding.py`` through a
    :class:`~repro.shard.ShardRouter` with tracing and the metrics registry
    on: predictions and depths stay bit-identical to the sequential oracle,
    every submitted request produces exactly one ``route`` span, the
    critical-path analyzer decomposes the recorded latency into its
    components, the shard ranking is computed, and ``router.metrics_text()``
    scrapes the registry the stats published into.  ``--trace-output``
    additionally writes the traced run as a Chrome trace-event file
    (open at https://ui.perfetto.dev) — CI uploads one as an artifact.

Every equivalence claim is asserted, not just recorded: a divergence fails
the benchmark.  Timing fields are machine-dependent and never gated by
``check_bench.py``; the overhead SLO flag is gated, which is why it is
measured best-of-``repeats`` on the controlled single-server workload.

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py            # full run
    PYTHONPATH=src python benchmarks/bench_observability.py --quick    # smoke run
    PYTHONPATH=src python benchmarks/bench_observability.py \
        --quick --trace-output trace_observability.json

``--quick`` is wired into tier-1 as the ``obs_bench`` pytest marker
(see ``tests/benchmarks/test_bench_observability.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter as TallyCounter
from pathlib import Path

import numpy as np

from repro.core import ServingConfig, ShardConfig
from repro.experiments import ExperimentProfile
from repro.experiments.context import TrainedContext, get_context
from repro.graph.sampling import batch_iterator
from repro.obs import CriticalPathAnalyzer, TraceRecorder, Tracer, write_chrome_trace
from repro.serving import InferenceServer
from repro.shard import ShardRouter, ShardedPredictor

FULL_PROFILE = ExperimentProfile(
    dataset_scale=1.0,
    depth=5,
    classifier_epochs=40,
    gate_epochs=15,
    batch_size=500,
    seed=0,
)
FULL_DATASETS = ("flickr-sim", "arxiv-sim", "products-sim")

QUICK_PROFILE = ExperimentProfile(
    dataset_scale=0.3,
    depth=3,
    classifier_epochs=20,
    gate_epochs=10,
    batch_size=200,
    seed=0,
)
QUICK_DATASETS = ("flickr-sim",)

WORKERS = 4
#: Traced throughput must stay within this fraction of untraced.
OVERHEAD_SLO = 0.95


def _predictor(context: TrainedContext, *, batch_size: int):
    config = context.nai_config(threshold_quantile=0.5, batch_size=batch_size)
    predictor = context.nai.build_predictor(policy="distance", config=config)
    predictor.prepare(context.dataset.graph, context.dataset.features)
    return predictor


def _streaming_ticks(
    context: TrainedContext, *, tick_size: int, num_ticks: int, distinct: int,
    seed: int = 3,
) -> list[np.ndarray]:
    """Recurring full-width ticks: batch composition pinned (see bench_serving)."""
    rng = np.random.default_rng(seed)
    test_idx = np.asarray(context.dataset.split.test_idx)
    pool = [
        batch for batch in batch_iterator(rng.permutation(test_idx), tick_size)
        if batch.shape[0] == tick_size
    ][:distinct]
    order = list(range(len(pool)))
    order += list(rng.integers(0, len(pool), size=num_ticks - len(pool)))
    return [pool[i] for i in order]


def _assert_equal(label: str, name: str, lhs, rhs) -> None:
    if not np.array_equal(lhs, rhs):
        raise AssertionError(f"{label}: {name} diverged")


def _merged_macs(responses) -> float:
    seen = {response.batch_id: response for response in responses}
    return sum(r.batch_macs.total for r in seen.values())


def run_server_overhead_suite(
    context: TrainedContext, dataset_name: str, *, tick_size: int,
    num_ticks: int, distinct: int, repeats: int,
) -> dict:
    """Traced vs. untraced single-server streaming: identical results, ~no cost."""
    predictor = _predictor(context, batch_size=tick_size)
    ticks = _streaming_ticks(
        context, tick_size=tick_size, num_ticks=num_ticks, distinct=distinct
    )
    sequential = [predictor.predict(tick) for tick in ticks]
    expected_predictions = np.concatenate([r.predictions for r in sequential])
    expected_depths = np.concatenate([r.depths for r in sequential])
    sequential_macs = sum(r.macs.total for r in sequential)

    config = ServingConfig(
        num_workers=WORKERS, max_batch_size=tick_size, max_wait_ms=0.5,
        cache_capacity=0,  # every tick computes: the fairest overhead probe
    )
    label = f"{dataset_name}/server_overhead"

    def timed_run(mode: str, tracer):
        with InferenceServer(predictor, config, tracer=tracer) as server:
            start = time.perf_counter()
            responses = server.predict_many(ticks, timeout=600.0)
            wall = time.perf_counter() - start
        _assert_equal(
            f"{label}/{mode}", "predictions",
            np.concatenate([r.predictions for r in responses]),
            expected_predictions,
        )
        _assert_equal(
            f"{label}/{mode}", "depths",
            np.concatenate([r.depths for r in responses]),
            expected_depths,
        )
        if abs(_merged_macs(responses) - sequential_macs) >= 1e-6:
            raise AssertionError(f"{label}/{mode}: MAC totals diverged")
        return wall

    # The per-run wall is tens of milliseconds in quick mode, so scheduler
    # jitter swamps any single measurement.  Run untraced/traced back to
    # back ``repeats`` times and gate on the *best* pairwise ratio: the
    # overhead claim holds if any clean pair shows it.
    walls = {"untraced": float("inf"), "traced": float("inf")}
    pair_ratios = []
    spans_recorded = 0
    for _ in range(repeats):
        untraced_wall = timed_run("untraced", None)
        tracer = Tracer(TraceRecorder(capacity=65536))
        traced_wall = timed_run("traced", tracer)
        spans_recorded = len(tracer.spans())
        if sum(1 for s in tracer.spans() if s.name == "request") != len(ticks):
            raise AssertionError(f"{label}: traced run lost request spans")
        walls["untraced"] = min(walls["untraced"], untraced_wall)
        walls["traced"] = min(walls["traced"], traced_wall)
        pair_ratios.append(
            untraced_wall / traced_wall if traced_wall else float("inf")
        )

    throughput_ratio = max(pair_ratios)
    if throughput_ratio < OVERHEAD_SLO:
        raise AssertionError(
            f"{label}: traced throughput {throughput_ratio:.3f}x of untraced "
            f"(SLO {OVERHEAD_SLO}x)"
        )
    num_nodes = sum(t.shape[0] for t in ticks)
    return {
        "dataset": dataset_name,
        "suite": "server_overhead",
        "ticks": len(ticks),
        "nodes": num_nodes,
        "repeats": repeats,
        "sequential_macs": sequential_macs,
        "untraced_wall_seconds": walls["untraced"],
        "traced_wall_seconds": walls["traced"],
        "traced_throughput_ratio": throughput_ratio,
        "pair_throughput_ratios": pair_ratios,
        "overhead_slo": OVERHEAD_SLO,
        "spans_recorded": spans_recorded,
        "spans_per_request": spans_recorded / len(ticks),
        "predictions_identical": True,
        "depths_identical": True,
        "macs_identical": True,
        "tracing_overhead_within_slo": True,
    }


def run_routed_tracing_suite(
    context: TrainedContext, dataset_name: str, *, request_size: int,
    max_batch_size: int, num_requests: int, num_shards: int,
    trace_output: Path | None,
) -> dict:
    """Traced routed serving: identical results + a meaningful span tree."""
    predictor = _predictor(context, batch_size=max_batch_size)
    rng = np.random.default_rng(5)
    test_idx = rng.permutation(np.asarray(context.dataset.split.test_idx))
    requests = batch_iterator(test_idx, request_size)[:num_requests]
    oracle_predictions = np.concatenate(
        [predictor.predict(request).predictions for request in requests]
    )
    oracle_depths = np.concatenate(
        [predictor.predict(request).depths for request in requests]
    )
    sharded = ShardedPredictor.from_predictor(predictor).prepare(
        context.dataset.graph,
        context.dataset.features,
        ShardConfig(num_shards=num_shards, strategy="degree_balanced"),
    )
    serving = ServingConfig(
        num_workers=max(1, WORKERS // num_shards),
        max_batch_size=max_batch_size, max_wait_ms=2.0, cache_capacity=0,
    )
    label = f"{dataset_name}/routed_tracing/x{num_shards}"

    walls: dict[str, float] = {}
    tracer = Tracer(TraceRecorder(capacity=65536))
    for mode, mode_tracer in (("untraced", None), ("traced", tracer)):
        # The store keeps whatever tracer was last attached; pin it per run.
        sharded.store.use_tracer(mode_tracer)
        with ShardRouter(sharded, serving, tracer=mode_tracer) as router:
            start = time.perf_counter()
            responses = router.predict_many(requests, timeout=600.0)
            walls[mode] = time.perf_counter() - start
            if mode == "traced":
                stats = router.stats()
                metrics_text = router.metrics_text()
        _assert_equal(
            f"{label}/{mode}", "predictions",
            np.concatenate([r.predictions for r in responses]),
            oracle_predictions,
        )
        _assert_equal(
            f"{label}/{mode}", "depths",
            np.concatenate([r.depths for r in responses]),
            oracle_depths,
        )
    sharded.store.use_tracer(None)

    spans = tracer.spans()
    span_counts = TallyCounter(span.name for span in spans)
    if span_counts["route"] != len(requests):
        raise AssertionError(
            f"{label}: {span_counts['route']} route spans for "
            f"{len(requests)} requests"
        )
    if "repro_requests_completed_total" not in metrics_text:
        raise AssertionError(f"{label}: registry scrape is missing serving totals")

    analyzer = CriticalPathAnalyzer(spans)
    breakdowns = analyzer.request_breakdowns()
    totals = analyzer.breakdown_totals()
    # Per-shard sub-requests run in parallel, so component time can
    # legitimately sum past the route wall time (>100% attributed).
    attributed = sum(v for k, v in totals.items() if k not in ("total", "unattributed"))
    loads = analyzer.shard_load()
    if trace_output is not None:
        write_chrome_trace(spans, trace_output)

    num_nodes = sum(r.shape[0] for r in requests)
    return {
        "dataset": dataset_name,
        "suite": "routed_tracing",
        "num_shards": num_shards,
        "requests": len(requests),
        "nodes": num_nodes,
        "untraced_wall_seconds": walls["untraced"],
        "traced_wall_seconds": walls["traced"],
        "traced_throughput_ratio": (
            walls["untraced"] / walls["traced"] if walls["traced"] else float("inf")
        ),
        "fleet_requests_completed": stats.requests_completed,
        "spans_recorded": len(spans),
        "span_counts": dict(sorted(span_counts.items())),
        "route_span_count_equal": True,
        "request_breakdowns": len(breakdowns),
        "breakdown_totals": totals,
        "attributed_fraction": (
            attributed / totals["total"] if totals.get("total") else 0.0
        ),
        "shard_ranking": analyzer.shard_ranking(),
        "shard_rows": {str(load.shard_id): load.rows for load in loads},
        "metrics_exported": metrics_text.count("\n# TYPE") + 1,
        "predictions_identical": True,
        "depths_identical": True,
        "chrome_trace": str(trace_output) if trace_output is not None else None,
    }


def run_bench(
    *, quick: bool = False, trace_output: Path | None = None,
) -> dict:
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    datasets = QUICK_DATASETS if quick else FULL_DATASETS
    tick_size = 64 if quick else 100
    num_ticks = 32 if quick else 40
    distinct = 2 if quick else 4
    repeats = 5 if quick else 3
    request_size = 2 if quick else 4
    num_requests = 24 if quick else 120
    num_shards = 2 if quick else 4

    suites: list[dict] = []
    for dataset_name in datasets:
        context = get_context(dataset_name, profile=profile)
        overhead = run_server_overhead_suite(
            context, dataset_name, tick_size=tick_size, num_ticks=num_ticks,
            distinct=distinct, repeats=repeats,
        )
        suites.append(overhead)
        routed = run_routed_tracing_suite(
            context, dataset_name, request_size=request_size,
            max_batch_size=tick_size, num_requests=num_requests,
            num_shards=num_shards,
            # One sample Chrome trace is enough for the artifact.
            trace_output=trace_output if dataset_name == datasets[0] else None,
        )
        suites.append(routed)
        print(
            f"{dataset_name.ljust(12)} | tracing {overhead['traced_throughput_ratio']:.3f}x "
            f"untraced ({overhead['spans_per_request']:.1f} spans/request) | "
            f"routed x{num_shards}: {routed['spans_recorded']} spans, "
            f"{routed['attributed_fraction']:.0%} latency attributed, "
            f"hottest shard {routed['shard_ranking'][0]}"
        )

    overhead_records = [s for s in suites if s["suite"] == "server_overhead"]
    routed_records = [s for s in suites if s["suite"] == "routed_tracing"]
    aggregate = {
        "workers": WORKERS,
        "all_predictions_identical": all(s["predictions_identical"] for s in suites),
        "all_depths_identical": all(s["depths_identical"] for s in suites),
        "all_macs_identical": all(s["macs_identical"] for s in overhead_records),
        "tracing_overhead_within_slo": all(
            s["tracing_overhead_within_slo"] for s in overhead_records
        ),
        "min_traced_throughput_ratio": min(
            s["traced_throughput_ratio"] for s in overhead_records
        ),
        "route_span_counts_equal": all(
            s["route_span_count_equal"] for s in routed_records
        ),
        "min_attributed_fraction": min(
            s["attributed_fraction"] for s in routed_records
        ),
    }
    return {
        "benchmark": "bench_observability",
        "quick": quick,
        "profile": {
            "dataset_scale": profile.dataset_scale,
            "depth": profile.depth,
            "seed": profile.seed,
        },
        "workload": {
            "tick_size": tick_size, "num_ticks": num_ticks, "distinct": distinct,
            "repeats": repeats, "request_size": request_size,
            "num_requests": num_requests, "num_shards": num_shards,
        },
        "suites": suites,
        "aggregate": aggregate,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small deterministic smoke run (used by the tier-1 marker test)",
    )
    parser.add_argument(
        "--trace-output", type=Path, default=None,
        help="also write the traced routed run as a Chrome trace-event file "
        "(open at https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_observability.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick, trace_output=args.trace_output)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    aggregate = report["aggregate"]
    print(
        f"aggregate: tracing {aggregate['min_traced_throughput_ratio']:.3f}x "
        f"untraced (SLO {OVERHEAD_SLO}x), "
        f"{aggregate['min_attributed_fraction']:.0%} latency attributed, "
        "outputs identical: "
        f"{aggregate['all_predictions_identical'] and aggregate['all_macs_identical']}"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
