"""CI bench-regression gate: equivalence fields must never drift.

The benchmark reports (``BENCH_*.json``) mix two kinds of numbers: *timing*
(wall seconds, throughput, latency percentiles — machine-dependent, never
gated) and *equivalence* (bit-identical flags and MAC totals — deterministic
properties of the code, gated here).  This script loads freshly produced
quick-run reports and compares their equivalence surface against the
committed ``BENCH_*.json`` artifacts:

* every equivalence **flag** (``*_equal``, ``*identical*``, ``*within_slo``
  booleans) must be ``True`` in both the fresh report and the committed
  baseline — a ``False`` anywhere means a bit-equivalence claim regressed;
* every **MAC total** present at the same path in both reports must match
  exactly — but only when the two reports describe the same workload
  (``quick`` mode, profile and workload signature), since MAC totals are
  workload-dependent by construction.  Timing fields are excluded by name.

Usage (the CI quick-bench job)::

    PYTHONPATH=src python benchmarks/bench_serving.py --quick --output fresh/BENCH_serving.json
    ... (other benches) ...
    python benchmarks/check_bench.py --fresh-dir fresh

Exit status 0 = gate passed; 1 = mismatch (printed per finding).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Substrings that mark a numeric field as timing/throughput — never gated.
TIMING_MARKERS = (
    "seconds",
    "_ms",
    "latency",
    "throughput",
    "wall",
    "speedup",
    "rate",
    "reduction",
)

#: Substrings that mark a boolean field as an equivalence claim.
FLAG_MARKERS = ("equal", "identical", "within_slo")


def is_equivalence_flag(key: str, value) -> bool:
    return isinstance(value, bool) and any(m in key for m in FLAG_MARKERS)


def is_mac_total(key: str, value) -> bool:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return False
    if any(marker in key for marker in TIMING_MARKERS):
        return False
    return "macs" in key


def walk(tree, path=""):
    """Yield ``(path, key, value)`` for every leaf in a JSON tree."""
    if isinstance(tree, dict):
        for key, value in tree.items():
            yield from walk(value, f"{path}.{key}" if path else key)
    elif isinstance(tree, list):
        for index, value in enumerate(tree):
            yield from walk(value, f"{path}[{index}]")
    else:
        key = path.rsplit(".", 1)[-1]
        yield path, key, tree


def equivalence_flags(report: dict) -> dict[str, bool]:
    flags = {}
    for path, key, value in walk(report):
        if is_equivalence_flag(key, value):
            flags[path] = value
    return flags


def mac_totals(report: dict) -> dict[str, float]:
    totals = {}
    for path, key, value in walk(report):
        if is_mac_total(key, value):
            totals[path] = float(value)
    return totals


def workload_signature(report: dict):
    """What must match for MAC totals to be comparable across reports."""
    return (
        report.get("quick"),
        json.dumps(report.get("profile"), sort_keys=True),
        json.dumps(report.get("workload"), sort_keys=True),
    )


def check_wave_report(name: str, label: str, report: dict) -> list[str]:
    """Wave-specific gate: MACs-per-request must fall as width grows.

    The wave scheduler's acceptance claim is *shape*, not a single flag:
    on the benchmark's Zipfian workload, MACs-per-request must be
    monotone non-increasing across the swept widths and the widest
    setting must reduce the width-1 cost by at least 1.5x.  Both the
    fresh report and the committed baseline are held to it.
    """
    failures: list[str] = []
    by_width = report.get("aggregate", {}).get("macs_per_request_by_width", {})
    try:
        series = sorted(
            (int(width), float(value)) for width, value in by_width.items()
        )
    except (TypeError, ValueError):
        series = []
    if len(series) < 2:
        failures.append(
            f"{name}: {label} report carries no macs_per_request_by_width sweep"
        )
        return failures
    for (narrow, cost_narrow), (wide, cost_wide) in zip(series, series[1:]):
        if cost_wide > cost_narrow:
            failures.append(
                f"{name}: {label} macs_per_request rose from width {narrow} "
                f"({cost_narrow}) to width {wide} ({cost_wide})"
            )
    widest_cost = series[-1][1]
    reduction = series[0][1] / widest_cost if widest_cost else 0.0
    if reduction < 1.5:
        failures.append(
            f"{name}: {label} macs_per_request reduction at width "
            f"{series[-1][0]} is {reduction:.2f}x, below the 1.5x floor"
        )
    return failures


def check_report(name: str, fresh: dict, committed: dict) -> list[str]:
    """All mismatches between one fresh report and its committed baseline."""
    failures: list[str] = []
    fresh_flags = equivalence_flags(fresh)
    committed_flags = equivalence_flags(committed)
    if not fresh_flags:
        failures.append(f"{name}: fresh report carries no equivalence flags")
    for path, value in fresh_flags.items():
        if value is not True:
            failures.append(f"{name}: fresh equivalence flag {path} is False")
    for path, value in committed_flags.items():
        if value is not True:
            failures.append(f"{name}: committed equivalence flag {path} is False")

    if workload_signature(fresh) == workload_signature(committed):
        fresh_macs = mac_totals(fresh)
        committed_macs = mac_totals(committed)
        shared = sorted(set(fresh_macs) & set(committed_macs))
        if committed_macs and not shared:
            # Some reports gate equivalence through flags only (no MAC
            # totals at all) — that is fine; a baseline that *has* totals
            # the fresh report dropped is a schema regression.
            failures.append(
                f"{name}: same workload but the fresh report lost every "
                "MAC-total field the baseline carries"
            )
        for path in shared:
            if fresh_macs[path] != committed_macs[path]:
                failures.append(
                    f"{name}: MAC total {path} drifted "
                    f"({committed_macs[path]} -> {fresh_macs[path]})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--fresh-dir", type=Path, required=True,
        help="directory holding the freshly produced BENCH_*.json reports",
    )
    parser.add_argument(
        "--baseline-dir", type=Path, default=REPO_ROOT,
        help="directory holding the committed BENCH_*.json baselines "
        "(default: the repository root)",
    )
    args = parser.parse_args(argv)

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"check_bench: no BENCH_*.json baselines in {args.baseline_dir}")
        return 1
    failures: list[str] = []
    checked = 0
    for baseline_path in baselines:
        fresh_path = args.fresh_dir / baseline_path.name
        if not fresh_path.exists():
            failures.append(
                f"{baseline_path.name}: no fresh report in {args.fresh_dir} "
                "(did the quick-bench step run?)"
            )
            continue
        fresh = json.loads(fresh_path.read_text())
        committed = json.loads(baseline_path.read_text())
        failures.extend(check_report(baseline_path.name, fresh, committed))
        if baseline_path.name == "BENCH_wave.json":
            failures.extend(
                check_wave_report(baseline_path.name, "fresh", fresh)
            )
            failures.extend(
                check_wave_report(baseline_path.name, "committed", committed)
            )
        checked += 1

    if failures:
        print(f"check_bench: {len(failures)} mismatch(es):")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(
        f"check_bench: OK — {checked} report(s) checked, every equivalence "
        "flag true, MAC totals consistent"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
