"""Hot-path microbenchmark: fused zero-copy engine vs. the seed baseline.

Runs the synthetic Table-5 inference workloads (vanilla backbone, NAI_d and
NAI_g) through both ``NAIConfig.engine`` implementations and records
end-to-end plus per-procedure wall-clock timings to ``BENCH_hot_path.json``:

* ``engine="reference"`` reproduces the seed hot path exactly (per-depth BFS,
  fancy-indexed CSR submatrices, full feature-matrix copies, Python-dict
  index maps) — the pre-change baseline.
* ``engine="fused"`` is the zero-copy masked-SpMM engine with hop-indexed
  support pruning, measured in both float64 and float32.

Every comparison asserts that predictions, depth distributions and MAC
counts are unchanged, so the recorded speedups are pure implementation wins.
The JSON gives this and future PRs a perf trajectory; rerun after touching
the inference engine, the sampling layer or the sparse kernels.

Usage::

    PYTHONPATH=src python benchmarks/bench_hot_path.py            # full run
    PYTHONPATH=src python benchmarks/bench_hot_path.py --quick    # smoke run
    PYTHONPATH=src python benchmarks/bench_hot_path.py --output /tmp/bench.json

The ``--quick`` mode trains a much smaller context (same code path, tiny
workload) and is wired into tier-1 as a smoke test via the
``hot_path_bench`` pytest marker (see ``tests/benchmarks/``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments import ExperimentProfile
from repro.experiments.context import TrainedContext, get_context

#: Engine/dtype variants measured against the float64 reference baseline.
VARIANTS: tuple[tuple[str, str], ...] = (("fused", "float64"), ("fused", "float32"))

#: Full profile: the three synthetic paper datasets at their Table-5 sizes.
FULL_PROFILE = ExperimentProfile(
    dataset_scale=1.0,
    depth=5,
    classifier_epochs=40,
    gate_epochs=15,
    batch_size=500,
    seed=0,
)
FULL_DATASETS = ("flickr-sim", "arxiv-sim", "products-sim")

#: Quick profile: one small dataset, enough to exercise every code path.
QUICK_PROFILE = ExperimentProfile(
    dataset_scale=0.3,
    depth=3,
    classifier_epochs=20,
    gate_epochs=10,
    batch_size=200,
    seed=0,
)
QUICK_DATASETS = ("flickr-sim",)

#: (label, policy, threshold_quantile) — the Table-5 style inference settings.
WORKLOAD_SETTINGS = (
    ("vanilla", "none", None),
    ("nai_distance", "distance", 0.5),
    ("nai_gate", "gate", None),
)


def _timing_dict(result) -> dict[str, float]:
    t = result.timings
    return {
        "sampling": t.sampling,
        "stationary": t.stationary,
        "propagation": t.propagation,
        "decision": t.decision,
        "classification": t.classification,
        "total": t.total,
        "propagation_plus_sampling": t.propagation + t.sampling,
    }


def _measure(context: TrainedContext, policy: str, config, repeats: int):
    """Best-of-``repeats`` inference run (training is cached, only inference repeats)."""
    best = None
    best_wall = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = context.nai.evaluate(context.dataset, policy=policy, config=config)
        wall = time.perf_counter() - start
        if wall < best_wall:
            best, best_wall = result, wall
    return best, best_wall


def run_workload(
    context: TrainedContext,
    dataset_name: str,
    label: str,
    policy: str,
    threshold_quantile: float | None,
    repeats: int,
) -> dict:
    """One Table-5 setting through the baseline and every fused variant."""
    if policy == "none":
        config = context.vanilla_config()
    elif threshold_quantile is not None:
        config = context.nai_config(threshold_quantile=threshold_quantile)
    else:
        config = context.nai_config()

    baseline, baseline_wall = _measure(
        context, policy, config.with_updates(engine="reference", dtype="float64"), repeats
    )
    record = {
        "dataset": dataset_name,
        "workload": label,
        "policy": policy,
        "num_nodes": baseline.num_nodes,
        "depth_distribution": baseline.depth_distribution(),
        "reference": {"wall_seconds": baseline_wall, "timings": _timing_dict(baseline)},
        "variants": {},
    }
    for engine, dtype in VARIANTS:
        result, wall = _measure(
            context, policy, config.with_updates(engine=engine, dtype=dtype), repeats
        )
        predictions_equal = bool(np.array_equal(baseline.predictions, result.predictions))
        depths_equal = bool(np.array_equal(baseline.depths, result.depths))
        macs_equal = bool(abs(baseline.macs.total - result.macs.total) < 1e-6)
        if not (predictions_equal and depths_equal and macs_equal):
            raise AssertionError(
                f"{dataset_name}/{label} {engine}/{dtype}: engine outputs diverged "
                f"(predictions_equal={predictions_equal}, depths_equal={depths_equal}, "
                f"macs_equal={macs_equal})"
            )
        ref_hot = record["reference"]["timings"]["propagation_plus_sampling"]
        hot = result.timings.propagation + result.timings.sampling
        record["variants"][f"{engine}_{dtype}"] = {
            "wall_seconds": wall,
            "timings": _timing_dict(result),
            "predictions_equal": predictions_equal,
            "depths_equal": depths_equal,
            "macs_equal": macs_equal,
            "hot_path_speedup": ref_hot / hot if hot > 0 else float("inf"),
            "end_to_end_speedup": baseline_wall / wall if wall > 0 else float("inf"),
        }
    return record


def aggregate(records: list[dict]) -> dict:
    """Fleet-level speedups: total reference hot-path seconds over total fused."""
    summary: dict[str, dict] = {}
    ref_hot = sum(r["reference"]["timings"]["propagation_plus_sampling"] for r in records)
    ref_total = sum(r["reference"]["timings"]["total"] for r in records)
    for engine, dtype in VARIANTS:
        key = f"{engine}_{dtype}"
        hot = sum(r["variants"][key]["timings"]["propagation_plus_sampling"] for r in records)
        total = sum(r["variants"][key]["timings"]["total"] for r in records)
        summary[key] = {
            "hot_path_seconds": hot,
            "hot_path_speedup": ref_hot / hot if hot > 0 else float("inf"),
            "total_speedup": ref_total / total if total > 0 else float("inf"),
            "all_outputs_equal": all(
                r["variants"][key]["predictions_equal"] and r["variants"][key]["depths_equal"]
                for r in records
            ),
        }
    summary["reference_hot_path_seconds"] = ref_hot
    return summary


def run_bench(*, quick: bool = False, repeats: int | None = None) -> dict:
    """Run the full (or quick) benchmark matrix and return the report dict."""
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    datasets = QUICK_DATASETS if quick else FULL_DATASETS
    repeats = repeats if repeats is not None else (2 if quick else 5)

    records = []
    for dataset_name in datasets:
        context = get_context(dataset_name, profile=profile)
        for label, policy, quantile in WORKLOAD_SETTINGS:
            record = run_workload(context, dataset_name, label, policy, quantile, repeats)
            records.append(record)
            fused32 = record["variants"]["fused_float32"]
            print(
                f"{dataset_name:12s} {label:12s} "
                f"hot-path {record['reference']['timings']['propagation_plus_sampling'] * 1e3:7.1f}ms "
                f"-> {fused32['timings']['propagation_plus_sampling'] * 1e3:7.1f}ms "
                f"({fused32['hot_path_speedup']:.2f}x, outputs equal)"
            )
    report = {
        "benchmark": "bench_hot_path",
        "quick": quick,
        "repeats": repeats,
        "profile": {
            "dataset_scale": profile.dataset_scale,
            "depth": profile.depth,
            "batch_size": profile.batch_size,
            "seed": profile.seed,
        },
        "workloads": records,
        "aggregate": aggregate(records),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small deterministic smoke run (used by the tier-1 marker test)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="inference repetitions per measurement (best-of), default 5 (2 with --quick)",
    )
    parser.add_argument(
        "--output", type=Path, default=Path(__file__).resolve().parent.parent / "BENCH_hot_path.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be a positive integer")

    report = run_bench(quick=args.quick, repeats=args.repeats)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    agg = report["aggregate"]
    for key, stats in agg.items():
        if isinstance(stats, dict):
            print(
                f"aggregate {key}: hot-path {stats['hot_path_speedup']:.2f}x, "
                f"end-to-end {stats['total_speedup']:.2f}x, "
                f"outputs equal: {stats['all_outputs_equal']}"
            )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
