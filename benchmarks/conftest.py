"""Shared fixtures and profile for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  Model training
happens inside session-scoped fixtures (or the process-level experiment
cache), so the numbers produced by ``--benchmark-only`` measure inference /
experiment execution, not training.  Results are printed to stdout (run with
``-s`` to see them live) and the headline numbers are attached to the
pytest-benchmark JSON via ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.experiments import BENCHMARK_PROFILE, ExperimentProfile, get_context

#: Profile used by all benchmarks.  Scale 1.0 keeps the three datasets at
#: their default sizes (1.8k / 2.4k / 4k nodes) so the full suite finishes in
#: minutes on a laptop CPU while preserving the paper's relative ordering.
PROFILE: ExperimentProfile = BENCHMARK_PROFILE


@pytest.fixture(scope="session")
def profile() -> ExperimentProfile:
    return PROFILE


@pytest.fixture(scope="session")
def flickr_context(profile):
    return get_context("flickr-sim", profile=profile)


@pytest.fixture(scope="session")
def arxiv_context(profile):
    return get_context("arxiv-sim", profile=profile)


@pytest.fixture(scope="session")
def products_context(profile):
    return get_context("products-sim", profile=profile)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
