"""Table IX: generalization of NAI to the SIGN backbone on Flickr.

Paper reference (Table IX): with SIGN as the base model, NAI_d/NAI_g stay
within ~0.1 accuracy points of vanilla SIGN while cutting feature-processing
MACs by ~14x; GLNN/NOSMOG/TinyGNN lose 3-4 points.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_generalization
from repro.metrics import format_table


def test_table9_sign_generalization(benchmark, profile):
    rows = run_once(
        benchmark, run_generalization, "sign", dataset_name="flickr-sim", profile=profile
    )
    print()
    print(format_table(rows, reference_method="SIGN", title="Table IX — SIGN on flickr-sim"))
    by_method = {row.method: row for row in rows}
    assert by_method["NAI_d"].fp_macs_per_node < by_method["SIGN"].fp_macs_per_node
    assert by_method["NAI_d"].accuracy > by_method["GLNN"].accuracy
    for row in rows:
        benchmark.extra_info[f"{row.method}_acc"] = round(row.accuracy, 4)
