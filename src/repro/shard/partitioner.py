"""Edge-cut graph partitioning for the sharded store.

The node set is split into ``num_shards`` disjoint *ownership* sets; every
shard keeps the **full adjacency rows** of its owned nodes (the edge-cut
model), so edges whose endpoints live on different shards appear on both —
the remote endpoint becomes a *halo* (ghost) column of the local block (see
:mod:`repro.shard.store`).

Two deterministic strategies are provided:

``"hash"``
    Multiplicative hashing of the node id.  Stateless — any participant can
    compute ownership without a partition table — and well-spread regardless
    of id locality, at the cost of ignoring the degree profile.
``"degree_balanced"``
    Longest-processing-time greedy assignment: nodes are visited in
    decreasing degree order and placed on the shard with the least
    accumulated degree.  On heavy-tailed graphs (the synthetic suite's
    regime) this balances per-shard *edge* counts — and therefore adjacency
    memory and SpMM work — much more evenly than hashing.

Both are pure functions of (graph, config): repartitioning with the same
inputs reproduces the same plan, which the equivalence tests rely on.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, replace

import numpy as np

from ..core.config import ShardConfig
from ..exceptions import GraphConstructionError
from ..graph.sparse import CSRGraph

#: Knuth's multiplicative hash constant (2^32 / φ); spreads consecutive ids.
_HASH_MULTIPLIER = np.uint64(2654435761)


@dataclass(frozen=True)
class ShardPlan:
    """The result of partitioning: ownership plus cut diagnostics.

    Attributes
    ----------
    owner:
        ``(n,)`` shard id owning each node.
    owned:
        Per shard, the **sorted** global ids of its owned nodes.  Sorted
        ownership is load-bearing: shard row blocks sliced in this order
        preserve the global CSR's row/column ordering, which keeps sharded
        bundle assembly bit-identical to the single-process path.
    strategy:
        The :class:`~repro.core.config.ShardConfig` strategy that built the
        plan.
    cut_edges:
        Number of undirected edges whose endpoints live on different shards
        (each contributes a halo column to both owners' blocks).
    version:
        Monotonic plan version.  :meth:`~repro.shard.router.ShardRouter.
        install_plan` only accepts a plan newer than the active one, and the
        serving stats report which version answered each request — the
        substrate of live rollout.
    replicas:
        Per shard, the replica-rail ids hosting a read copy of that shard
        (``replicas[shard_id] -> (rail_id, ...)``), or ``None`` for the
        single-homed default.  Rail 0 is the primary fleet; hot shards —
        ranked by accumulated degree, the traffic proxy under node-adaptive
        propagation — list extra rails (see
        :class:`~repro.core.config.ShardConfig` replication knobs and
        :class:`~repro.transport.replica.ReplicatedTransport`).
    """

    owner: np.ndarray
    owned: tuple[np.ndarray, ...]
    strategy: str
    cut_edges: int
    version: int = 0
    replicas: tuple[tuple[int, ...], ...] | None = None

    @property
    def num_shards(self) -> int:
        return len(self.owned)

    @property
    def num_nodes(self) -> int:
        return int(self.owner.shape[0])

    @property
    def max_replication(self) -> int:
        """Replica count of the most-replicated shard (1 when unreplicated)."""
        if self.replicas is None:
            return 1
        return max(len(rail_ids) for rail_ids in self.replicas)

    def replicas_of(self, shard_id: int) -> tuple[int, ...]:
        """Rail ids hosting ``shard_id`` (``(0,)`` when unreplicated)."""
        if self.replicas is None:
            return (0,)
        return self.replicas[shard_id]

    def with_version(self, version: int) -> "ShardPlan":
        """Return a copy of the plan stamped with ``version``."""
        return replace(self, version=version)

    def with_replicas(
        self,
        replicas: tuple[tuple[int, ...], ...],
        *,
        version: int | None = None,
    ) -> "ShardPlan":
        """Return a copy with a new replica map (and optionally version).

        Ownership is untouched — moving replicas never moves data, which
        is what lets the rebalance advisor propose a plan the router can
        install without repartitioning.
        """
        if len(replicas) != self.num_shards:
            raise GraphConstructionError(
                f"replica map covers {len(replicas)} shards, plan has "
                f"{self.num_shards}"
            )
        replicas = tuple(tuple(int(r) for r in rail_ids) for rail_ids in replicas)
        if version is None:
            return replace(self, replicas=replicas)
        return replace(self, replicas=replicas, version=version)

    def shard_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Owning shard of every node in ``node_ids``."""
        return self.owner[np.asarray(node_ids, dtype=np.int64)]

    def shard_sizes(self) -> list[int]:
        """Number of owned nodes per shard."""
        return [int(ids.shape[0]) for ids in self.owned]


def plan_replicas_for_load(
    load,
    *,
    base: int,
    boost: int,
    hot_fraction: float,
) -> tuple[tuple[int, ...], ...]:
    """Load-ranked replica placement, shared by partitioner and advisor.

    Every shard gets rails ``0 .. base-1``; the hottest ``hot_fraction``
    of shards by ``load`` — at least one whenever ``boost > 0``, ties to
    the lower shard id — get ``boost`` extra rails on top.  ``load`` may
    be any per-shard non-negative weight: accumulated degree at partition
    time, windowed rows-per-second when the rebalance advisor re-plans
    from observations.
    """
    load = np.asarray(load, dtype=np.float64)
    num_shards = int(load.shape[0])
    if boost == 0:
        return tuple(tuple(range(base)) for _ in range(num_shards))
    num_hot = min(num_shards, max(1, math.ceil(hot_fraction * num_shards)))
    # Hottest first; load ties break to the lower shard id.
    ranked = np.lexsort((np.arange(num_shards), -load))
    hot = set(int(shard) for shard in ranked[:num_hot])
    return tuple(
        tuple(range(base + (boost if shard in hot else 0)))
        for shard in range(num_shards)
    )


class GraphPartitioner:
    """Builds a :class:`ShardPlan` for a graph under a :class:`ShardConfig`."""

    def __init__(self, config: ShardConfig) -> None:
        self.config = config

    def partition(self, graph: CSRGraph, *, version: int = 0) -> ShardPlan:
        """Assign every node of ``graph`` to a shard."""
        if graph.num_nodes < self.config.num_shards:
            raise GraphConstructionError(
                f"cannot split {graph.num_nodes} nodes into "
                f"{self.config.num_shards} shards"
            )
        if self.config.strategy == "hash":
            owner = self._hash_owners(graph.num_nodes)
        else:
            owner = self._degree_balanced_owners(graph)
        owned = tuple(
            np.flatnonzero(owner == shard).astype(np.int64)
            for shard in range(self.config.num_shards)
        )
        return ShardPlan(
            owner=owner,
            owned=owned,
            strategy=self.config.strategy,
            cut_edges=self._count_cut_edges(graph, owner),
            version=version,
            replicas=self._plan_replicas(graph, owner),
        )

    def _plan_replicas(
        self, graph: CSRGraph, owner: np.ndarray
    ) -> tuple[tuple[int, ...], ...]:
        """Degree-weighted replica placement.

        Every shard gets ``replication_factor`` replicas (rails ``0 ..
        factor-1``); the hottest ``hot_shard_fraction`` of shards by
        accumulated degree — the proxy for traffic under node-adaptive
        propagation, where hub-heavy shards answer the most fetch rounds —
        get ``hot_shard_boost`` extra rails on top.
        """
        config = self.config
        load = np.zeros(config.num_shards, dtype=np.float64)
        if config.hot_shard_boost > 0:
            np.add.at(load, owner, graph.degrees())
        return plan_replicas_for_load(
            load,
            base=config.replication_factor,
            boost=config.hot_shard_boost,
            hot_fraction=config.hot_shard_fraction,
        )

    # ------------------------------------------------------------------ #
    def _hash_owners(self, num_nodes: int) -> np.ndarray:
        ids = np.arange(num_nodes, dtype=np.uint64)
        hashed = (ids * _HASH_MULTIPLIER) & np.uint64(0xFFFFFFFF)
        return (hashed % np.uint64(self.config.num_shards)).astype(np.int64)

    def _degree_balanced_owners(self, graph: CSRGraph) -> np.ndarray:
        degrees = graph.degrees()
        # Decreasing degree, ties broken by node id for determinism.
        order = np.lexsort((np.arange(graph.num_nodes), -degrees))
        owner = np.empty(graph.num_nodes, dtype=np.int64)
        # Heap of (accumulated degree, node count, shard id): least load
        # wins, ties go to the emptier shard (so zero-degree tails spread
        # instead of piling onto shard 0), then the lowest shard id — the
        # same deterministic order as a lexsort per step, at O(n log k).
        heap = [(0.0, 0, shard) for shard in range(self.config.num_shards)]
        for node in order:
            load, count, shard = heapq.heappop(heap)
            owner[node] = shard
            heapq.heappush(heap, (load + float(degrees[node]), count + 1, shard))
        return owner

    @staticmethod
    def _count_cut_edges(graph: CSRGraph, owner: np.ndarray) -> int:
        coo = graph.adjacency.tocoo()
        cut = (owner[coo.row] != owner[coo.col]).sum()
        # Off-diagonal entries are stored in both directions; each cut edge
        # therefore contributes two mismatched entries.
        return int(cut) // 2
