"""Sharded stationary state: per-shard partials, exact reduction.

The single-process :class:`~repro.core.stationary.StationaryState` holds two
O(n) vectors for the whole graph — the scaling degrees and (transiently) the
weighted feature products.  Sharding splits exactly that state: every shard
computes the weighted-sum partial of its **owned** rows plus its slice of
the degree vector, and the coordinator reduces the partials.

The reduction uses the exact limb accumulator of
:mod:`repro.core.reduction`, the same primitive the single-process
:func:`~repro.core.stationary.compute_stationary_state` sums with.  Because
the per-term products are computed elementwise (identical on every shard)
and the accumulator is exact (order- and partition-independent), the reduced
``weighted_feature_sum`` is **bit-identical** to the unsharded one for every
shard count and partition strategy — re-sharding a deployment can never move
a prediction.

:class:`ShardedStationaryState` then exposes the same ``features_for`` /
``num_nodes`` / ``num_features`` surface as the dense state, serving each
node's degree from the shard that owns it, so the inference engine runs
unchanged on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.reduction import (
    merge_exponent_ranges,
    merge_limb_partials,
    plan_sum_grid,
    reconstruct_sums,
    weighted_sum_exponent_range,
    weighted_sum_limb_partials,
)
from ..exceptions import ShapeError
from .store import ShardedGraphStore


@dataclass(frozen=True)
class ShardedStationaryState:
    """``X^(∞)`` state split by ownership, API-compatible with the dense one.

    Attributes
    ----------
    weighted_feature_sum:
        The reduced global vector ``Σ_j (d_j + 1)^(1−γ) x_j`` — ``(f,)`` and
        replicated (it is tiny); bit-identical to the single-process value.
    shard_degrees:
        Per shard, ``d_i + 1`` of its owned nodes in the deployment dtype —
        the O(n) piece that is actually sharded.
    owner / local_row:
        Routing vectors: owning shard of each node and its row within that
        shard's degree array.
    """

    weighted_feature_sum: np.ndarray
    shard_degrees: tuple[np.ndarray, ...]
    owner: np.ndarray
    local_row: np.ndarray
    normalizer: float
    gamma: float

    @property
    def num_nodes(self) -> int:
        return int(self.owner.shape[0])

    @property
    def num_features(self) -> int:
        return int(self.weighted_feature_sum.shape[0])

    def degrees_for(self, node_ids: np.ndarray | None = None) -> np.ndarray:
        """``d_i + 1`` for ``node_ids`` (or all nodes), fetched from owners."""
        dtype = self.weighted_feature_sum.dtype
        if node_ids is None:
            out = np.empty(self.num_nodes, dtype=dtype)
            for shard_id, degrees in enumerate(self.shard_degrees):
                out[np.flatnonzero(self.owner == shard_id)] = degrees
            return out
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.size and (node_ids.min() < 0 or node_ids.max() >= self.num_nodes):
            raise ShapeError("node ids out of range for the stationary state")
        owners = self.owner[node_ids]
        rows = self.local_row[node_ids]
        out = np.empty(node_ids.shape[0], dtype=dtype)
        for shard_id, degrees in enumerate(self.shard_degrees):
            mask = owners == shard_id
            if mask.any():
                out[mask] = degrees[rows[mask]]
        return out

    def features_for(self, node_ids: np.ndarray | None = None) -> np.ndarray:
        """Stationary features for ``node_ids`` — same math as the dense state.

        The degree gather routes through the owning shards; the scaling and
        outer product are the exact expressions of
        :meth:`~repro.core.stationary.StationaryState.features_for`, applied
        to bit-identical inputs — so the output matches bit for bit.
        """
        degrees = self.degrees_for(node_ids)
        scale = np.power(degrees, self.gamma) / self.normalizer
        return np.outer(scale, self.weighted_feature_sum)


def compute_shard_stationary_partial(
    degrees_with_loops: np.ndarray,
    features: np.ndarray,
    *,
    gamma: float,
    dtype: np.dtype,
    grid,
) -> np.ndarray:
    """One shard's limb partial of the weighted feature sum.

    ``degrees_with_loops`` and ``features`` are the shard's owned slices;
    ``grid`` must be the globally agreed :class:`~repro.core.reduction.SumGrid`.
    Streamed over row chunks, so the shard never materialises its full
    float64 product block.
    """
    weights = _shard_weights(degrees_with_loops, gamma=gamma, dtype=dtype)
    return weighted_sum_limb_partials(weights, features, grid)


def _shard_weights(
    degrees_with_loops: np.ndarray, *, gamma: float, dtype: np.dtype
) -> np.ndarray:
    """``(d_i + 1)^(1−γ)`` in the deployment dtype — elementwise, so the
    shard-local evaluation equals the global one on the owned slice."""
    degrees = np.asarray(degrees_with_loops, dtype=np.float64).astype(dtype)
    return np.power(degrees, np.asarray(1.0 - gamma, dtype=dtype))


def compute_sharded_stationary(store: ShardedGraphStore) -> ShardedStationaryState:
    """Per-shard stationary computation followed by the exact reduction.

    Mirrors the two-phase protocol a networked deployment would run:

    1. every shard reports the exponent range of its product terms; the
       coordinator merges them into the shared :class:`SumGrid`;
    2. every shard computes its integer limb partial; the coordinator sums
       the partials (associative integer adds) and reconstructs the float
       result with one correctly-rounded conversion.
    """
    dtype = store.dtype
    gamma = store.gamma
    shard_weights = [
        _shard_weights(shard.degrees_with_loops, gamma=gamma, dtype=dtype)
        for shard in store.shards
    ]
    grid = plan_sum_grid(
        merge_exponent_ranges(
            [
                weighted_sum_exponent_range(weights, shard.features)
                for weights, shard in zip(shard_weights, store.shards)
            ]
        )
    )
    if grid is None:
        weighted_sum = np.zeros(store.num_features, dtype=dtype)
    else:
        partials = merge_limb_partials(
            [
                compute_shard_stationary_partial(
                    shard.degrees_with_loops, shard.features,
                    gamma=gamma, dtype=dtype, grid=grid,
                )
                for shard in store.shards
            ]
        )
        weighted_sum = reconstruct_sums(partials, grid, dtype)

    shard_degrees = tuple(
        shard.degrees_with_loops.astype(dtype) for shard in store.shards
    )
    normalizer = float(2.0 * store.num_edges + store.num_nodes)
    return ShardedStationaryState(
        weighted_feature_sum=weighted_sum,
        shard_degrees=shard_degrees,
        owner=store.plan.owner,
        local_row=store.local_rows(np.arange(store.num_nodes)),
        normalizer=normalizer,
        gamma=gamma,
    )
