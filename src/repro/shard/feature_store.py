"""Tiered feature storage: hot rows in RAM, cold rows memory-mapped on disk.

The feature matrix dominates a shard's resident footprint — for wide
embeddings it dwarfs the CSR blocks — and it is exactly the part of the
state whose access pattern the paper's premise makes skewed: node-adaptive
propagation concentrates supporting subgraphs on hub nodes, so a small set
of high-degree rows is fetched over and over while the long tail is
touched rarely.  :class:`TieredFeatureStore` exploits that skew to serve
graphs whose feature matrix exceeds the configured memory budget:

* the full matrix is spilled once to an ``np.memmap`` file (the cold tier;
  the OS page cache does what it will, but the *process* keeps no
  full-size array);
* a byte-budgeted hot cache holds copies of the most valuable rows.
  Admission is TinyLFU-flavored: each row carries an aged access-frequency
  count plus a degree bias (``degree_weight · log1p(degree)``), and a
  candidate only displaces the least-recently-used resident row when its
  score wins — one noisy scan cannot flush the hub rows a skewed workload
  lives on.  Frequencies are halved periodically so the cache tracks the
  *current* workload, not history.

Row reads are bit-identical to the in-RAM array by construction (rows are
copied verbatim through the spill and back), so every serving output is
unchanged; only residency and latency move.  ``peak_resident_nbytes`` can
never exceed the budget: capacity is enforced in rows of
``budget_bytes // row_nbytes``.

:class:`TieredFeatureRows` is the drop-in facade: it implements the two
things the serving stack does with ``GraphShard.features`` — fancy-index
rows (:func:`~repro.transport.base.answer_from_shard`'s ``feature_rows``
path) and report ``.nbytes`` (the shard footprint) — so
:meth:`~repro.shard.store.ShardedGraphStore.use_tiered_features` swaps it
in without touching any transport or engine code.
"""

from __future__ import annotations

import os
import tempfile
import threading
import weakref

import numpy as np

from ..exceptions import ConfigurationError


def _cleanup(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


class TieredFeatureStore:
    """Admission-controlled RAM cache over a memory-mapped feature matrix."""

    def __init__(
        self,
        features: np.ndarray,
        *,
        budget_bytes: int,
        degrees: np.ndarray | None = None,
        degree_weight: float = 4.0,
        storage_dir: str | None = None,
        age_period: int | None = None,
    ) -> None:
        features = np.ascontiguousarray(features)
        if features.ndim != 2:
            raise ConfigurationError(
                f"features must be a 2-D matrix, got shape {features.shape}"
            )
        self.num_rows, self.num_cols = map(int, features.shape)
        self.dtype = features.dtype
        self.row_nbytes = int(features.itemsize * max(self.num_cols, 1))
        if budget_bytes < self.row_nbytes:
            raise ConfigurationError(
                f"budget_bytes ({budget_bytes}) must hold at least one "
                f"feature row ({self.row_nbytes} bytes)"
            )
        if degree_weight < 0:
            raise ConfigurationError(
                f"degree_weight must be non-negative, got {degree_weight}"
            )
        self.budget_bytes = int(budget_bytes)
        self.capacity_rows = max(1, self.budget_bytes // self.row_nbytes)

        # Spill once, then reopen read-only: the writable map (and the
        # original array) go out of scope, so the process-resident feature
        # state is the hot cache plus whatever pages the OS keeps warm.
        fd, path = tempfile.mkstemp(
            prefix="repro-features-", suffix=".bin", dir=storage_dir
        )
        os.close(fd)
        spill = np.memmap(
            path, dtype=self.dtype, mode="w+", shape=(self.num_rows, self.num_cols)
        )
        spill[:] = features
        spill.flush()
        del spill
        self._path = path
        self._cold = np.memmap(
            path, dtype=self.dtype, mode="r", shape=(self.num_rows, self.num_cols)
        )
        self._finalizer = weakref.finalize(self, _cleanup, path)

        # Admission score = aged frequency + degree bias (both float64).
        self._freq = np.zeros(self.num_rows, dtype=np.float64)
        if degrees is not None:
            degrees = np.asarray(degrees, dtype=np.float64)
            if degrees.shape[0] != self.num_rows:
                raise ConfigurationError(
                    f"degrees has {degrees.shape[0]} entries for "
                    f"{self.num_rows} feature rows"
                )
            self._bias = degree_weight * np.log1p(np.maximum(degrees, 0.0))
        else:
            self._bias = np.zeros(self.num_rows, dtype=np.float64)
        # Halve the frequencies every ~2 cache-capacities of row accesses
        # (the TinyLFU reset) so old popularity decays.
        self._age_period = (
            int(age_period) if age_period else max(2 * self.capacity_rows, 1024)
        )
        self._accesses_until_age = self._age_period

        self._lock = threading.Lock()
        self._hot: dict[int, np.ndarray] = {}
        self._order: dict[int, None] = {}  # insertion-ordered recency queue
        self.hits = 0
        self.misses = 0
        self.admissions = 0
        self.evictions = 0
        self.peak_resident_nbytes = 0

    # ------------------------------------------------------------------ #
    @property
    def resident_nbytes(self) -> int:
        """Bytes currently held by the hot cache (always <= the budget)."""
        return len(self._hot) * self.row_nbytes

    @property
    def hot_rows(self) -> int:
        return len(self._hot)

    def get_rows(self, rows: np.ndarray) -> np.ndarray:
        """Gather feature rows, bit-identical to ``features[rows]``."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        out = np.empty((rows.shape[0], self.num_cols), dtype=self.dtype)
        with self._lock:
            for position, row in enumerate(rows):
                row = int(row)
                self._freq[row] += 1.0
                cached = self._hot.get(row)
                if cached is not None:
                    self.hits += 1
                    # Refresh recency: move to the back of the queue.
                    self._order.pop(row, None)
                    self._order[row] = None
                    out[position] = cached
                else:
                    self.misses += 1
                    value = np.array(self._cold[row])
                    out[position] = value
                    self._admit_locked(row, value)
            self._accesses_until_age -= rows.shape[0]
            if self._accesses_until_age <= 0:
                self._freq *= 0.5
                self._accesses_until_age = self._age_period
        return out

    def _admit_locked(self, row: int, value: np.ndarray) -> None:
        if len(self._hot) < self.capacity_rows:
            self._hot[row] = value
            self._order[row] = None
            self.admissions += 1
            self.peak_resident_nbytes = max(
                self.peak_resident_nbytes, self.resident_nbytes
            )
            return
        victim = next(iter(self._order))
        score = self._freq[row] + self._bias[row]
        victim_score = self._freq[victim] + self._bias[victim]
        if score <= victim_score:
            return  # the LRU resident is still more valuable: no admission
        del self._hot[victim]
        del self._order[victim]
        self.evictions += 1
        self._hot[row] = value
        self._order[row] = None
        self.admissions += 1

    # ------------------------------------------------------------------ #
    def report(self) -> dict:
        """Counters and residency for the memory report / benchmark."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "num_rows": self.num_rows,
                "num_cols": self.num_cols,
                "row_nbytes": self.row_nbytes,
                "budget_bytes": self.budget_bytes,
                "capacity_rows": self.capacity_rows,
                "hot_rows": len(self._hot),
                "resident_nbytes": self.resident_nbytes,
                "peak_resident_nbytes": self.peak_resident_nbytes,
                "cold_nbytes": self.num_rows * self.row_nbytes,
                "hits": self.hits,
                "misses": self.misses,
                "admissions": self.admissions,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    def close(self) -> None:
        """Release the memmap and delete the spill file."""
        with self._lock:
            self._hot.clear()
            self._order.clear()
        self._cold = None
        self._finalizer()


class TieredFeatureRows:
    """Drop-in stand-in for a ``GraphShard.features`` ndarray.

    Supports exactly the surface the serving stack uses: row gathers via
    ``features[rows]`` and the ``nbytes``/``shape``/``dtype`` accounting
    attributes.  ``nbytes`` reports *resident* (hot cache) bytes — the
    whole point of tiering is that the cold matrix no longer counts
    against the shard's footprint.
    """

    def __init__(self, store: TieredFeatureStore) -> None:
        self.store = store

    def __getitem__(self, rows) -> np.ndarray:
        return self.store.get_rows(rows)

    def __len__(self) -> int:
        return self.store.num_rows

    @property
    def shape(self) -> tuple[int, int]:
        return (self.store.num_rows, self.store.num_cols)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def dtype(self) -> np.dtype:
        return self.store.dtype

    @property
    def itemsize(self) -> int:
        return self.store.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return self.store.resident_nbytes
