"""Sharded graph store: per-shard CSR blocks with halo maps, bundle assembly.

Construction (``ShardedGraphStore.from_graph``) is the offline partitioning
job: it has the full graph, splits it under a :class:`ShardPlan` and builds
one :class:`GraphShard` per partition — after which the store retains **no**
full-graph state beyond O(n) ownership vectors.  Each shard holds:

* the raw adjacency rows of its owned nodes (structure only, for BFS
  frontier expansion and shard-local degree computation);
* the *normalized* adjacency rows ``Â = D̃^(γ−1) Ã D̃^(−γ)``, whose values
  are computed shard-locally from owned degrees plus the **halo-exchanged**
  degrees of ghost columns — bit-identical to the single-process
  :func:`~repro.graph.normalization.normalized_adjacency` because the
  per-entry formula ``(d_i^(γ−1) · ã_ij) · d_j^(−γ)`` is evaluated in the
  same association and dtype;
* the feature rows and the degree vector of its owned nodes — the O(n)
  stationary state split the ROADMAP sharding item asks for.

Columns of both blocks are numbered within ``col_global`` — the *sorted*
union of owned and halo ids.  Sorted local numbering is load-bearing: it
keeps every row's entries in ascending-global-column order, exactly as the
global CSR stores them, so cross-shard bundle assembly reproduces the
single-process :func:`~repro.graph.sampling.build_support_bundle` output
array-for-array (same node ordering, same CSR entry order, same values) and
the fused engine's per-row summation order — hence predictions — cannot
drift.

Serving (``build_support_bundle``) is the online path: a k-hop BFS whose
frontier expansion queries the owner shard of each frontier node, followed
by row fetches that stitch each shard's Â-rows into one local CSR in hop
order.  Every fetch goes through a pluggable
:class:`~repro.transport.ShardTransport` — in-process zero-copy by default
(:class:`~repro.transport.LocalTransport`), swappable for the TCP backend
(:class:`~repro.transport.SocketTransport`) or the fault-injecting test
wrapper via :meth:`ShardedGraphStore.use_transport` — and each hop's
per-shard requests form one transport *round*, which is the unit the socket
backend pipelines.  Per-shard fetch counters (:class:`ShardTraffic`)
quantify the cross-shard rows *and bytes* a networked deployment pays.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field, replace

import numpy as np
import scipy.sparse as sp

from ..core.config import ShardConfig
from ..exceptions import GraphConstructionError
from ..graph.kernels import _flat_nnz_positions
from ..graph.normalization import NormalizationScheme, resolve_gamma
from ..graph.sampling import SupportBundle, SupportingSubgraph
from ..graph.sparse import CSRGraph
from ..transport import LocalTransport, ShardTransport
from ..transport.base import payload_nbytes
from .partitioner import GraphPartitioner, ShardPlan


@dataclass
class GraphShard:
    """One partition's local state: row blocks, halo maps, features, degrees.

    Attributes
    ----------
    shard_id:
        This shard's index in the plan.
    owned:
        Sorted global ids of the nodes this shard owns (its rows).
    col_global:
        Sorted global ids of every column its rows reference — owned nodes
        plus the halo.  Local column ``c`` means global ``col_global[c]``.
    halo:
        The ghost nodes: ``col_global`` minus ``owned``.  Their degrees were
        fetched from their owners during the build (the halo exchange); at
        serving time their feature rows and adjacency rows are fetched the
        same way during cross-shard bundle assembly.
    adj_indptr / adj_indices:
        Raw adjacency rows (no self loops, structure only) in local column
        numbering — the BFS substrate.
    nrm_indptr / nrm_indices / nrm_data:
        Normalized-adjacency rows in local column numbering, values in the
        deployment dtype.
    features:
        Feature rows of the owned nodes (deployment dtype, C-contiguous).
    degrees_with_loops:
        ``d_i + 1`` of the owned nodes (float64, computed shard-locally from
        the full local rows) — this shard's slice of the stationary state.
    """

    shard_id: int
    owned: np.ndarray
    col_global: np.ndarray
    halo: np.ndarray
    adj_indptr: np.ndarray
    adj_indices: np.ndarray
    nrm_indptr: np.ndarray
    nrm_indices: np.ndarray
    nrm_data: np.ndarray
    features: np.ndarray
    degrees_with_loops: np.ndarray

    @property
    def num_owned(self) -> int:
        return int(self.owned.shape[0])

    @property
    def num_halo(self) -> int:
        return int(self.halo.shape[0])

    @property
    def nbytes(self) -> int:
        """Resident bytes of this shard's state (the per-shard footprint)."""
        arrays = (
            self.owned,
            self.col_global,
            self.halo,
            self.adj_indptr,
            self.adj_indices,
            self.nrm_indptr,
            self.nrm_indices,
            self.nrm_data,
            self.features,
            self.degrees_with_loops,
        )
        return int(sum(a.nbytes for a in arrays))


@dataclass
class ShardTraffic:
    """Counters of cross-shard data movement during bundle assembly.

    "Remote" means the fetched row's owner differs from the requesting
    batch's home shard — the rows a networked deployment would ship over the
    wire.  Counted only when callers pass a home shard.

    ``bytes_local`` / ``bytes_remote`` account the *payloads* of those
    fetches — request row ids out plus response arrays back — i.e. the
    bytes-on-the-wire a networked transport moves for the same fetches
    (framing overhead excluded; the socket backend's
    :class:`~repro.transport.TransportStats` adds the framed totals).
    """

    bundles_assembled: int = 0
    adjacency_rows_local: int = 0
    adjacency_rows_remote: int = 0
    feature_rows_local: int = 0
    feature_rows_remote: int = 0
    frontier_cols_local: int = 0
    frontier_cols_remote: int = 0
    degree_rows_local: int = 0
    degree_rows_remote: int = 0
    bytes_local: int = 0
    bytes_remote: int = 0

    def as_dict(self) -> dict:
        remote = self.adjacency_rows_remote + self.feature_rows_remote
        local = self.adjacency_rows_local + self.feature_rows_local
        total_bytes = self.bytes_local + self.bytes_remote
        return {
            "bundles_assembled": self.bundles_assembled,
            "adjacency_rows_local": self.adjacency_rows_local,
            "adjacency_rows_remote": self.adjacency_rows_remote,
            "feature_rows_local": self.feature_rows_local,
            "feature_rows_remote": self.feature_rows_remote,
            "frontier_cols_local": self.frontier_cols_local,
            "frontier_cols_remote": self.frontier_cols_remote,
            "degree_rows_local": self.degree_rows_local,
            "degree_rows_remote": self.degree_rows_remote,
            "remote_row_fraction": remote / (remote + local) if remote + local else 0.0,
            "bytes_local": self.bytes_local,
            "bytes_remote": self.bytes_remote,
            "remote_byte_fraction": (
                self.bytes_remote / total_bytes if total_bytes else 0.0
            ),
        }


@dataclass
class ShardedGraphStore:
    """Owns the shards and serves cross-shard k-hop bundle assembly."""

    plan: ShardPlan
    shards: list[GraphShard]
    num_nodes: int
    num_features: int
    num_edges: int
    gamma: float
    dtype: np.dtype
    traffic: ShardTraffic = field(default_factory=ShardTraffic)

    def __post_init__(self) -> None:
        # global id -> row within its owner's block, for O(1) routing.
        local_row = np.full(self.num_nodes, -1, dtype=np.int64)
        for shard in self.shards:
            local_row[shard.owned] = np.arange(shard.num_owned, dtype=np.int64)
        self._local_row = local_row
        # The store is shared by every shard server's dispatcher and worker
        # threads; traffic counters are read-modify-write and need the lock
        # to stay exact (the benchmark records them).
        self._traffic_lock = threading.Lock()
        # All online fetches route through the transport; the default is the
        # in-process zero-copy backend (today's behavior).
        self._transport: ShardTransport = LocalTransport(self.shards)
        # Optional request tracing: when a tracer is attached *and* the
        # calling thread has an active trace context, every transport round
        # becomes a ``fetch.round`` span (see repro.obs).
        self._tracer = None
        # Populated by use_tiered_features: one TieredFeatureStore per shard.
        self._feature_tiers: list = []

    # ------------------------------------------------------------------ #
    # Transport plumbing
    # ------------------------------------------------------------------ #
    @property
    def transport(self) -> ShardTransport:
        """The backend every online fetch (BFS, rows, features) goes through."""
        return self._transport

    def _set_transport(self, transport: ShardTransport) -> "ShardedGraphStore":
        """Swap the fetch backend (local / socket / fault-injecting).

        The transport must reach exactly this store's shards; bundles are
        bit-identical across backends because every backend answers with the
        same arrays (see :mod:`repro.transport`).  Internal: configure
        fleets through :class:`~repro.serving.cluster.ClusterBuilder`.
        """
        if transport.num_shards != self.num_shards:
            raise GraphConstructionError(
                f"transport reaches {transport.num_shards} shards, store has "
                f"{self.num_shards}"
            )
        self._transport = transport
        if self._tracer is not None:
            transport.use_tracer(self._tracer)
        return self

    def _set_tracer(self, tracer) -> "ShardedGraphStore":
        """Attach a :class:`~repro.obs.Tracer` to the fetch path.

        Each transport round issued while the calling thread holds an active
        trace context (the serving layer activates one per support build /
        engine run) is recorded as a ``fetch.round`` span carrying the
        per-shard row counts; the transport itself also receives the tracer
        so the socket backend can propagate ids over the wire and the
        replicated backend can mark retries and failovers.  ``None`` detaches.
        Internal: configure fleets through
        :class:`~repro.serving.cluster.ClusterBuilder`.
        """
        self._tracer = tracer
        self._transport.use_tracer(tracer)
        return self

    def _set_replicated_transport(
        self,
        rails=None,
        *,
        retry_policy=None,
        clock=None,
        probe_after_rounds: int = 4,
        route_by: str = "rows",
        latency_window_seconds: float = 30.0,
    ) -> "ShardedGraphStore":
        """Route fetches through replica rails under the plan's replica map.

        ``rails`` is one full :class:`~repro.transport.ShardTransport` per
        replica rail; ``None`` builds ``plan.max_replication`` in-process
        :class:`~repro.transport.LocalTransport` rails over this store's own
        shard blocks (shared, read-only — the in-process stand-in for a
        replicated fleet).  Returns the store; the installed transport is a
        :class:`~repro.transport.ReplicatedTransport` honoring
        ``plan.replicas``, ``retry_policy`` and ``probe_after_rounds``;
        ``route_by="latency"`` spreads reads by windowed per-replica
        latency instead of rows served (see
        :class:`~repro.transport.ReplicatedTransport`).
        """
        from ..transport.replica import ReplicatedTransport

        if rails is None:
            rails = [
                LocalTransport(self.shards)
                for _ in range(self.plan.max_replication)
            ]
        # An unreplicated plan places every shard on every provided rail.
        return self._set_transport(
            ReplicatedTransport(
                rails,
                self.plan.replicas,
                retry_policy=retry_policy,
                clock=clock,
                probe_after_rounds=probe_after_rounds,
                route_by=route_by,
                latency_window_seconds=latency_window_seconds,
            )
        )

    def _set_tiered_features(
        self,
        budget_bytes: int,
        *,
        storage_dir: str | None = None,
        degree_weight: float = 4.0,
    ) -> "ShardedGraphStore":
        """Swap every shard's feature matrix for a tiered hot/cold store.

        ``budget_bytes`` is the fleet-wide RAM budget for resident feature
        rows, split across shards proportionally to their owned-row counts
        (each shard gets at least one row).  Hot rows live in an
        admission-controlled cache (aged access frequency plus
        ``degree_weight``-scaled log-degree bias — hub rows, the ones
        node-adaptive propagation hits constantly, win admission); cold
        rows are served from an ``np.memmap`` spill file under
        ``storage_dir`` (default: the system temp dir).  Feature fetches
        remain bit-identical; ``memory_report()`` gains per-shard tier
        residency.  Every transport backend picks the tier up for free:
        :func:`~repro.transport.base.answer_from_shard` indexes
        ``shard.features`` the same way it indexed the ndarray.
        """
        from .feature_store import TieredFeatureRows, TieredFeatureStore

        if self._feature_tiers:
            raise GraphConstructionError("features are already tiered")
        if budget_bytes < 1:
            raise GraphConstructionError(
                f"budget_bytes must be positive, got {budget_bytes}"
            )
        total_rows = sum(shard.num_owned for shard in self.shards)
        tiers = []
        for shard in self.shards:
            matrix = np.asarray(shard.features)
            share = (
                int(budget_bytes * shard.num_owned / total_rows)
                if total_rows
                else budget_bytes
            )
            store = TieredFeatureStore(
                matrix,
                budget_bytes=max(share, int(matrix.itemsize * matrix.shape[1])),
                degrees=shard.degrees_with_loops,
                degree_weight=degree_weight,
                storage_dir=storage_dir,
            )
            shard.features = TieredFeatureRows(store)
            tiers.append(store)
        self._feature_tiers = tiers
        return self

    # ------------------------------------------------------------------ #
    # Deprecated mutator shims (pre-ClusterBuilder configuration surface)
    # ------------------------------------------------------------------ #
    def use_transport(self, transport: ShardTransport) -> "ShardedGraphStore":
        """Deprecated: use :class:`~repro.serving.cluster.ClusterBuilder`.

        Equivalent to ``ClusterBuilder(...).transport(transport)``; kept as
        a thin shim over the internal setter for existing call sites.
        """
        warnings.warn(
            "ShardedGraphStore.use_transport is deprecated; configure the "
            "fleet through repro.serving.cluster.ClusterBuilder",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._set_transport(transport)

    def use_tracer(self, tracer) -> "ShardedGraphStore":
        """Deprecated: use :class:`~repro.serving.cluster.ClusterBuilder`.

        Equivalent to ``ClusterBuilder(...).traced(tracer)``; kept as a
        thin shim over the internal setter for existing call sites.
        """
        warnings.warn(
            "ShardedGraphStore.use_tracer is deprecated; configure the "
            "fleet through repro.serving.cluster.ClusterBuilder",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._set_tracer(tracer)

    def use_replicated_transport(self, rails=None, **kwargs) -> "ShardedGraphStore":
        """Deprecated: use :class:`~repro.serving.cluster.ClusterBuilder`.

        Equivalent to ``ClusterBuilder(...).replicated(...)``; kept as a
        thin shim over the internal setter for existing call sites.
        """
        warnings.warn(
            "ShardedGraphStore.use_replicated_transport is deprecated; "
            "configure the fleet through repro.serving.cluster.ClusterBuilder",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._set_replicated_transport(rails, **kwargs)

    def use_tiered_features(
        self, budget_bytes: int, **kwargs
    ) -> "ShardedGraphStore":
        """Deprecated: use :class:`~repro.serving.cluster.ClusterBuilder`.

        Equivalent to ``ClusterBuilder(...).tiered_features(...)``; kept as
        a thin shim over the internal setter for existing call sites.
        """
        warnings.warn(
            "ShardedGraphStore.use_tiered_features is deprecated; configure "
            "the fleet through repro.serving.cluster.ClusterBuilder",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._set_tiered_features(budget_bytes, **kwargs)

    @property
    def feature_tiers(self) -> list:
        """The per-shard tiered feature stores (empty when not tiered)."""
        return list(self._feature_tiers)

    def _requests_by_owner(
        self, node_ids: np.ndarray
    ) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """Group ``node_ids`` into per-owner ``(shard_id, mask, rows)`` requests.

        Shards are visited in ascending id — the same order the
        pre-transport per-shard loops used — so stitched outputs stay
        bit-identical.
        """
        owners = self.plan.owner[node_ids]
        rows = self._local_row[node_ids]
        requests = []
        for shard_id in range(self.num_shards):
            mask = owners == shard_id
            if mask.any():
                requests.append((shard_id, mask, rows[mask]))
        return requests

    def _count_traffic(
        self,
        home_shard: int | None,
        shard_id: int,
        rows: np.ndarray,
        payload,
        local_attr: str,
        remote_attr: str,
    ) -> None:
        """Fold one request/response pair into the traffic counters."""
        if home_shard is None:
            return
        count = int(rows.shape[0])
        nbytes = int(rows.nbytes) + payload_nbytes(payload)
        with self._traffic_lock:
            if shard_id == home_shard:
                setattr(
                    self.traffic, local_attr,
                    getattr(self.traffic, local_attr) + count,
                )
                self.traffic.bytes_local += nbytes
            else:
                setattr(
                    self.traffic, remote_attr,
                    getattr(self.traffic, remote_attr) + count,
                )
                self.traffic.bytes_remote += nbytes

    def _traced_fetch(self, op: str, requests: list) -> list:
        """Issue one transport round, as a ``fetch.round`` span when traced.

        The span is a child of the calling thread's active context (the
        support-build or engine-compute span the serving layer activated)
        and carries the round's per-shard row counts — the raw material of
        :meth:`repro.obs.CriticalPathAnalyzer.shard_load`.  While the round
        runs, the span's own context is active, so the socket client stamps
        its ids onto every frame and the replicated transport parents its
        retry/failover events correctly.
        """
        fetch = getattr(self._transport, op)
        tracer = self._tracer
        if tracer is None:
            return fetch(requests)
        ctx = tracer.child(tracer.current())
        if ctx is None:
            return fetch(requests)
        start = tracer.clock.now()
        with tracer.activate(ctx):
            payloads = fetch(requests)
        tracer.emit(
            "fetch.round",
            ctx,
            start,
            tracer.clock.now(),
            op=op,
            shards=[int(shard_id) for shard_id, _ in requests],
            rows=[int(np.asarray(rows).shape[0]) for _, rows in requests],
        )
        return payloads

    # ------------------------------------------------------------------ #
    # Construction (the offline partitioning job)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(
        cls,
        graph: CSRGraph,
        features: np.ndarray,
        config: ShardConfig,
        *,
        gamma: str | float | NormalizationScheme = NormalizationScheme.SYMMETRIC,
        dtype: np.dtype | str = np.float32,
        plan: ShardPlan | None = None,
    ) -> "ShardedGraphStore":
        """Partition ``graph`` and build the per-shard blocks.

        The normalized-adjacency values are computed *per shard* from owned
        degrees plus halo-exchanged ghost degrees, in the same elementwise
        association the global :func:`normalized_adjacency` uses, so the
        distributed blocks are bit-identical to slices of the global Â.
        """
        dtype = np.dtype(dtype)
        if features.ndim != 2 or features.shape[0] != graph.num_nodes:
            raise GraphConstructionError(
                f"features must have shape (n, f) with n={graph.num_nodes}, "
                f"got {features.shape}"
            )
        if plan is None:
            plan = GraphPartitioner(config).partition(graph)
        coeff = resolve_gamma(gamma)
        features = np.ascontiguousarray(features, dtype=dtype)

        adjacency = graph.adjacency
        a_tilde = graph.add_self_loops().adjacency
        # Global D̃ row sums exist only transiently here, standing in for the
        # per-owner degree service a networked build would query; every shard
        # reads exactly its owned + halo slice of it.
        deg_tilde = np.asarray(a_tilde.sum(axis=1)).ravel()

        shards = []
        for shard_id in range(plan.num_shards):
            owned = plan.owned[shard_id]
            shards.append(
                cls._build_shard(
                    shard_id, owned, adjacency, a_tilde, deg_tilde, features,
                    coeff, dtype,
                )
            )
        return cls(
            plan=plan,
            shards=shards,
            num_nodes=graph.num_nodes,
            num_features=int(features.shape[1]),
            num_edges=graph.num_edges,
            gamma=coeff,
            dtype=dtype,
        )

    @staticmethod
    def _build_shard(
        shard_id: int,
        owned: np.ndarray,
        adjacency: sp.csr_matrix,
        a_tilde: sp.csr_matrix,
        deg_tilde: np.ndarray,
        features: np.ndarray,
        coeff: float,
        dtype: np.dtype,
    ) -> GraphShard:
        index_dtype = adjacency.indices.dtype

        # Raw adjacency rows (structure + shard-local degree computation).
        adj_flat, adj_row_ends = _flat_nnz_positions(adjacency.indptr, owned)
        adj_indptr = np.concatenate(([0], adj_row_ends)).astype(index_dtype)
        adj_cols_global = adjacency.indices[adj_flat].astype(np.int64)

        # Normalized rows: Ã structure (adds the diagonal).
        nrm_flat, nrm_row_ends = _flat_nnz_positions(a_tilde.indptr, owned)
        nrm_indptr = np.concatenate(([0], nrm_row_ends)).astype(index_dtype)
        nrm_cols_global = a_tilde.indices[nrm_flat].astype(np.int64)

        # Local column space: sorted union of owned and referenced columns.
        # Sorted order preserves each row's ascending-column entry order.
        col_global = np.union1d(owned, nrm_cols_global)
        halo = np.setdiff1d(col_global, owned, assume_unique=True)

        # Shard-local degree computation over the full local rows (the
        # edge-cut keeps complete rows, halo columns included), matching
        # scipy's row-sum accumulation of the global graph entry for entry.
        local_block = sp.csr_matrix(
            (
                adjacency.data[adj_flat],
                np.searchsorted(col_global, adj_cols_global),
                adj_indptr.astype(np.int64),
            ),
            shape=(owned.shape[0], col_global.shape[0]),
        )
        degrees_with_loops = np.asarray(local_block.sum(axis=1)).ravel() + 1.0

        # Halo exchange: ghost-column D̃ degrees come from their owners; the
        # left factor uses owned degrees only.  The per-entry association
        # ``(left_i * ã_ij) * right_j`` mirrors scipy's diag @ Ã @ diag.
        deg_cols = deg_tilde[col_global]
        safe_cols = np.where(deg_cols > 0, deg_cols, 1.0)
        deg_own = deg_tilde[owned]
        safe_own = np.where(deg_own > 0, deg_own, 1.0)
        left_own = np.power(safe_own, coeff - 1.0)
        right_cols = np.power(safe_cols, -coeff)
        nrm_indices = np.searchsorted(col_global, nrm_cols_global)
        lengths = np.diff(nrm_indptr.astype(np.int64))
        nrm_data = (
            (np.repeat(left_own, lengths) * a_tilde.data[nrm_flat])
            * right_cols[nrm_indices]
        ).astype(dtype)

        return GraphShard(
            shard_id=shard_id,
            owned=owned,
            col_global=col_global,
            halo=halo,
            adj_indptr=adj_indptr,
            adj_indices=np.searchsorted(col_global, adj_cols_global).astype(index_dtype),
            nrm_indptr=nrm_indptr,
            nrm_indices=nrm_indices.astype(index_dtype),
            nrm_data=nrm_data,
            features=np.ascontiguousarray(features[owned]),
            degrees_with_loops=degrees_with_loops,
        )

    # ------------------------------------------------------------------ #
    # Routing helpers
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def owner_of(self, node_ids: np.ndarray) -> np.ndarray:
        return self.plan.shard_of(node_ids)

    def local_rows(self, node_ids: np.ndarray) -> np.ndarray:
        """Row of each node within its owner's block."""
        return self._local_row[np.asarray(node_ids, dtype=np.int64)]

    # ------------------------------------------------------------------ #
    # Cross-shard k-hop expansion
    # ------------------------------------------------------------------ #
    def k_hop_neighborhood(
        self, targets: np.ndarray, depth: int, *, home_shard: int | None = None
    ) -> SupportingSubgraph:
        """Sharded BFS, bit-identical to the single-graph implementation.

        The global BFS deduplicates each hop's neighbour list with a boolean
        scatter and emits the new frontier sorted ascending; both steps are
        order-insensitive, so gathering neighbours shard-by-shard (instead
        of row-by-row over one CSR) yields the same hop sets, the same
        hop-sorted node ordering, and the same ``target_local`` map.
        """
        targets = np.asarray(targets, dtype=np.int64)
        if targets.size == 0:
            raise GraphConstructionError("k_hop_neighborhood requires a non-empty batch")
        if targets.min() < 0 or targets.max() >= self.num_nodes:
            raise GraphConstructionError("target node ids out of range")
        if depth < 0:
            raise ValueError(f"depth must be non-negative, got {depth}")

        visited = np.zeros(self.num_nodes, dtype=bool)
        newly = np.zeros(self.num_nodes, dtype=bool)
        hop_of = np.full(self.num_nodes, -1, dtype=np.int64)
        frontier = np.unique(targets)
        visited[frontier] = True
        hop_of[frontier] = 0
        order = [frontier]
        for hop in range(1, depth + 1):
            if frontier.size == 0:
                break
            neighbor_ids = self._gather_frontier_columns(frontier, home_shard)
            neighbor_ids = neighbor_ids[~visited[neighbor_ids]]
            if neighbor_ids.size == 0:
                frontier = neighbor_ids
                continue
            newly[neighbor_ids] = True
            new = np.flatnonzero(newly)
            newly[new] = False
            visited[new] = True
            hop_of[new] = hop
            order.append(new)
            frontier = new

        node_ids = np.concatenate(order)
        lookup = np.full(self.num_nodes, -1, dtype=np.int64)
        lookup[node_ids] = np.arange(node_ids.shape[0], dtype=np.int64)
        return SupportingSubgraph(
            node_ids=node_ids,
            target_local=lookup[targets],
            adjacency=None,
            hops=hop_of[node_ids],
            global_to_local=lookup,
        )

    def _gather_frontier_columns(
        self, frontier: np.ndarray, home_shard: int | None
    ) -> np.ndarray:
        """Concatenated (global) neighbour ids of ``frontier``, per owner shard.

        One transport round per BFS hop: all owner-shard requests are issued
        together, which is exactly what the socket backend pipelines.
        """
        requests = self._requests_by_owner(frontier)
        if not requests:
            return np.empty(0, dtype=np.int64)
        pieces = self._traced_fetch(
            "frontier_columns", [(shard_id, rows) for shard_id, _, rows in requests]
        )
        for (shard_id, _, rows), piece in zip(requests, pieces):
            self._count_traffic(
                home_shard, shard_id, rows, piece,
                "frontier_cols_local", "frontier_cols_remote",
            )
        if len(pieces) == 1:
            return np.asarray(pieces[0], dtype=np.int64)
        return np.concatenate(pieces)

    # ------------------------------------------------------------------ #
    # Bundle assembly
    # ------------------------------------------------------------------ #
    def build_support_bundle(
        self, targets: np.ndarray, depth: int, *, home_shard: int | None = None
    ) -> SupportBundle:
        """Assemble the batch's :class:`SupportBundle` from the shard blocks.

        Produces arrays bit-identical to the single-process
        :func:`~repro.graph.sampling.build_support_bundle`: same hop-ordered
        node ids, same local CSR entry order (each shard's rows keep their
        ascending-global-column order, stitched back in node order), same
        values and dtypes.  The graph-sized lookup is dropped from the
        stored subgraph exactly like the global path does.
        """
        start = time.perf_counter()
        support = self.k_hop_neighborhood(targets, depth, home_shard=home_shard)
        node_ids = support.node_ids
        assert support.global_to_local is not None
        indptr, indices, data = self._assemble_local_csr(
            node_ids, support.global_to_local, home_shard
        )
        local_features = self._gather_features(node_ids, home_shard)
        with self._traffic_lock:
            self.traffic.bundles_assembled += 1
        return SupportBundle(
            support=replace(support, global_to_local=None),
            indptr=indptr,
            indices=indices,
            data=data,
            local_features=local_features,
            build_seconds=time.perf_counter() - start,
        )

    def _assemble_local_csr(
        self, node_ids: np.ndarray, lookup: np.ndarray, home_shard: int | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stitch per-owner Â rows into ``matrix[node_ids][:, node_ids]`` form.

        One ``adjacency_rows`` transport round fetches every owner's rows;
        the responses (per-row lengths + flat global columns + values) are
        scattered into node order, so the stitched arrays are identical to
        slicing one global CSR regardless of which backend served them.
        """
        index_dtype = self.shards[0].nrm_indices.dtype
        requests = self._requests_by_owner(node_ids)
        responses = self._traced_fetch(
            "adjacency_rows", [(shard_id, rows) for shard_id, _, rows in requests]
        )

        lengths = np.empty(node_ids.shape[0], dtype=np.int64)
        for (shard_id, mask, rows), response in zip(requests, responses):
            lengths[mask] = response.lengths
            self._count_traffic(
                home_shard, shard_id, rows, response,
                "adjacency_rows_local", "adjacency_rows_remote",
            )
        row_ends = np.cumsum(lengths)
        total = int(row_ends[-1]) if lengths.size else 0
        if total == 0:
            empty_ptr = np.zeros(node_ids.shape[0] + 1, dtype=index_dtype)
            return (
                empty_ptr,
                np.empty(0, dtype=index_dtype),
                np.empty(0, dtype=self.dtype),
            )

        cols_global = np.empty(total, dtype=np.int64)
        data_flat = np.empty(total, dtype=self.dtype)
        starts = row_ends - lengths
        for (shard_id, mask, _), response in zip(requests, responses):
            seg_lengths = np.asarray(response.lengths, dtype=np.int64)
            seg_ends = np.cumsum(seg_lengths)
            # Destination positions: each fetched row lands in its node's
            # segment of the stitched arrays, preserving hop order.
            base = np.repeat(starts[mask], seg_lengths)
            within = np.arange(
                int(seg_ends[-1]) if seg_ends.size else 0, dtype=np.int64
            ) - np.repeat(seg_ends - seg_lengths, seg_lengths)
            dest = base + within
            cols_global[dest] = response.columns
            data_flat[dest] = response.data

        # Mirror extract_local_csr_arrays: remap to bundle-local columns and
        # drop entries outside the neighbourhood.
        cols = lookup[cols_global]
        keep = cols >= 0
        kept_before = np.concatenate(([0], np.cumsum(keep)))
        gathered_indptr = np.concatenate(([0], row_ends))
        new_indptr = kept_before[gathered_indptr].astype(index_dtype)
        new_indices = cols[keep].astype(index_dtype)
        new_data = data_flat[keep]
        return new_indptr, new_indices, new_data

    def _gather_features(
        self, node_ids: np.ndarray, home_shard: int | None
    ) -> np.ndarray:
        """Hop-0 feature rows of ``node_ids``, fetched from their owners."""
        out = np.empty((node_ids.shape[0], self.num_features), dtype=self.dtype)
        requests = self._requests_by_owner(node_ids)
        responses = self._traced_fetch(
            "feature_rows", [(shard_id, rows) for shard_id, _, rows in requests]
        )
        for (shard_id, mask, rows), response in zip(requests, responses):
            out[mask] = response
            self._count_traffic(
                home_shard, shard_id, rows, response,
                "feature_rows_local", "feature_rows_remote",
            )
        return out

    def fetch_degrees(
        self, node_ids: np.ndarray, *, home_shard: int | None = None
    ) -> np.ndarray:
        """``d_i + 1`` of ``node_ids`` (float64), fetched from their owners.

        The degree fetch of the stationary protocol expressed through the
        transport — a networked coordinator reads halo degrees this way
        during the shard build and can re-verify owner slices at runtime.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.size and (
            node_ids.min() < 0 or node_ids.max() >= self.num_nodes
        ):
            raise GraphConstructionError("node ids out of range")
        out = np.empty(node_ids.shape[0], dtype=np.float64)
        requests = self._requests_by_owner(node_ids)
        responses = self._traced_fetch(
            "degree_rows", [(shard_id, rows) for shard_id, _, rows in requests]
        )
        for (shard_id, mask, rows), response in zip(requests, responses):
            out[mask] = response
            self._count_traffic(
                home_shard, shard_id, rows, response,
                "degree_rows_local", "degree_rows_remote",
            )
        return out

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def memory_report(self) -> dict:
        """Per-shard resident bytes and halo sizes (benchmark surface)."""
        report = {
            "num_shards": self.num_shards,
            "strategy": self.plan.strategy,
            "cut_edges": self.plan.cut_edges,
            "per_shard": [
                {
                    "shard": shard.shard_id,
                    "owned_nodes": shard.num_owned,
                    "halo_nodes": shard.num_halo,
                    "halo_fraction": (
                        shard.num_halo / shard.num_owned if shard.num_owned else 0.0
                    ),
                    "nbytes": shard.nbytes,
                }
                for shard in self.shards
            ],
            "max_shard_nbytes": max(shard.nbytes for shard in self.shards),
            "total_halo_nodes": sum(shard.num_halo for shard in self.shards),
        }
        if self._feature_tiers:
            tiers = [store.report() for store in self._feature_tiers]
            report["feature_tiers"] = tiers
            report["feature_budget_bytes"] = sum(
                tier["budget_bytes"] for tier in tiers
            )
            report["feature_resident_nbytes"] = sum(
                tier["resident_nbytes"] for tier in tiers
            )
            report["feature_peak_resident_nbytes"] = sum(
                tier["peak_resident_nbytes"] for tier in tiers
            )
            report["feature_cold_nbytes"] = sum(
                tier["cold_nbytes"] for tier in tiers
            )
        return report
