"""Shard-backed inference: engines and the coordinator predictor.

:class:`ShardEngine` is a :class:`~repro.core.inference.BatchEngine` whose
sampling stage is served by the :class:`~repro.shard.store.ShardedGraphStore`
(cross-shard bundle assembly) instead of a full in-process graph, and whose
stationary features come from the :class:`ShardedStationaryState`.  The
fused Algorithm-1 loop itself runs unchanged — it reads only the bundle and
the stationary state, both of which the sharded substrate reproduces bit for
bit — so per-batch predictions, exit depths, MAC and timing breakdowns are
exactly those of an unsharded engine.

:class:`ShardedPredictor` is the coordinator: it partitions the graph at
:meth:`~ShardedPredictor.prepare` time, builds the store and the reduced
stationary state, then serves :meth:`~ShardedPredictor.predict` with the
same consecutive-slice batching loop as
:class:`~repro.core.inference.NAIPredictor` — dispatching every batch to the
engine of the shard owning its first target.  Because batch composition is
identical and each batch's execution is bit-identical, the *totals* (MACs
included) match the unsharded predictor exactly.

:meth:`ShardedPredictor.shard_view` exposes one shard's worker group as a
prepared-predictor lookalike, which is what
:class:`~repro.shard.router.ShardRouter` feeds to one
:class:`~repro.serving.InferenceServer` per shard.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.config import NAIConfig, ShardConfig
from ..core.distance_nap import DistanceNAP
from ..core.gate_nap import GateNAP
from ..core.inference import (
    BatchEngine,
    InferenceResult,
    MACBreakdown,
    NAIPredictor,
    TimingBreakdown,
)
from ..exceptions import ConfigurationError, NotFittedError
from ..graph.normalization import NormalizationScheme
from ..graph.sampling import SupportBundle, batch_iterator
from ..graph.sparse import CSRGraph
from ..models.base import DepthwiseClassifier
from .stationary import ShardedStationaryState, compute_sharded_stationary
from .store import ShardedGraphStore


class ShardEngine(BatchEngine):
    """A batch engine whose sampling is served by the sharded store."""

    def __init__(
        self,
        classifiers: Sequence[DepthwiseClassifier],
        policy: DistanceNAP | GateNAP | None,
        config: NAIConfig,
        store: ShardedGraphStore,
        stationary: ShardedStationaryState,
        *,
        home_shard: int | None = None,
    ) -> None:
        # No full graph, feature matrix or global Â: the fused engine only
        # touches the stationary state and the (store-assembled) bundle.
        super().__init__(classifiers, policy, config, None, None, None, stationary)
        self.store = store
        self.home_shard = home_shard

    def build_support(self, batch: np.ndarray) -> SupportBundle:
        """Cross-shard bundle assembly (bit-identical to the global build)."""
        return self.store.build_support_bundle(
            batch, self.config.t_max, home_shard=self.home_shard
        )


class ShardServingView:
    """One shard's worker group, quacking like a prepared ``NAIPredictor``.

    Provides exactly the surface :class:`~repro.serving.InferenceServer` and
    :class:`~repro.serving.WorkerPool` consume — ``prepared``, ``config``
    and ``make_engine`` — with every engine homed on this view's shard so
    the store attributes halo traffic correctly.
    """

    def __init__(self, parent: "ShardedPredictor", shard_id: int) -> None:
        self._parent = parent
        self.shard_id = shard_id

    @property
    def prepared(self) -> bool:
        return self._parent.prepared

    @property
    def config(self) -> NAIConfig:
        return self._parent.config

    def make_engine(self) -> ShardEngine:
        return self._parent.make_engine(home_shard=self.shard_id)


class ShardedPredictor:
    """Coordinator for node-adaptive inference over a sharded graph store.

    Mirrors the :class:`~repro.core.inference.NAIPredictor` surface
    (``prepare`` → ``predict``) but deploys onto per-shard state: after
    :meth:`prepare` the full graph, feature matrix and global normalized
    adjacency are *not* retained — every shard holds its owned slice plus
    halo maps, and only O(n) routing vectors stay with the coordinator.
    """

    def __init__(
        self,
        classifiers: Sequence[DepthwiseClassifier],
        *,
        policy: DistanceNAP | GateNAP | None = None,
        config: NAIConfig | None = None,
        gamma: str | float | NormalizationScheme = NormalizationScheme.SYMMETRIC,
    ) -> None:
        if not classifiers:
            raise ConfigurationError("ShardedPredictor needs at least one classifier")
        self.classifiers = list(classifiers)
        self.depth = len(self.classifiers)
        self.policy = policy
        self.gamma = gamma
        self.config = (
            config if config is not None else NAIConfig(t_min=self.depth, t_max=self.depth)
        )
        self.config.validated_against_depth(self.depth)
        if self.config.engine != "fused":
            raise ConfigurationError(
                "sharded inference requires engine='fused' (the reference "
                "engine resamples from a full in-process graph)"
            )
        self._store: ShardedGraphStore | None = None
        self._stationary: ShardedStationaryState | None = None
        self._engines: list[ShardEngine] = []

    @classmethod
    def from_predictor(
        cls, predictor: NAIPredictor
    ) -> "ShardedPredictor":
        """Rebuild an (unprepared) sharded twin of an ``NAIPredictor``."""
        return cls(
            predictor.classifiers,
            policy=predictor.policy,
            config=predictor.config,
            gamma=predictor.gamma,
        )

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #
    def prepare(
        self,
        graph: CSRGraph,
        features: np.ndarray,
        shard_config: ShardConfig,
        *,
        transport=None,
        plan=None,
    ) -> "ShardedPredictor":
        """Partition, build the shard blocks and reduce the stationary state.

        ``transport`` (optional) is either a ready
        :class:`~repro.transport.ShardTransport` or a callable taking the
        built store and returning one — how a deployment swaps the default
        in-process fetches for the socket backend at prepare time.

        ``plan`` (optional) deploys onto a pre-built
        :class:`~repro.shard.partitioner.ShardPlan` instead of repartitioning
        — how a versioned rollout prepares the successor deployment at an
        explicit plan version (see
        :meth:`~repro.shard.router.ShardRouter.install_plan`).
        """
        self._store = ShardedGraphStore.from_graph(
            graph,
            features,
            shard_config,
            gamma=self.gamma,
            dtype=self.config.np_dtype,
            plan=plan,
        )
        if transport is not None:
            if callable(transport) and not hasattr(transport, "fetch"):
                transport = transport(self._store)
            self._store._set_transport(transport)
        self._stationary = compute_sharded_stationary(self._store)
        self._engines = [
            self.make_engine(home_shard=shard_id)
            for shard_id in range(self._store.num_shards)
        ]
        return self

    def use_transport(self, transport) -> "ShardedPredictor":
        """Swap the store's fetch backend; every engine picks it up at once.

        Engines hold the store, not the backend, so predictions before and
        after a swap are bit-identical — the equivalence suite sweeps one
        prepared predictor across all three backends this way.  Prefer
        :class:`~repro.serving.cluster.ClusterBuilder` for fleet
        configuration; this remains the supported hook for swapping the
        backend of an already-prepared predictor (tests and the
        equivalence suites lean on it).
        """
        self.store._set_transport(transport)
        return self

    @property
    def prepared(self) -> bool:
        return self._store is not None and self._stationary is not None

    @property
    def store(self) -> ShardedGraphStore:
        self._require_prepared()
        assert self._store is not None
        return self._store

    @property
    def stationary(self) -> ShardedStationaryState:
        self._require_prepared()
        assert self._stationary is not None
        return self._stationary

    @property
    def num_shards(self) -> int:
        return self.store.num_shards

    def _require_prepared(self) -> None:
        if not self.prepared:
            raise NotFittedError(
                "call ShardedPredictor.prepare(graph, features, shard_config) first"
            )

    def make_engine(self, *, home_shard: int | None = None) -> ShardEngine:
        """A fresh engine over the shared store (one per worker)."""
        self._require_prepared()
        assert self._store is not None and self._stationary is not None
        return ShardEngine(
            self.classifiers,
            self.policy,
            self.config,
            self._store,
            self._stationary,
            home_shard=home_shard,
        )

    def shard_view(self, shard_id: int) -> ShardServingView:
        """The per-shard predictor surface an ``InferenceServer`` fronts."""
        if not 0 <= shard_id < self.num_shards:
            raise ConfigurationError(
                f"shard_id {shard_id} out of range [0, {self.num_shards})"
            )
        return ShardServingView(self, shard_id)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def predict(
        self, node_ids: np.ndarray, *, keep_logits: bool = False
    ) -> InferenceResult:
        """Classify ``node_ids`` — bit-identical to the unsharded predictor.

        The batching loop is byte-for-byte the ``NAIPredictor.predict``
        logic (consecutive ``batch_size`` slices, merged breakdowns); each
        batch runs on the engine of the shard owning its first target, whose
        store-assembled bundle and sharded stationary state reproduce the
        unsharded inputs exactly.
        """
        self._require_prepared()
        assert self._store is not None
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.size == 0:
            raise ConfigurationError("predict requires at least one node")
        predictions = np.full(node_ids.shape[0], -1, dtype=np.int64)
        depths = np.zeros(node_ids.shape[0], dtype=np.int64)
        logits_store: dict[int, np.ndarray] = {}
        macs = MACBreakdown()
        timings = TimingBreakdown()

        offset = 0
        for batch in batch_iterator(node_ids, self.config.batch_size):
            home = int(self._store.plan.owner[batch[0]])
            batch_result = self._engines[home].run_batch(batch, keep_logits=keep_logits)
            macs = macs.merged_with(batch_result.macs)
            timings = timings.merged_with(batch_result.timings)
            predictions[offset:offset + batch.shape[0]] = batch_result.predictions
            depths[offset:offset + batch.shape[0]] = batch_result.depths
            offset += batch.shape[0]
            if keep_logits:
                logits_store.update(batch_result.logits)

        return InferenceResult(
            node_ids=node_ids,
            predictions=predictions,
            depths=depths,
            macs=macs,
            timings=timings,
            max_depth=self.config.t_max,
            logits=logits_store,
        )
