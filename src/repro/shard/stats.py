"""Cross-shard merging of serving statistics and MAC breakdowns.

Each shard's :class:`~repro.serving.InferenceServer` keeps its own
:class:`~repro.serving.ServingStatsSnapshot`; the router merges them into a
fleet view.  Additive quantities — request/node/batch counters, cache
counters and the MAC/timing breakdowns — sum exactly (MACs are deterministic
per batch, so the merged totals reproduce what one big server would have
accounted).  Latency *percentiles* do not compose across shards — the exact
mixture percentile needs the raw samples — so the merged snapshot reports
the worst per-shard percentile at each level (what an operator alarms on)
alongside the untouched per-shard summaries for anyone who needs the real
distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.inference import MACBreakdown, TimingBreakdown
from ..metrics.timing import LatencySummary
from ..serving.stats import ServingStatsSnapshot


def merge_latency_summaries(summaries: list[LatencySummary]) -> LatencySummary:
    """Conservative fleet summary: count-weighted mean, max percentiles."""
    present = [s for s in summaries if s.count > 0]
    if not present:
        return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
    total = sum(s.count for s in present)
    return LatencySummary(
        count=total,
        mean=sum(s.mean * s.count for s in present) / total,
        p50=max(s.p50 for s in present),
        p95=max(s.p95 for s in present),
        p99=max(s.p99 for s in present),
        max=max(s.max for s in present),
    )


@dataclass(frozen=True)
class ShardedStatsSnapshot:
    """Fleet-level view over per-shard serving snapshots."""

    per_shard: dict[int, ServingStatsSnapshot]
    requests_completed: int
    requests_failed: int
    requests_rejected: int
    requests_shed: int
    requests_replayed: int
    nodes_completed: int
    batches_dispatched: int
    #: Fleet batching-controller view: adjustments sum across shards (each
    #: shard runs its own controller); the width percentiles are the worst
    #: per-shard values, mirroring the latency merge below.
    batch_policy: str
    controller_adjustments: int
    batch_width_p50: float
    batch_width_p95: float
    macs: MACBreakdown
    replayed_macs: MACBreakdown
    timings: TimingBreakdown
    latency: LatencySummary
    cache_hits: int
    cache_misses: int
    result_cache_hits: int
    result_cache_misses: int
    #: Which :class:`~repro.shard.partitioner.ShardPlan` version answered
    #: (the active generation's at snapshot time; see ``rollout_state()``
    #: for per-version accounting during a live rollout).
    plan_version: int = 0
    #: Replication-layer counters, folded in from the store transport's
    #: :class:`~repro.transport.TransportStats` when the fetch path runs
    #: through a :class:`~repro.transport.ReplicatedTransport` (zero on
    #: plain backends).
    transport_retries: int = 0
    transport_failovers: int = 0
    transport_health_transitions: int = 0
    #: Wave-scheduler counters (``ServingConfig.wave_width > 1``): waves and
    #: their members sum across shards; the width percentile is the worst
    #: per-shard value (same convention as the batch widths above);
    #: ``shared_row_fraction``/``macs_per_request`` are fleet-wide ratios
    #: recomputed from the summed numerators/denominators, not averages of
    #: per-shard ratios.
    waves_dispatched: int = 0
    wave_members: int = 0
    wave_width_p50: float = 0.0
    shared_row_fraction: float = 0.0
    macs_per_request: float = 0.0
    cache_subset_hits: int = 0

    @property
    def num_shards(self) -> int:
        return len(self.per_shard)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "requests_completed": self.requests_completed,
            "requests_failed": self.requests_failed,
            "requests_rejected": self.requests_rejected,
            "requests_shed": self.requests_shed,
            "requests_replayed": self.requests_replayed,
            "nodes_completed": self.nodes_completed,
            "batches_dispatched": self.batches_dispatched,
            "batch_policy": self.batch_policy,
            "controller_adjustments": self.controller_adjustments,
            "batch_width_p50": self.batch_width_p50,
            "batch_width_p95": self.batch_width_p95,
            "computed_macs": self.macs.total,
            "replayed_macs": self.replayed_macs.total,
            "total_seconds": self.timings.total,
            "latency_ms": self.latency.scaled(1e3).as_dict(),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "result_cache_hits": self.result_cache_hits,
            "result_cache_misses": self.result_cache_misses,
            "plan_version": self.plan_version,
            "transport_retries": self.transport_retries,
            "transport_failovers": self.transport_failovers,
            "transport_health_transitions": self.transport_health_transitions,
            "waves_dispatched": self.waves_dispatched,
            "wave_members": self.wave_members,
            "wave_width_p50": self.wave_width_p50,
            "shared_row_fraction": self.shared_row_fraction,
            "macs_per_request": self.macs_per_request,
            "cache_subset_hits": self.cache_subset_hits,
            "per_shard": {
                str(shard): snapshot.as_dict()
                for shard, snapshot in sorted(self.per_shard.items())
            },
        }


def merge_serving_snapshots(
    snapshots: dict[int, ServingStatsSnapshot],
) -> ShardedStatsSnapshot:
    """Fold per-shard snapshots into one :class:`ShardedStatsSnapshot`."""
    macs = MACBreakdown()
    replayed = MACBreakdown()
    timings = TimingBreakdown()
    for snapshot in snapshots.values():
        macs = macs.merged_with(snapshot.macs)
        replayed = replayed.merged_with(snapshot.replayed_macs)
        timings = timings.merged_with(snapshot.timings)
    computed_requests = sum(
        s.requests_completed - s.requests_replayed for s in snapshots.values()
    )
    shared_row_macs = sum(s.wave_shared_row_macs for s in snapshots.values())
    total_row_macs = sum(s.wave_total_row_macs for s in snapshots.values())
    return ShardedStatsSnapshot(
        per_shard=dict(snapshots),
        requests_completed=sum(s.requests_completed for s in snapshots.values()),
        requests_failed=sum(s.requests_failed for s in snapshots.values()),
        requests_rejected=sum(s.requests_rejected for s in snapshots.values()),
        requests_shed=sum(s.requests_shed for s in snapshots.values()),
        requests_replayed=sum(s.requests_replayed for s in snapshots.values()),
        nodes_completed=sum(s.nodes_completed for s in snapshots.values()),
        batches_dispatched=sum(s.batches_dispatched for s in snapshots.values()),
        batch_policy=next(
            (s.batch_policy for s in snapshots.values()), "static"
        ),
        controller_adjustments=sum(
            s.controller_adjustments for s in snapshots.values()
        ),
        batch_width_p50=max(
            (s.batch_width_p50 for s in snapshots.values()), default=0.0
        ),
        batch_width_p95=max(
            (s.batch_width_p95 for s in snapshots.values()), default=0.0
        ),
        macs=macs,
        replayed_macs=replayed,
        timings=timings,
        latency=merge_latency_summaries([s.latency for s in snapshots.values()]),
        cache_hits=sum(s.cache_hits for s in snapshots.values()),
        cache_misses=sum(s.cache_misses for s in snapshots.values()),
        result_cache_hits=sum(s.result_cache_hits for s in snapshots.values()),
        result_cache_misses=sum(s.result_cache_misses for s in snapshots.values()),
        waves_dispatched=sum(s.waves_dispatched for s in snapshots.values()),
        wave_members=sum(s.wave_members for s in snapshots.values()),
        wave_width_p50=max(
            (s.wave_width_p50 for s in snapshots.values()), default=0.0
        ),
        shared_row_fraction=(
            shared_row_macs / total_row_macs if total_row_macs else 0.0
        ),
        macs_per_request=(
            macs.total / computed_requests if computed_requests > 0 else 0.0
        ),
        cache_subset_hits=sum(s.cache_subset_hits for s in snapshots.values()),
    )
