"""Sharded graph store and shard-parallel inference.

The paper's online setting assumes one process holds the whole graph's
state; this package removes that ceiling while keeping every output
bit-identical to the single-process :class:`~repro.core.NAIPredictor`:

* :class:`GraphPartitioner` — deterministic edge-cut partitioning (hash or
  degree-balanced) into a :class:`ShardPlan`;
* :class:`ShardedGraphStore` / :class:`GraphShard` — per-shard local CSR
  blocks (raw + normalized rows, features, degrees) with halo/ghost maps,
  serving cross-shard k-hop expansion and
  :class:`~repro.graph.sampling.SupportBundle` assembly;
* :class:`ShardedStationaryState` — the O(n) stationary state computed
  shard-locally and reduced with the exact accumulator of
  :mod:`repro.core.reduction` (partition-independent bit for bit);
* :class:`ShardedPredictor` / :class:`ShardEngine` — the coordinator
  surface mirroring ``NAIPredictor.prepare``/``predict``;
* :class:`ShardRouter` — one :class:`~repro.serving.InferenceServer` worker
  group per shard, ownership routing, fan-out of mixed-shard requests and
  fleet-level stats merging (:class:`ShardedStatsSnapshot`).

See ``docs/sharding.md`` for the guided tour and
``benchmarks/bench_sharding.py`` for the equivalence/memory/traffic numbers
behind ``BENCH_sharding.json``.
"""

from .partitioner import GraphPartitioner, ShardPlan, plan_replicas_for_load
from .predictor import ShardEngine, ShardServingView, ShardedPredictor
from .router import RoutedRequest, RoutedResponse, ShardRouter
from .stationary import (
    ShardedStationaryState,
    compute_shard_stationary_partial,
    compute_sharded_stationary,
)
from .stats import ShardedStatsSnapshot, merge_latency_summaries, merge_serving_snapshots
from .feature_store import TieredFeatureRows, TieredFeatureStore
from .store import GraphShard, ShardTraffic, ShardedGraphStore

__all__ = [
    "GraphPartitioner",
    "GraphShard",
    "RoutedRequest",
    "RoutedResponse",
    "ShardEngine",
    "TieredFeatureRows",
    "TieredFeatureStore",
    "ShardPlan",
    "plan_replicas_for_load",
    "ShardRouter",
    "ShardServingView",
    "ShardTraffic",
    "ShardedGraphStore",
    "ShardedPredictor",
    "ShardedStationaryState",
    "ShardedStatsSnapshot",
    "compute_shard_stationary_partial",
    "compute_sharded_stationary",
    "merge_latency_summaries",
    "merge_serving_snapshots",
]
