"""The shard router: one serving worker group per shard, ownership routing.

:class:`ShardRouter` fronts a :class:`~repro.shard.predictor.ShardedPredictor`
with one :class:`~repro.serving.InferenceServer` per shard — each with its
own request queue, micro-batcher, caches and worker pool, all homed on that
shard so halo traffic is attributed correctly.  A submitted request is split
by node ownership: a single-owner request is forwarded whole; a mixed-shard
request fans out one sub-request per owning shard, and the returned
:class:`RoutedResponse` stitches the per-shard answers back into request
order.

Routing never changes per-node results: predictions and exit depths are
independent of batch composition (the property micro-batching already
relies on), so a routed response is bit-identical to the unsharded
predictor's answer for the same nodes.  Batch *compositions* do change, so
MAC totals follow serving semantics (shared supporting subgraphs), exactly
as unsharded micro-batching does; the offline bit-equality oracle for MAC
totals is :meth:`ShardedPredictor.predict`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import ServingConfig
from ..exceptions import ConfigurationError, ServingError
from ..serving.clock import Clock
from ..serving.controller import build_controller
from ..serving.queue import InferenceRequest, ServingResponse
from ..serving.server import InferenceServer
from .predictor import ShardedPredictor
from .stats import ShardedStatsSnapshot, merge_serving_snapshots


@dataclass(frozen=True)
class RoutedResponse:
    """Per-request outcome reassembled from the owning shards.

    ``predictions``/``depths`` cover ``node_ids`` in request order.
    ``per_shard`` maps each participating shard to the
    :class:`~repro.serving.ServingResponse` of its sub-request;
    ``latency_seconds`` is the slowest sub-request (the caller-visible
    latency of the fan-out).
    """

    node_ids: np.ndarray
    predictions: np.ndarray
    depths: np.ndarray
    latency_seconds: float
    per_shard: dict[int, ServingResponse]

    @property
    def num_shards_touched(self) -> int:
        return len(self.per_shard)


class RoutedRequest:
    """Handle over the per-shard sub-requests of one routed submission."""

    def __init__(
        self,
        node_ids: np.ndarray,
        parts: list[tuple[int, np.ndarray, InferenceRequest]],
    ) -> None:
        self.node_ids = node_ids
        self._parts = parts

    def done(self) -> bool:
        """Whether every sub-request has completed (or failed)."""
        return all(handle.done() for _, _, handle in self._parts)

    def result(self, timeout: float | None = None) -> RoutedResponse:
        """Block for every shard's answer and reassemble request order."""
        predictions = np.empty(self.node_ids.shape[0], dtype=np.int64)
        depths = np.empty(self.node_ids.shape[0], dtype=np.int64)
        per_shard: dict[int, ServingResponse] = {}
        latency = 0.0
        for shard_id, positions, handle in self._parts:
            response = handle.result(timeout=timeout)
            predictions[positions] = response.predictions
            depths[positions] = response.depths
            per_shard[shard_id] = response
            latency = max(latency, response.latency_seconds)
        return RoutedResponse(
            node_ids=self.node_ids,
            predictions=predictions,
            depths=depths,
            latency_seconds=latency,
            per_shard=per_shard,
        )


class ShardRouter:
    """Routes requests to per-shard inference servers and merges their stats."""

    def __init__(
        self,
        predictor: ShardedPredictor,
        config: ServingConfig | None = None,
        *,
        clock: Clock | None = None,
    ) -> None:
        if not predictor.prepared:
            raise ServingError(
                "prepare the ShardedPredictor before routing requests to it"
            )
        self.predictor = predictor
        self.config = config if config is not None else ServingConfig()
        # One controller *per shard*: a hot shard widens its batches toward
        # the ceilings independently, while a cold one stays at the idle
        # operating point — adaptive batching must not couple shard loads.
        self.controllers = {
            shard_id: build_controller(self.config)
            for shard_id in range(predictor.num_shards)
        }
        self.servers = {
            shard_id: InferenceServer(
                predictor.shard_view(shard_id),
                self.config,
                clock=clock,
                controller=self.controllers[shard_id],
            )
            for shard_id in range(predictor.num_shards)
        }
        self._closed = False

    # ------------------------------------------------------------------ #
    def submit(
        self, node_ids: np.ndarray, *, timeout: float | None = None
    ) -> RoutedRequest:
        """Split ``node_ids`` by owner and enqueue on the owning servers."""
        if self._closed:
            raise ServingError("the shard router is closed")
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.ndim != 1 or node_ids.size == 0:
            raise ConfigurationError(
                "a routed request needs a non-empty 1-D array of node ids"
            )
        owners = self.predictor.store.owner_of(node_ids)
        parts: list[tuple[int, np.ndarray, InferenceRequest]] = []
        for shard_id in np.unique(owners):
            shard_id = int(shard_id)
            positions = np.flatnonzero(owners == shard_id)
            handle = self.servers[shard_id].submit(
                node_ids[positions], timeout=timeout
            )
            parts.append((shard_id, positions, handle))
        return RoutedRequest(node_ids, parts)

    def predict_many(
        self,
        batches,
        *,
        timeout: float | None = None,
    ) -> list[RoutedResponse]:
        """Submit every batch, then gather responses in submission order.

        ``timeout`` bounds each step — every sub-request's submit (a full
        shard queue under the ``"block"`` policy raises instead of waiting
        forever) and every result gather.
        """
        handles = [self.submit(batch, timeout=timeout) for batch in batches]
        return [handle.result(timeout=timeout) for handle in handles]

    def drain(self, timeout: float | None = None) -> None:
        """Block until every shard server has answered its accepted requests."""
        for server in self.servers.values():
            server.drain(timeout=timeout)

    def stats(self) -> ShardedStatsSnapshot:
        """Merged fleet statistics plus the untouched per-shard snapshots."""
        return merge_serving_snapshots(
            {shard_id: server.stats() for shard_id, server in self.servers.items()}
        )

    def controller_state(self) -> dict[int, dict]:
        """Per-shard batching-controller state (policy, level, adjustments)."""
        return {
            shard_id: controller.describe()
            for shard_id, controller in self.controllers.items()
        }

    def traffic(self) -> dict:
        """Cross-shard fetch traffic (rows and bytes) of the routed fleet.

        Every per-shard server's engines fetch through the store's
        :class:`~repro.transport.ShardTransport`; this surfaces the
        row/byte counters plus the transport's own round/byte stats — the
        measurement surface the locality-aware-routing follow-up needs.
        """
        store = self.predictor.store
        return {
            "shard_traffic": store.traffic.as_dict(),
            "transport": store.transport.stats.as_dict(),
        }

    def close(self) -> None:
        """Drain and stop every shard server."""
        if self._closed:
            return
        self._closed = True
        for server in self.servers.values():
            server.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
