"""The shard router: one serving worker group per shard, ownership routing.

:class:`ShardRouter` fronts a :class:`~repro.shard.predictor.ShardedPredictor`
with one :class:`~repro.serving.InferenceServer` per shard — each with its
own request queue, micro-batcher, caches and worker pool, all homed on that
shard so halo traffic is attributed correctly.  A submitted request is split
by node ownership: a single-owner request is forwarded whole; a mixed-shard
request fans out one sub-request per owning shard, and the returned
:class:`RoutedResponse` stitches the per-shard answers back into request
order.

Routing never changes per-node results: predictions and exit depths are
independent of batch composition (the property micro-batching already
relies on), so a routed response is bit-identical to the unsharded
predictor's answer for the same nodes.  Batch *compositions* do change, so
MAC totals follow serving semantics (shared supporting subgraphs), exactly
as unsharded micro-batching does; the offline bit-equality oracle for MAC
totals is :meth:`ShardedPredictor.predict`.

Versioned rollout
-----------------
The router holds its serving state in **generations**, one per installed
:class:`~repro.shard.partitioner.ShardPlan` version.  :meth:`ShardRouter.
install_plan` accepts a second *prepared* predictor whose plan carries a
strictly newer version, spins up its per-shard servers, and atomically makes
it the active generation: new submissions route on the new plan immediately,
while requests already accepted by the old generation's servers keep
draining there — nothing is cancelled, nothing is re-routed mid-flight, and
per-version traffic accounting (:meth:`rollout_state`) shows exactly which
version answered what.  :meth:`finish_rollout` then drains and retires the
old generations.  Because every generation's results are bit-identical to
the unsharded predictor, a rollout can change *placement* but never
*answers* — the property the rollout tests pin down.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.config import ServingConfig
from ..exceptions import ConfigurationError, ServingError
from ..obs.export import prometheus_text
from ..obs.registry import (
    MetricsRegistry,
    publish_sharded_snapshot,
    publish_transport_traffic,
)
from ..serving.clock import Clock
from ..serving.controller import build_controller
from ..serving.queue import (
    NEW_TRACE,
    InferenceRequest,
    ServingResponse,
    SubmitOptions,
)
from ..serving.server import InferenceServer
from ..serving.stats import ServingStatsSnapshot
from .predictor import ShardedPredictor
from .stats import ShardedStatsSnapshot, merge_serving_snapshots


@dataclass(frozen=True)
class RoutedResponse:
    """Per-request outcome reassembled from the owning shards.

    ``predictions``/``depths`` cover ``node_ids`` in request order.
    ``per_shard`` maps each participating shard to the
    :class:`~repro.serving.ServingResponse` of its sub-request;
    ``latency_seconds`` is the slowest sub-request (the caller-visible
    latency of the fan-out).  ``plan_version`` names the plan generation
    that routed the request.
    """

    node_ids: np.ndarray
    predictions: np.ndarray
    depths: np.ndarray
    latency_seconds: float
    per_shard: dict[int, ServingResponse]
    plan_version: int = 0

    @property
    def num_shards_touched(self) -> int:
        return len(self.per_shard)


class RoutedRequest:
    """Handle over the per-shard sub-requests of one routed submission."""

    def __init__(
        self,
        node_ids: np.ndarray,
        parts: list[tuple[int, np.ndarray, InferenceRequest]],
        *,
        plan_version: int = 0,
        tracer=None,
        trace=None,
        submitted_at: float | None = None,
    ) -> None:
        self.node_ids = node_ids
        self.plan_version = plan_version
        self._parts = parts
        #: Router-level :class:`~repro.obs.TraceContext` (``None`` untraced);
        #: the ``route`` span is emitted when :meth:`result` first gathers
        #: every shard's answer, so its end stamp is the fan-in instant.
        self._tracer = tracer
        self._trace = trace
        self._submitted_at = submitted_at
        self._route_emitted = False

    def done(self) -> bool:
        """Whether every sub-request has completed (or failed)."""
        return all(handle.done() for _, _, handle in self._parts)

    def result(self, timeout: float | None = None) -> RoutedResponse:
        """Block for every shard's answer and reassemble request order."""
        predictions = np.empty(self.node_ids.shape[0], dtype=np.int64)
        depths = np.empty(self.node_ids.shape[0], dtype=np.int64)
        per_shard: dict[int, ServingResponse] = {}
        latency = 0.0
        for shard_id, positions, handle in self._parts:
            response = handle.result(timeout=timeout)
            predictions[positions] = response.predictions
            depths[positions] = response.depths
            per_shard[shard_id] = response
            latency = max(latency, response.latency_seconds)
        if (
            self._tracer is not None
            and self._trace is not None
            and not self._route_emitted
        ):
            self._route_emitted = True
            self._tracer.emit(
                "route",
                self._trace,
                self._submitted_at,
                self._tracer.clock.now(),
                plan_version=self.plan_version,
                num_shards=len(per_shard),
                num_nodes=int(self.node_ids.shape[0]),
            )
        return RoutedResponse(
            node_ids=self.node_ids,
            predictions=predictions,
            depths=depths,
            latency_seconds=latency,
            per_shard=per_shard,
            plan_version=self.plan_version,
        )


@dataclass
class _Generation:
    """One plan version's serving state: predictor, controllers, servers."""

    version: int
    predictor: ShardedPredictor
    controllers: dict[int, object]
    servers: dict[int, InferenceServer]
    requests_routed: int = 0
    draining: bool = False
    _route_lock: threading.Lock = field(default_factory=threading.Lock)

    def count_routed(self) -> None:
        with self._route_lock:
            self.requests_routed += 1

    def drain(self, timeout: float | None = None) -> None:
        for server in self.servers.values():
            server.drain(timeout=timeout)

    def close(self) -> None:
        for server in self.servers.values():
            server.close()

    def snapshot(self) -> dict:
        """Per-version accounting row for :meth:`ShardRouter.rollout_state`.

        ``requests_routed`` counts router-level submissions;
        ``requests_completed``/``failed`` count per-shard *sub*-requests
        (a mixed-owner submission fans out to several servers).
        """
        stats = merge_serving_snapshots(
            {shard_id: server.stats() for shard_id, server in self.servers.items()}
        )
        return {
            "version": self.version,
            "draining": self.draining,
            "num_shards": self.predictor.num_shards,
            "requests_routed": self.requests_routed,
            "requests_completed": stats.requests_completed,
            "requests_failed": stats.requests_failed,
            "nodes_completed": stats.nodes_completed,
        }


class ShardRouter:
    """Routes requests to per-shard inference servers and merges their stats."""

    def __init__(
        self,
        predictor: ShardedPredictor,
        config: ServingConfig | None = None,
        *,
        clock: Clock | None = None,
        tracer=None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else ServingConfig()
        self._clock = clock
        #: Optional :class:`~repro.obs.Tracer` threaded through every
        #: generation's servers, stores and transports; ``None`` keeps the
        #: whole fleet on the zero-cost untraced path.
        self.tracer = tracer
        #: The fleet's :class:`~repro.obs.MetricsRegistry`; :meth:`stats`
        #: republishes every snapshot into it so one scrape surface covers
        #: serving, traffic and transport counters.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._plan_lock = threading.Lock()
        self._closed = False
        self._retired: list[_Generation] = []
        self._active = self._build_generation(predictor)

    def _build_generation(self, predictor: ShardedPredictor) -> _Generation:
        if not predictor.prepared:
            raise ServingError(
                "prepare the ShardedPredictor before routing requests to it"
            )
        # One controller *per shard*: a hot shard widens its batches toward
        # the ceilings independently, while a cold one stays at the idle
        # operating point — adaptive batching must not couple shard loads.
        controllers = {
            shard_id: build_controller(self.config)
            for shard_id in range(predictor.num_shards)
        }
        if self.tracer is not None:
            # One tracer for the whole generation: per-shard servers, the
            # store's fetch rounds and the transport's wire frames all stamp
            # spans into the same recorder under the same clock.
            predictor.store._set_tracer(self.tracer)
        servers = {
            shard_id: InferenceServer(
                predictor.shard_view(shard_id),
                self.config,
                clock=self._clock,
                controller=controllers[shard_id],
                tracer=self.tracer,
            )
            for shard_id in range(predictor.num_shards)
        }
        return _Generation(
            version=int(predictor.store.plan.version),
            predictor=predictor,
            controllers=controllers,
            servers=servers,
        )

    # ------------------------------------------------------------------ #
    # Active-generation surface (the pre-rollout API, unchanged)
    # ------------------------------------------------------------------ #
    @property
    def predictor(self) -> ShardedPredictor:
        return self._active.predictor

    @property
    def controllers(self) -> dict:
        return self._active.controllers

    @property
    def servers(self) -> dict[int, InferenceServer]:
        return self._active.servers

    @property
    def plan_version(self) -> int:
        return self._active.version

    # ------------------------------------------------------------------ #
    # Versioned rollout
    # ------------------------------------------------------------------ #
    def install_plan(self, predictor: ShardedPredictor) -> int:
        """Atomically make ``predictor`` (a newer plan version) active.

        ``predictor`` must be prepared onto a plan whose ``version`` is
        strictly greater than the active one (see
        :meth:`~repro.shard.partitioner.ShardPlan.with_version` and
        ``ShardedPredictor.prepare(..., plan=...)``).  New submissions route
        on it from the moment this returns; requests already accepted by the
        previous generation's servers finish there.  Call
        :meth:`finish_rollout` to drain and retire the old generation.
        Returns the now-active version.
        """
        if not predictor.prepared:
            raise ServingError("install_plan needs a prepared ShardedPredictor")
        new_version = int(predictor.store.plan.version)
        with self._plan_lock:
            if self._closed:
                raise ServingError("the shard router is closed")
            if new_version <= self._active.version:
                raise ConfigurationError(
                    f"install_plan needs a newer plan version: active is "
                    f"{self._active.version}, offered {new_version}"
                )
            # Build the successor's servers *before* the swap so the active
            # generation keeps serving until the new one can.
            generation = self._build_generation(predictor)
            old = self._active
            old.draining = True
            self._retired.append(old)
            self._active = generation
        return new_version

    def finish_rollout(self, timeout: float | None = None) -> int:
        """Drain and close every retired generation; returns how many."""
        with self._plan_lock:
            retiring = list(self._retired)
            self._retired = []
        for generation in retiring:
            generation.drain(timeout=timeout)
            generation.close()
        return len(retiring)

    def rollout_state(self) -> list[dict]:
        """Per-version traffic accounting, oldest generation first.

        Each row reports the version, whether it is draining, and its
        routed/completed/failed request counts — during a rollout the old
        version's completed count catches up to its routed count while the
        new version takes all fresh routing.
        """
        with self._plan_lock:
            generations = [*self._retired, self._active]
        return [generation.snapshot() for generation in generations]

    # ------------------------------------------------------------------ #
    def submit(
        self,
        node_ids: np.ndarray,
        options: SubmitOptions | None = None,
        *,
        timeout: float | None = None,
        tenant: str | None = None,
    ) -> RoutedRequest:
        """Split ``node_ids`` by owner and enqueue on the owning servers.

        Accepts the same :class:`~repro.serving.queue.SubmitOptions` as
        :meth:`repro.serving.InferenceServer.submit` — swap a single
        server for a routed fleet without touching call sites.  The
        ``timeout``/``tenant`` keywords remain as a compatibility shim
        when no ``options`` is given; ``options.trace_parent`` nests the
        router's ``route`` span under an upstream context (``None`` opts
        the whole fan-out out of tracing).
        """
        if options is None:
            options = SubmitOptions(timeout=timeout, tenant=tenant)
        elif timeout is not None or tenant is not None:
            raise ConfigurationError(
                "pass either a SubmitOptions or the legacy timeout/tenant "
                "keywords, not both"
            )
        with self._plan_lock:
            if self._closed:
                raise ServingError("the shard router is closed")
            # Pin the generation under the lock: a concurrent install_plan
            # swaps the active pointer, but this request keeps routing (and
            # draining) on the generation it was admitted to.
            generation = self._active
            generation.count_routed()
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.ndim != 1 or node_ids.size == 0:
            raise ConfigurationError(
                "a routed request needs a non-empty 1-D array of node ids"
            )
        owners = generation.predictor.store.owner_of(node_ids)
        route_ctx = None
        submitted_at = None
        if self.tracer is not None and options.trace_parent is not None:
            # The router-level root: per-shard server requests become its
            # children via ``trace_parent``, so one trace tree covers the
            # whole fan-out (an unsampled request stays fully untraced —
            # the servers never see a parent and allocate nothing).
            route_ctx = (
                self.tracer.new_trace()
                if options.trace_parent is NEW_TRACE
                else self.tracer.child(options.trace_parent)
            )
            if route_ctx is not None:
                submitted_at = self.tracer.clock.now()
        parts: list[tuple[int, np.ndarray, InferenceRequest]] = []
        for shard_id in np.unique(owners):
            shard_id = int(shard_id)
            positions = np.flatnonzero(owners == shard_id)
            handle = generation.servers[shard_id].submit(
                node_ids[positions],
                SubmitOptions(
                    timeout=options.timeout,
                    trace_parent=route_ctx,
                    tenant=options.tenant,
                ),
            )
            parts.append((shard_id, positions, handle))
        return RoutedRequest(
            node_ids,
            parts,
            plan_version=generation.version,
            tracer=self.tracer,
            trace=route_ctx,
            submitted_at=submitted_at,
        )

    def predict_many(
        self,
        batches,
        *,
        timeout: float | None = None,
    ) -> list[RoutedResponse]:
        """Submit every batch, then gather responses in submission order.

        ``timeout`` bounds each step — every sub-request's submit (a full
        shard queue under the ``"block"`` policy raises instead of waiting
        forever) and every result gather.
        """
        handles = [self.submit(batch, timeout=timeout) for batch in batches]
        return [handle.result(timeout=timeout) for handle in handles]

    def drain(self, timeout: float | None = None) -> None:
        """Block until every generation's servers answered their requests."""
        with self._plan_lock:
            generations = [*self._retired, self._active]
        for generation in generations:
            generation.drain(timeout=timeout)

    def stats(self) -> ShardedStatsSnapshot:
        """Merged fleet statistics plus the untouched per-shard snapshots.

        Covers the *active* generation's servers (use :meth:`rollout_state`
        for per-version rows during a rollout), stamped with the active plan
        version and the replication counters of the store's transport.
        """
        generation = self._active
        merged = merge_serving_snapshots(
            {
                shard_id: server.stats()
                for shard_id, server in generation.servers.items()
            }
        )
        transport_stats = generation.predictor.store.transport.stats
        snapshot = replace(
            merged,
            plan_version=generation.version,
            transport_retries=transport_stats.retries,
            transport_failovers=transport_stats.failovers,
            transport_health_transitions=transport_stats.health_transitions,
        )
        # Re-sync the registry from the authoritative accumulators: counters
        # move to the snapshot totals (never replayed as deltas), gauges take
        # the latest reading — one scrape surface for the whole fleet.
        publish_sharded_snapshot(self.registry, snapshot)
        publish_transport_traffic(self.registry, self.traffic())
        return snapshot

    def interval_latency_samples(self) -> dict[int, tuple[float, ...]]:
        """Per-shard raw request latencies of the current interval window.

        Non-destructive; read these *before* :meth:`interval_stats` (which
        resets the window by default).  Covers the active generation.
        """
        return {
            shard_id: server.interval_latency_samples()
            for shard_id, server in self._active.servers.items()
        }

    def interval_stats(
        self, *, reset: bool = True
    ) -> dict[int, ServingStatsSnapshot]:
        """Per-shard statistics since the last interval reset.

        The windowed-delta surface behind
        :class:`~repro.obs.monitor.HealthMonitor`: each call returns what
        each active-generation server did since the previous call (with
        ``reset=True``, the default).  During a rollout the freshly
        installed generation starts with empty intervals; the draining
        generation's tail is accounted in :meth:`rollout_state`, not here.
        """
        return {
            shard_id: server.interval_stats(reset=reset)
            for shard_id, server in self._active.servers.items()
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of the fleet's metrics registry.

        Refreshes the registry from a fresh :meth:`stats` snapshot first, so
        the scrape always reflects the current counters.
        """
        self.stats()
        return prometheus_text(self.registry)

    def controller_state(self) -> dict[int, dict]:
        """Per-shard batching-controller state (policy, level, adjustments)."""
        return {
            shard_id: controller.describe()
            for shard_id, controller in self._active.controllers.items()
        }

    def traffic(self) -> dict:
        """Cross-shard fetch traffic (rows and bytes) of the routed fleet.

        Every per-shard server's engines fetch through the store's
        :class:`~repro.transport.ShardTransport`; this surfaces the
        row/byte counters plus the transport's own round/byte stats — the
        measurement surface the locality-aware-routing follow-up needs.
        """
        store = self._active.predictor.store
        return {
            "shard_traffic": store.traffic.as_dict(),
            "transport": store.transport.stats.as_dict(),
        }

    def close(self) -> None:
        """Drain and stop every generation's servers."""
        with self._plan_lock:
            if self._closed:
                return
            self._closed = True
            generations = [*self._retired, self._active]
            self._retired = []
        for generation in generations:
            generation.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
