"""INT8 post-training quantization of linear layers.

This reproduces the "Quantization" baseline of the paper (Table V): classifier
weights are quantized from FP32/FP64 to INT8 with a per-tensor affine scheme,
which reduces classification MACs but leaves feature propagation untouched.
The quantized layers execute integer matrix products and dequantize the
accumulator, so the accuracy drop of real INT8 inference is reproduced
faithfully rather than merely simulated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from .modules import MLP, Linear, Module
from .tensor import Tensor


@dataclass(frozen=True)
class QuantizationParams:
    """Scale/zero-point pair for symmetric-range affine INT8 quantization."""

    scale: float
    zero_point: int

    @classmethod
    def from_array(cls, values: np.ndarray, *, num_bits: int = 8) -> "QuantizationParams":
        """Compute quantization parameters covering the value range of ``values``."""
        if num_bits < 2 or num_bits > 16:
            raise ConfigurationError(f"num_bits must be in [2, 16], got {num_bits}")
        qmin, qmax = -(2 ** (num_bits - 1)), 2 ** (num_bits - 1) - 1
        vmin, vmax = float(values.min(initial=0.0)), float(values.max(initial=0.0))
        vmin, vmax = min(vmin, 0.0), max(vmax, 0.0)
        span = vmax - vmin
        scale = span / (qmax - qmin) if span > 0 else 1.0
        zero_point = int(round(qmin - vmin / scale))
        zero_point = int(np.clip(zero_point, qmin, qmax))
        return cls(scale=scale, zero_point=zero_point)

    def quantize(self, values: np.ndarray, *, num_bits: int = 8) -> np.ndarray:
        """Quantize ``values`` to integers with this scale/zero point."""
        qmin, qmax = -(2 ** (num_bits - 1)), 2 ** (num_bits - 1) - 1
        quantized = np.round(values / self.scale) + self.zero_point
        return np.clip(quantized, qmin, qmax).astype(np.int32)

    def dequantize(self, values: np.ndarray) -> np.ndarray:
        """Map integer ``values`` back to floating point."""
        return (values.astype(np.float64) - self.zero_point) * self.scale


class QuantizedLinear(Module):
    """An INT8-quantized snapshot of a trained :class:`Linear` layer."""

    def __init__(self, layer: Linear, *, num_bits: int = 8) -> None:
        super().__init__()
        self.in_features = layer.in_features
        self.out_features = layer.out_features
        self.num_bits = num_bits
        self.weight_params = QuantizationParams.from_array(layer.weight.data, num_bits=num_bits)
        self.weight_q = self.weight_params.quantize(layer.weight.data, num_bits=num_bits)
        self.bias = layer.bias.data.copy() if layer.bias is not None else None

    def forward(self, inputs: Tensor | np.ndarray) -> Tensor:
        raw = inputs.data if isinstance(inputs, Tensor) else np.asarray(inputs, dtype=np.float64)
        input_params = QuantizationParams.from_array(raw, num_bits=self.num_bits)
        inputs_q = input_params.quantize(raw, num_bits=self.num_bits)
        # Integer accumulation, then dequantize:  (q_x - z_x)(q_w - z_w) s_x s_w
        centered_x = inputs_q.astype(np.int64) - input_params.zero_point
        centered_w = self.weight_q.astype(np.int64) - self.weight_params.zero_point
        accumulator = centered_x @ centered_w
        output = accumulator.astype(np.float64) * (input_params.scale * self.weight_params.scale)
        if self.bias is not None:
            output = output + self.bias
        return Tensor(output)


class QuantizedMLP(Module):
    """INT8-quantized snapshot of a trained :class:`MLP` classifier."""

    def __init__(self, mlp: MLP, *, num_bits: int = 8) -> None:
        super().__init__()
        self.layers = [QuantizedLinear(layer, num_bits=num_bits) for layer in mlp.layers]
        self.in_features = mlp.in_features
        self.out_features = mlp.out_features
        self.hidden_dims = tuple(mlp.hidden_dims)

    def forward(self, inputs: Tensor | np.ndarray) -> Tensor:
        hidden = inputs
        for index, layer in enumerate(self.layers):
            hidden = layer(hidden)
            if index < len(self.layers) - 1:
                hidden = hidden.relu()
        return hidden


def quantize_classifier(classifier: Module, *, num_bits: int = 8) -> Module:
    """Quantize a trained classifier (``MLP`` or ``Linear``) to INT8."""
    if isinstance(classifier, MLP):
        return QuantizedMLP(classifier, num_bits=num_bits)
    if isinstance(classifier, Linear):
        return QuantizedLinear(classifier, num_bits=num_bits)
    raise ConfigurationError(
        f"cannot quantize module of type {type(classifier).__name__}"
    )
