"""Optimizers: SGD (with momentum) and Adam with decoupled weight decay.

The paper trains every classifier, gate and attention vector with Adam plus a
weight-decay term; both are implemented here against the autograd
:class:`~repro.nn.tensor.Tensor`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..exceptions import ConfigurationError
from .modules import Parameter


class Optimizer:
    """Base class holding the parameter list and the ``zero_grad`` helper."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        """Clear gradients on all tracked parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one SGD update using the accumulated gradients."""
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            parameter.data = parameter.data - self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with optional weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError(f"betas must lie in [0, 1), got {betas}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
