"""Weight initialisation helpers."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    fan_in: int,
    fan_out: int,
    *,
    gain: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    generator = rng if rng is not None else np.random.default_rng()
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    """Zero-initialised array of the given shape."""
    return np.zeros(shape, dtype=np.float64)


def normal(
    *shape: int,
    scale: float = 0.01,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Small Gaussian initialisation (used for attention score vectors)."""
    generator = rng if rng is not None else np.random.default_rng()
    return generator.normal(0.0, scale, size=shape)
