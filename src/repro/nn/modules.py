"""Neural-network modules: ``Module`` base class, ``Linear`` and ``MLP``.

The classifiers ``f^(l)`` in the paper are plain MLPs applied to propagated
features; SIGN and GAMLP additionally use per-depth linear transformations
and attention vectors.  All of those are expressed with the two modules
defined here plus the functional ops.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from . import functional as F
from .init import xavier_uniform, zeros
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter."""

    def __init__(self, data: np.ndarray, *, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Minimal module abstraction with parameter discovery and train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    # -- parameter discovery ------------------------------------------- #
    def parameters(self) -> Iterator[Parameter]:
        """Yield every :class:`Parameter` reachable from this module."""
        seen: set[int] = set()
        for value in self.__dict__.values():
            yield from _collect_parameters(value, seen)

    def named_parameters(self) -> Iterator[tuple[str, Parameter]]:
        """Yield ``(attribute_path, parameter)`` pairs."""
        seen: set[int] = set()
        for key, value in self.__dict__.items():
            yield from _collect_named(value, key, seen)

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- modes ----------------------------------------------------------- #
    def train(self) -> "Module":
        """Switch this module (and children) into training mode."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Switch this module (and children) into evaluation mode."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            for child in _iter_modules(value):
                child._set_mode(training)

    # -- state dict ------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by attribute path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays saved by :meth:`state_dict`."""
        parameters = dict(self.named_parameters())
        missing = set(parameters) - set(state)
        unexpected = set(state) - set(parameters)
        if missing or unexpected:
            raise ConfigurationError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            target = parameters[name]
            if target.data.shape != values.shape:
                raise ConfigurationError(
                    f"parameter {name} has shape {target.data.shape}, state has {values.shape}"
                )
            target.data = values.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _iter_modules(value) -> Iterator[Module]:
    if isinstance(value, Module):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _iter_modules(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _iter_modules(item)


def _collect_parameters(value, seen: set[int]) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield value
    elif isinstance(value, Module):
        for sub in value.__dict__.values():
            yield from _collect_parameters(sub, seen)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_parameters(item, seen)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect_parameters(item, seen)


def _collect_named(value, prefix: str, seen: set[int]) -> Iterator[tuple[str, Parameter]]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield prefix, value
    elif isinstance(value, Module):
        for key, sub in value.__dict__.items():
            yield from _collect_named(sub, f"{prefix}.{key}", seen)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            yield from _collect_named(item, f"{prefix}.{index}", seen)
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from _collect_named(item, f"{prefix}.{key}", seen)


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError("Linear layer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform(in_features, out_features, rng=rng), name="weight")
        self.bias = Parameter(zeros(out_features), name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        inputs = Tensor.as_tensor(inputs)
        output = inputs @ self.weight
        if self.bias is not None:
            output = output + self.bias
        return output

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Dropout(Module):
    """Inverted dropout module (active only in training mode)."""

    def __init__(self, rate: float, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, inputs: Tensor) -> Tensor:
        return F.dropout(inputs, self.rate, training=self.training, rng=self._rng)


class MLP(Module):
    """Multi-layer perceptron with ReLU activations and dropout.

    ``hidden_dims=[]`` yields a single linear (logistic-regression) layer —
    exactly the classifier SGC uses.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        hidden_dims: Sequence[int] = (),
        *,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        dims = [in_features, *hidden_dims, out_features]
        generator = rng if rng is not None else np.random.default_rng()
        self.layers = [
            Linear(dims[i], dims[i + 1], rng=generator) for i in range(len(dims) - 1)
        ]
        self.dropout = Dropout(dropout, rng=generator)
        self.in_features = in_features
        self.out_features = out_features
        self.hidden_dims = tuple(hidden_dims)

    def forward(self, inputs: Tensor) -> Tensor:
        hidden = Tensor.as_tensor(inputs)
        for index, layer in enumerate(self.layers):
            hidden = layer(hidden)
            if index < len(self.layers) - 1:
                hidden = hidden.relu()
                hidden = self.dropout(hidden)
        return hidden

    def __repr__(self) -> str:
        return (
            f"MLP(in={self.in_features}, hidden={list(self.hidden_dims)}, "
            f"out={self.out_features})"
        )
