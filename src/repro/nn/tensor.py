"""A small vectorised reverse-mode autograd engine on top of NumPy.

The paper's models only require differentiable MLP classifiers, soft-max
attention and Gumbel-softmax gates, so this engine implements exactly the set
of operations those components need: broadcasted arithmetic, matrix products,
reductions, element-wise non-linearities, concatenation and indexing.

Gradients follow the usual tape-based approach: every operation records its
parents and a closure that accumulates gradients into them, and
:meth:`Tensor.backward` walks the tape in reverse topological order.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..exceptions import AutogradError

ArrayLike = "np.ndarray | float | int | Tensor"


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcasted dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor that tracks gradients.

    Parameters
    ----------
    data:
        Array data (copied to ``float64``).
    requires_grad:
        Whether to accumulate gradients for this tensor during backward.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # ensure Tensor.__rmul__ wins over ndarray ops

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        *,
        requires_grad: bool = False,
        name: str | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def as_tensor(value: "Tensor | np.ndarray | float | int | Sequence") -> "Tensor":
        """Wrap ``value`` into a constant :class:`Tensor` if it is not one."""
        return value if isinstance(value, Tensor) else Tensor(value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a copy, to protect the graph)."""
        return self.data.copy()

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph plumbing
    # ------------------------------------------------------------------ #
    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1.0, which requires this tensor
            to be a scalar.
        """
        if grad is None:
            if self.data.size != 1:
                raise AutogradError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            if id(node) in seen:
                return
            seen.add(id(node))
            while stack:
                current, children = stack[-1]
                advanced = False
                for child in children:
                    if id(child) not in seen:
                        seen.add(id(child))
                        stack.append((child, iter(child._parents)))
                        advanced = True
                        break
                if not advanced:
                    topo.append(current)
                    stack.pop()

        visit(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-Tensor.as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor.as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor.as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise AutogradError("tensor exponents are not supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = Tensor.as_tensor(other)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise AutogradError("matmul supports 2-D tensors only")
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad @ other.data.T)
            other._accumulate(self.data.T @ grad)

        return self._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Reductions and reshaping
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return self._make(data, (self,), backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad if keepdims else np.expand_dims(grad, axis)
            maxima = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == maxima).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * expanded)

        return self._make(data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return self._make(data, (self,), backward)

    def transpose(self) -> "Tensor":
        if self.data.ndim != 2:
            raise AutogradError("transpose supports 2-D tensors only")
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return self._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return self._make(data, (self,), backward)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"


def concatenate(tensors: Iterable[Tensor], axis: int = 1) -> Tensor:
    """Differentiable concatenation of tensors along ``axis``."""
    items = [Tensor.as_tensor(t) for t in tensors]
    if not items:
        raise AutogradError("concatenate requires at least one tensor")
    data = np.concatenate([t.data for t in items], axis=axis)
    sizes = [t.data.shape[axis] for t in items]
    offsets = np.cumsum([0] + sizes)

    out = Tensor(data, requires_grad=any(t.requires_grad for t in items))

    def backward(grad: np.ndarray) -> None:
        for tensor, start, end in zip(items, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, end)
            tensor._accumulate(grad[tuple(slicer)])

    if out.requires_grad:
        out._parents = tuple(items)
        out._backward = backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack of equally-shaped tensors along a new axis."""
    items = [Tensor.as_tensor(t) for t in tensors]
    if not items:
        raise AutogradError("stack requires at least one tensor")
    data = np.stack([t.data for t in items], axis=axis)
    out = Tensor(data, requires_grad=any(t.requires_grad for t in items))

    def backward(grad: np.ndarray) -> None:
        for position, tensor in enumerate(items):
            tensor._accumulate(np.take(grad, position, axis=axis))

    if out.requires_grad:
        out._parents = tuple(items)
        out._backward = backward
    return out
