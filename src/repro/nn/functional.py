"""Functional operations built on the autograd :class:`~repro.nn.tensor.Tensor`.

These cover everything the NAI pipeline needs: numerically stable softmax /
log-softmax, cross-entropy on hard and soft targets, knowledge-distillation
losses (Eq. 14-21 in the paper), dropout and the Gumbel-softmax relaxation
used by the gate-based NAP module (Eq. 11).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .tensor import Tensor


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` as a dense one-hot matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ShapeError("labels out of range for the requested number of classes")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def log_softmax(logits: Tensor, axis: int = 1) -> Tensor:
    """Numerically stable ``log softmax`` along ``axis``."""
    logits = Tensor.as_tensor(logits)
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def softmax(logits: Tensor, axis: int = 1, temperature: float = 1.0) -> Tensor:
    """Softmax with an optional distillation ``temperature`` (Eq. 14)."""
    logits = Tensor.as_tensor(logits)
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    if temperature != 1.0:
        logits = logits * (1.0 / temperature)
    return log_softmax(logits, axis=axis).exp()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer ``labels`` (Eq. 16)."""
    logits = Tensor.as_tensor(logits)
    num_classes = logits.shape[1]
    targets = one_hot(labels, num_classes)
    log_probs = log_softmax(logits, axis=1)
    per_node = -(log_probs * Tensor(targets)).sum(axis=1)
    return per_node.mean()


def soft_cross_entropy(logits: Tensor, target_probs: Tensor | np.ndarray) -> Tensor:
    """Cross-entropy against a soft target distribution.

    This is the distillation loss ``ℓ(p̃_student, p̃_teacher)`` of Eq. (15) and
    Eq. (21): the teacher distribution is treated as a constant.
    """
    logits = Tensor.as_tensor(logits)
    target = Tensor.as_tensor(target_probs)
    if tuple(target.shape) != tuple(logits.shape):
        raise ShapeError(
            f"target distribution shape {target.shape} does not match logits {logits.shape}"
        )
    log_probs = log_softmax(logits, axis=1)
    per_node = -(log_probs * target).sum(axis=1)
    return per_node.mean()


def soft_target_cross_entropy(probabilities: Tensor, target_probs: np.ndarray) -> Tensor:
    """Cross-entropy where the prediction is already a probability vector.

    Used for the ensemble-teacher constraint ``L_t`` (Eq. 20), whose
    prediction ``z̄`` is produced by a softmax over attention-weighted votes.
    """
    probabilities = Tensor.as_tensor(probabilities)
    target = np.asarray(target_probs, dtype=np.float64)
    if target.shape != tuple(probabilities.shape):
        raise ShapeError(
            f"target shape {target.shape} does not match predictions {probabilities.shape}"
        )
    eps = 1e-12
    clipped = probabilities * (1.0 - 2.0 * eps) + eps
    per_node = -(clipped.log() * Tensor(target)).sum(axis=1)
    return per_node.mean()


def dropout(
    inputs: Tensor,
    rate: float,
    *,
    training: bool,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Inverted dropout: zero activations with probability ``rate`` at train time."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return Tensor.as_tensor(inputs)
    generator = rng if rng is not None else np.random.default_rng()
    inputs = Tensor.as_tensor(inputs)
    mask = (generator.random(inputs.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return inputs * Tensor(mask)


def gumbel_softmax(
    logits: Tensor,
    *,
    temperature: float = 1.0,
    hard: bool = False,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Gumbel-softmax relaxation of a categorical sample (Jang et al., 2016).

    Used by the gate-based NAP module (Eq. 11) to produce (nearly) one-hot
    masks while keeping the gate weights trainable.  With ``hard=True`` the
    forward value is the exact one-hot argmax while the gradient flows
    through the soft relaxation (straight-through estimator).
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    logits = Tensor.as_tensor(logits)
    generator = rng if rng is not None else np.random.default_rng()
    uniform = np.clip(generator.random(logits.shape), 1e-12, 1.0 - 1e-12)
    gumbel_noise = -np.log(-np.log(uniform))
    noisy = (logits + Tensor(gumbel_noise)) * (1.0 / temperature)
    soft = softmax(noisy, axis=1)
    if not hard:
        return soft
    hard_values = np.zeros_like(soft.data)
    hard_values[np.arange(soft.shape[0]), soft.data.argmax(axis=1)] = 1.0
    # Straight-through: forward uses the hard mask, backward the soft one.
    return soft + Tensor(hard_values - soft.data)


def accuracy_from_logits(logits: np.ndarray | Tensor, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches ``labels``."""
    raw = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if raw.shape[0] != labels.shape[0]:
        raise ShapeError("logits and labels disagree on the number of rows")
    if labels.size == 0:
        return float("nan")
    return float((raw.argmax(axis=1) == labels).mean())
