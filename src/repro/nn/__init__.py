"""NumPy autograd substrate: tensors, modules, optimizers, losses, quantization."""

from . import functional
from .functional import (
    accuracy_from_logits,
    cross_entropy,
    dropout,
    gumbel_softmax,
    log_softmax,
    one_hot,
    soft_cross_entropy,
    soft_target_cross_entropy,
    softmax,
)
from .init import normal, xavier_uniform, zeros
from .modules import MLP, Dropout, Linear, Module, Parameter
from .optim import SGD, Adam, Optimizer
from .quantization import (
    QuantizationParams,
    QuantizedLinear,
    QuantizedMLP,
    quantize_classifier,
)
from .tensor import Tensor, concatenate, stack

__all__ = [
    "Adam",
    "Dropout",
    "Linear",
    "MLP",
    "Module",
    "Optimizer",
    "Parameter",
    "QuantizationParams",
    "QuantizedLinear",
    "QuantizedMLP",
    "SGD",
    "Tensor",
    "accuracy_from_logits",
    "concatenate",
    "cross_entropy",
    "dropout",
    "functional",
    "gumbel_softmax",
    "log_softmax",
    "normal",
    "one_hot",
    "quantize_classifier",
    "soft_cross_entropy",
    "soft_target_cross_entropy",
    "softmax",
    "stack",
    "xavier_uniform",
    "zeros",
]
