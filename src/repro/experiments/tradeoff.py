"""Figure 4 and Table VI: the accuracy/latency trade-off of NAI.

Figure 4 plots accuracy against per-node inference time for three operating
points of NAI_d and NAI_g next to the baselines; Table VI lists, for the same
operating points, how many test nodes end up at each personalised propagation
depth.  Both artefacts come from the same sweep, so one driver produces both.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import MethodResult, method_result_from_inference
from .context import ExperimentProfile, get_context
from .settings import all_settings
from .table5 import BASELINE_ORDER


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of Figure 4 plus its Table-VI depth distribution."""

    label: str
    accuracy: float
    time_ms_per_node: float
    macs_per_node: float
    depth_distribution: tuple[int, ...]


def run_tradeoff(
    dataset_name: str,
    *,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
    include_baselines: bool = True,
) -> list[TradeoffPoint]:
    """Evaluate every named NAI setting (and the baselines) on one dataset."""
    context = get_context(dataset_name, backbone=backbone, profile=profile)
    dataset = context.dataset
    labels = context.labels
    points: list[TradeoffPoint] = []

    def add(label: str, row: MethodResult) -> None:
        points.append(
            TradeoffPoint(
                label=label,
                accuracy=row.accuracy,
                time_ms_per_node=row.time_ms_per_node,
                macs_per_node=row.macs_per_node,
                depth_distribution=row.depth_distribution,
            )
        )

    vanilla = context.nai.evaluate(dataset, policy="none", config=context.vanilla_config())
    add(context.backbone_name, method_result_from_inference("vanilla", dataset_name, vanilla, labels))

    for setting in all_settings(context):
        result = context.nai.evaluate(dataset, policy=setting.policy, config=setting.config)
        add(setting.label, method_result_from_inference(setting.label, dataset_name, result, labels))

    if include_baselines:
        for name in BASELINE_ORDER:
            baseline = context.baseline(name)
            result = baseline.evaluate(dataset)
            add(baseline.name, method_result_from_inference(baseline.name, dataset_name, result, labels))
    return points


def figure4_series(points: list[TradeoffPoint]) -> dict[str, tuple[float, float]]:
    """Figure-4 series: ``label -> (time_ms_per_node, accuracy)``."""
    return {point.label: (point.time_ms_per_node, point.accuracy) for point in points}


def table6_distributions(points: list[TradeoffPoint]) -> dict[str, tuple[int, ...]]:
    """Table-VI rows: ``label -> node counts per personalised depth`` (NAI settings only)."""
    return {
        point.label: point.depth_distribution
        for point in points
        if point.label.startswith("NAI")
    }
