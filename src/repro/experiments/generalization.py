"""Tables IX, X and XI: generalization of NAI to SIGN, S2GC and GAMLP.

The paper shows that the NAI framework is backbone-agnostic by repeating the
Table-V comparison on Flickr with three other scalable GNNs.  The driver
below reuses the Table-V machinery with a different backbone name; the
mapping from paper table to backbone is::

    Table IX  -> SIGN
    Table X   -> S2GC
    Table XI  -> GAMLP
"""

from __future__ import annotations

from ..metrics import MethodResult
from .context import ExperimentProfile
from .table5 import run_dataset_comparison

TABLE_TO_BACKBONE: dict[str, str] = {
    "table9": "sign",
    "table10": "s2gc",
    "table11": "gamlp",
}


def run_generalization(
    backbone: str,
    *,
    dataset_name: str = "flickr-sim",
    profile: ExperimentProfile | None = None,
    include_baselines: bool = True,
) -> list[MethodResult]:
    """Table IX/X/XI rows for one alternative backbone on Flickr."""
    return run_dataset_comparison(
        dataset_name,
        backbone=backbone,
        profile=profile,
        include_baselines=include_baselines,
    )


def run_generalization_table(
    table: str,
    *,
    dataset_name: str = "flickr-sim",
    profile: ExperimentProfile | None = None,
    include_baselines: bool = True,
) -> list[MethodResult]:
    """Resolve a paper table name ("table9"/"table10"/"table11") and run it."""
    key = table.lower()
    if key not in TABLE_TO_BACKBONE:
        raise KeyError(f"unknown generalization table {table!r}; expected {list(TABLE_TO_BACKBONE)}")
    return run_generalization(
        TABLE_TO_BACKBONE[key],
        dataset_name=dataset_name,
        profile=profile,
        include_baselines=include_baselines,
    )
