"""Experiment drivers: one module per paper table/figure (see DESIGN.md index)."""

from .ablation import (
    DISTILLATION_VARIANTS,
    NAPAblationRow,
    run_distillation_ablation,
    run_nap_ablation,
    shallow_classifier_accuracy,
)
from .batchsize import (
    DEFAULT_BATCH_SIZES,
    BatchSizePoint,
    run_batch_size_study,
    series_by_method,
)
from .complexity import ComplexityRow, measured_vs_analytic, run_complexity_table
from .context import (
    BENCHMARK_PROFILE,
    FAST_PROFILE,
    PAPER_DATASETS,
    ExperimentProfile,
    TrainedContext,
    clear_cache,
    get_context,
    train_context,
)
from .generalization import run_generalization, run_generalization_table
from .sensitivity import (
    SensitivityPoint,
    run_ensemble_sensitivity,
    run_lambda_sensitivity,
    run_sensitivity_study,
    run_temperature_sensitivity,
)
from .settings import NAISetting, all_settings, distance_settings, gate_settings, speed_first_settings
from .table5 import run_dataset_comparison, run_table5
from .tradeoff import TradeoffPoint, figure4_series, run_tradeoff, table6_distributions

__all__ = [
    "BENCHMARK_PROFILE",
    "BatchSizePoint",
    "ComplexityRow",
    "DEFAULT_BATCH_SIZES",
    "DISTILLATION_VARIANTS",
    "ExperimentProfile",
    "FAST_PROFILE",
    "NAISetting",
    "NAPAblationRow",
    "PAPER_DATASETS",
    "SensitivityPoint",
    "TradeoffPoint",
    "TrainedContext",
    "all_settings",
    "clear_cache",
    "distance_settings",
    "figure4_series",
    "gate_settings",
    "get_context",
    "measured_vs_analytic",
    "run_batch_size_study",
    "run_complexity_table",
    "run_dataset_comparison",
    "run_distillation_ablation",
    "run_ensemble_sensitivity",
    "run_generalization",
    "run_generalization_table",
    "run_lambda_sensitivity",
    "run_nap_ablation",
    "run_sensitivity_study",
    "run_table5",
    "run_temperature_sensitivity",
    "run_tradeoff",
    "series_by_method",
    "shallow_classifier_accuracy",
    "speed_first_settings",
    "table6_distributions",
    "train_context",
]
