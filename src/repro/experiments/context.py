"""Shared experiment context: datasets, trained pipelines and baselines.

Most of the paper's tables reuse the same trained models (e.g. Table V,
Figure 4, Table VI and Figure 5 all evaluate the same SGC + NAI pipeline on
the same datasets with different inference settings).  Training everything
from scratch inside every benchmark would dominate runtime, so this module
provides a process-level cache keyed by the experiment profile: the first
driver that needs a (dataset, backbone) pair trains it, later drivers reuse
it and only pay for inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..baselines import GLNN, NOSMOG, DistillationTarget, QuantizedInference, TinyGNN
from ..baselines.base import InferenceBaseline
from ..core import (
    NAI,
    DistillationConfig,
    GateTrainingConfig,
    NAIConfig,
    TrainingConfig,
)
from ..core.training import predict_logits
from ..datasets import NodeClassificationDataset, load_dataset
from ..exceptions import ConfigurationError
from ..models import make_backbone
from ..nn import Tensor, softmax

#: Datasets evaluated by the paper (synthetic analogues, see DESIGN.md).
PAPER_DATASETS: tuple[str, ...] = ("flickr-sim", "arxiv-sim", "products-sim")


@dataclass(frozen=True)
class ExperimentProfile:
    """Knobs controlling how heavy an experiment run is.

    The ``benchmark`` profile matches the numbers recorded in EXPERIMENTS.md;
    the ``fast`` profile is meant for unit tests and smoke runs.
    """

    dataset_scale: float = 1.0
    depth: int = 5
    hidden_dims: tuple[int, ...] = ()
    dropout: float = 0.1
    classifier_epochs: int = 120
    classifier_lr: float = 0.05
    classifier_weight_decay: float = 1e-4
    gate_epochs: int = 60
    gate_lr: float = 0.05
    baseline_epochs: int = 120
    baseline_lr: float = 0.01
    batch_size: int = 500
    ensemble_size: int = 3
    seed: int = 0

    def key(self, dataset: str, backbone: str) -> tuple:
        """Cache key identifying a trained (dataset, backbone) pair."""
        return (
            dataset,
            backbone,
            self.dataset_scale,
            self.depth,
            self.hidden_dims,
            self.dropout,
            self.classifier_epochs,
            self.classifier_lr,
            self.classifier_weight_decay,
            self.gate_epochs,
            self.gate_lr,
            self.baseline_epochs,
            self.baseline_lr,
            self.ensemble_size,
            self.seed,
        )

    def with_updates(self, **kwargs) -> "ExperimentProfile":
        return replace(self, **kwargs)


#: Default profile used by the benchmark suite.
BENCHMARK_PROFILE = ExperimentProfile()

#: Lightweight profile for tests / smoke runs.
FAST_PROFILE = ExperimentProfile(
    dataset_scale=0.25,
    depth=3,
    classifier_epochs=30,
    gate_epochs=20,
    baseline_epochs=30,
    batch_size=200,
)


@dataclass
class TrainedContext:
    """A dataset with its trained NAI pipeline, teacher target and baselines."""

    profile: ExperimentProfile
    dataset: NodeClassificationDataset
    backbone_name: str
    nai: NAI
    teacher: DistillationTarget
    baselines: dict[str, InferenceBaseline] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def labels(self) -> np.ndarray:
        return self.dataset.labels

    def vanilla_config(self) -> NAIConfig:
        """Fixed-depth (vanilla backbone) inference configuration."""
        return self.nai.inference_config(
            t_min=self.profile.depth, t_max=self.profile.depth,
            batch_size=self.profile.batch_size,
        )

    def nai_config(
        self,
        *,
        t_min: int = 1,
        t_max: int | None = None,
        threshold_quantile: float | None = None,
        batch_size: int | None = None,
    ) -> NAIConfig:
        """NAI inference configuration, optionally deriving ``T_s`` from a quantile."""
        threshold = 0.0
        if threshold_quantile is not None:
            threshold = self.nai.suggest_distance_threshold(threshold_quantile)
        return self.nai.inference_config(
            t_min=t_min,
            t_max=self.profile.depth if t_max is None else t_max,
            distance_threshold=threshold,
            batch_size=self.profile.batch_size if batch_size is None else batch_size,
        )

    def baseline(self, name: str) -> InferenceBaseline:
        """Return (training on first use) one of the four baselines."""
        key = name.lower()
        if key in self.baselines:
            return self.baselines[key]
        profile = self.profile
        rng_seed = profile.seed + 17
        if key == "glnn":
            model: InferenceBaseline = GLNN(
                hidden_dims=(64,), epochs=profile.baseline_epochs,
                lr=profile.baseline_lr, rng=rng_seed,
            )
        elif key == "nosmog":
            model = NOSMOG(
                hidden_dims=(64,), epochs=profile.baseline_epochs,
                lr=profile.baseline_lr, rng=rng_seed,
            )
        elif key == "tinygnn":
            model = TinyGNN(
                hidden_dims=(64,), epochs=profile.baseline_epochs,
                lr=profile.baseline_lr, rng=rng_seed,
            )
        elif key == "quantization":
            model = QuantizedInference(
                self.nai.classifiers, batch_size=profile.batch_size,
                gamma=self.nai.backbone.gamma,
            )
        else:
            raise ConfigurationError(
                f"unknown baseline {name!r}; expected glnn / nosmog / tinygnn / quantization"
            )
        model.fit(self.dataset, self.teacher)
        self.baselines[key] = model
        return model


_CONTEXT_CACHE: dict[tuple, TrainedContext] = {}


def clear_cache() -> None:
    """Drop every cached trained context (mostly useful in tests)."""
    _CONTEXT_CACHE.clear()


def get_context(
    dataset_name: str,
    *,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
    distillation_overrides: dict | None = None,
) -> TrainedContext:
    """Return a trained :class:`TrainedContext`, training it on first request."""
    profile = profile if profile is not None else BENCHMARK_PROFILE
    cache_key = profile.key(dataset_name, backbone.lower()) + (
        tuple(sorted((distillation_overrides or {}).items())),
    )
    if cache_key in _CONTEXT_CACHE:
        return _CONTEXT_CACHE[cache_key]

    context = train_context(
        dataset_name,
        backbone=backbone,
        profile=profile,
        distillation_overrides=distillation_overrides,
    )
    _CONTEXT_CACHE[cache_key] = context
    return context


def train_context(
    dataset_name: str,
    *,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
    distillation_overrides: dict | None = None,
) -> TrainedContext:
    """Train a fresh context (no caching) — used directly by ablation drivers."""
    profile = profile if profile is not None else BENCHMARK_PROFILE
    dataset = load_dataset(dataset_name, scale=profile.dataset_scale)
    backbone_model = make_backbone(
        backbone,
        dataset.num_features,
        dataset.num_classes,
        profile.depth,
        hidden_dims=profile.hidden_dims,
        dropout=profile.dropout,
        rng=profile.seed,
    )
    training_config = TrainingConfig(
        epochs=profile.classifier_epochs,
        lr=profile.classifier_lr,
        weight_decay=profile.classifier_weight_decay,
        patience=max(10, profile.classifier_epochs // 4),
    )
    distillation_kwargs = {"training": training_config, "ensemble_size": profile.ensemble_size}
    distillation_kwargs.update(distillation_overrides or {})
    distillation_config = DistillationConfig(**distillation_kwargs)
    gate_config = GateTrainingConfig(epochs=profile.gate_epochs, lr=profile.gate_lr)

    nai = NAI(
        backbone_model,
        distillation_config=distillation_config,
        gate_config=gate_config,
        rng=profile.seed,
    ).fit(dataset)

    partition = dataset.partition()
    propagated = backbone_model.precompute(partition.train_graph, dataset.observed_features())
    teacher_logits = predict_logits(nai.classifiers[-1], propagated)
    teacher = DistillationTarget(
        probabilities=softmax(Tensor(teacher_logits), axis=1).data,
        temperature=1.0,
    )
    return TrainedContext(
        profile=profile,
        dataset=dataset,
        backbone_name=backbone_model.name,
        nai=nai,
        teacher=teacher,
    )
