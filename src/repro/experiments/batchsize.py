"""Figure 5: the effect of the inference batch size on MACs and time.

The number of supporting nodes grows with the batch size, so per-node MACs
and latency of propagation-based methods drift upward, TinyGNN's attention
grows fastest, and the MLP-only students stay flat.  This driver sweeps the
batch size for every method on one dataset and returns per-node MAC and time
series.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import method_result_from_inference
from .context import ExperimentProfile, get_context
from .settings import speed_first_settings
from .table5 import BASELINE_ORDER

DEFAULT_BATCH_SIZES: tuple[int, ...] = (100, 250, 500, 1000, 2000)


@dataclass(frozen=True)
class BatchSizePoint:
    """One (method, batch size) measurement of Figure 5."""

    method: str
    batch_size: int
    macs_per_node: float
    time_ms_per_node: float
    accuracy: float


def run_batch_size_study(
    dataset_name: str = "flickr-sim",
    *,
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
    include_baselines: bool = True,
) -> list[BatchSizePoint]:
    """Sweep the inference batch size for the vanilla model, baselines and NAI."""
    context = get_context(dataset_name, backbone=backbone, profile=profile)
    dataset = context.dataset
    labels = context.labels
    test_idx = dataset.split.test_idx
    points: list[BatchSizePoint] = []

    for batch_size in batch_sizes:
        effective = min(batch_size, test_idx.shape[0])

        vanilla_config = context.vanilla_config().with_updates(batch_size=effective)
        result = context.nai.evaluate(dataset, policy="none", config=vanilla_config)
        row = method_result_from_inference(context.backbone_name, dataset_name, result, labels)
        points.append(
            BatchSizePoint(context.backbone_name, batch_size, row.macs_per_node,
                           row.time_ms_per_node, row.accuracy)
        )

        for label, setting in speed_first_settings(context).items():
            config = setting.config.with_updates(batch_size=effective)
            result = context.nai.evaluate(dataset, policy=setting.policy, config=config)
            row = method_result_from_inference(label, dataset_name, result, labels)
            points.append(
                BatchSizePoint(label, batch_size, row.macs_per_node,
                               row.time_ms_per_node, row.accuracy)
            )

        if include_baselines:
            for name in BASELINE_ORDER:
                baseline = context.baseline(name)
                # Baselines classify the batch in one shot; evaluate on one batch
                # worth of nodes to mirror the per-batch measurement of the paper.
                subset = test_idx[:effective]
                result = baseline.predict(dataset, subset)
                row = method_result_from_inference(baseline.name, dataset_name, result, labels)
                points.append(
                    BatchSizePoint(baseline.name, batch_size, row.macs_per_node,
                                   row.time_ms_per_node, row.accuracy)
                )
    return points


def series_by_method(points: list[BatchSizePoint]) -> dict[str, list[tuple[int, float, float]]]:
    """Group points into ``method -> [(batch_size, macs_per_node, time_ms)]`` series."""
    series: dict[str, list[tuple[int, float, float]]] = {}
    for point in points:
        series.setdefault(point.method, []).append(
            (point.batch_size, point.macs_per_node, point.time_ms_per_node)
        )
    for values in series.values():
        values.sort(key=lambda item: item[0])
    return series
