"""Figure 6: sensitivity of Inception Distillation to λ, T and r.

The paper sweeps the distillation weight ``λ``, the temperature ``T`` and the
ensemble size ``r`` and reports the accuracy of the shallowest classifier
``f^(1)`` (for both the single-scale and multi-scale stages).  Each sweep
point requires retraining the classifier stack, so the driver exposes
narrow default grids; the bench widens them when requested.
"""

from __future__ import annotations

from dataclasses import dataclass

from .context import ExperimentProfile

DEFAULT_LAMBDAS: tuple[float, ...] = (0.0, 0.3, 0.6, 0.9)
DEFAULT_TEMPERATURES: tuple[float, ...] = (1.0, 1.4, 1.8)
DEFAULT_ENSEMBLE_SIZES: tuple[int, ...] = (1, 2, 3)


@dataclass(frozen=True)
class SensitivityPoint:
    """One sweep point of Figure 6."""

    parameter: str       # "lambda_single", "lambda_multi", "temperature_single", ...
    value: float
    accuracy: float


def _accuracy_with_overrides(
    dataset_name: str,
    overrides: dict,
    *,
    backbone: str,
    profile: ExperimentProfile | None,
) -> float:
    from .context import get_context

    context = get_context(
        dataset_name, backbone=backbone, profile=profile, distillation_overrides=overrides
    )
    config = context.nai_config(t_min=1, t_max=1)
    result = context.nai.evaluate(context.dataset, policy="none", config=config)
    return result.accuracy(context.labels)


def run_lambda_sensitivity(
    dataset_name: str = "flickr-sim",
    *,
    stage: str = "multi",
    values: tuple[float, ...] = DEFAULT_LAMBDAS,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
) -> list[SensitivityPoint]:
    """Sweep the distillation weight λ for the single- or multi-scale stage."""
    key = "lambda_multi" if stage == "multi" else "lambda_single"
    points = []
    for value in values:
        accuracy = _accuracy_with_overrides(
            dataset_name, {key: value}, backbone=backbone, profile=profile
        )
        points.append(SensitivityPoint(parameter=key, value=float(value), accuracy=accuracy))
    return points


def run_temperature_sensitivity(
    dataset_name: str = "flickr-sim",
    *,
    stage: str = "multi",
    values: tuple[float, ...] = DEFAULT_TEMPERATURES,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
) -> list[SensitivityPoint]:
    """Sweep the distillation temperature T for the single- or multi-scale stage."""
    key = "temperature_multi" if stage == "multi" else "temperature_single"
    points = []
    for value in values:
        accuracy = _accuracy_with_overrides(
            dataset_name, {key: value}, backbone=backbone, profile=profile
        )
        points.append(SensitivityPoint(parameter=key, value=float(value), accuracy=accuracy))
    return points


def run_ensemble_sensitivity(
    dataset_name: str = "flickr-sim",
    *,
    values: tuple[int, ...] = DEFAULT_ENSEMBLE_SIZES,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
) -> list[SensitivityPoint]:
    """Sweep the ensemble-teacher size r of Multi-Scale Distillation."""
    points = []
    for value in values:
        accuracy = _accuracy_with_overrides(
            dataset_name, {"ensemble_size": int(value)}, backbone=backbone, profile=profile
        )
        points.append(SensitivityPoint(parameter="ensemble_size", value=float(value), accuracy=accuracy))
    return points


def run_sensitivity_study(
    dataset_name: str = "flickr-sim",
    *,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
    lambdas: tuple[float, ...] = DEFAULT_LAMBDAS,
    temperatures: tuple[float, ...] = DEFAULT_TEMPERATURES,
    ensemble_sizes: tuple[int, ...] = DEFAULT_ENSEMBLE_SIZES,
) -> dict[str, list[SensitivityPoint]]:
    """Full Figure-6 study: λ (both stages), T (both stages) and r."""
    return {
        "lambda_single": run_lambda_sensitivity(
            dataset_name, stage="single", values=lambdas, backbone=backbone, profile=profile
        ),
        "lambda_multi": run_lambda_sensitivity(
            dataset_name, stage="multi", values=lambdas, backbone=backbone, profile=profile
        ),
        "temperature_single": run_temperature_sensitivity(
            dataset_name, stage="single", values=temperatures, backbone=backbone, profile=profile
        ),
        "temperature_multi": run_temperature_sensitivity(
            dataset_name, stage="multi", values=temperatures, backbone=backbone, profile=profile
        ),
        "ensemble_size": run_ensemble_sensitivity(
            dataset_name, values=ensemble_sizes, backbone=backbone, profile=profile
        ),
    }
