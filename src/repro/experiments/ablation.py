"""Tables VII and VIII: ablation studies on NAP and Inception Distillation.

Table VII compares, for every maximum depth ``T_max``, fixed-depth inference
("NAI w/o NAP") against the distance- and gate-based NAP variants — showing
that adaptive depths save time *and* recover accuracy lost to over-smoothing.

Table VIII measures the accuracy of the shallowest classifier ``f^(1)``
(the weakest one, and the one early exits rely on most) when Inception
Distillation is disabled entirely ("w/o ID"), restricted to the single-scale
stage ("w/o MS") or restricted to the multi-scale stage ("w/o SS").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import method_result_from_inference
from .context import ExperimentProfile, get_context


# --------------------------------------------------------------------------- #
# Table VII — NAP ablation across T_max
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class NAPAblationRow:
    """One (dataset, T_max, method) cell of Table VII."""

    dataset: str
    t_max: int
    method: str
    accuracy: float
    time_ms_per_node: float
    depth_distribution: tuple[int, ...]


def run_nap_ablation(
    dataset_name: str,
    *,
    t_max_values: tuple[int, ...] | None = None,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
    threshold_quantile: float = 0.35,
) -> list[NAPAblationRow]:
    """Table VII for one dataset: NAI w/o NAP vs NAP_d vs NAP_g per ``T_max``."""
    context = get_context(dataset_name, backbone=backbone, profile=profile)
    dataset = context.dataset
    labels = context.labels
    depth = context.profile.depth
    values = t_max_values if t_max_values is not None else tuple(range(2, depth + 1))

    rows: list[NAPAblationRow] = []
    for t_max in values:
        if t_max > depth:
            continue
        variants = {
            "NAI w/o NAP": ("none", context.nai_config(t_min=t_max, t_max=t_max)),
            "NAI_d": (
                "distance",
                context.nai_config(t_max=t_max, threshold_quantile=threshold_quantile),
            ),
            "NAI_g": ("gate", context.nai_config(t_max=t_max)),
        }
        for method, (policy, config) in variants.items():
            result = context.nai.evaluate(dataset, policy=policy, config=config)
            row = method_result_from_inference(method, dataset_name, result, labels)
            rows.append(
                NAPAblationRow(
                    dataset=dataset_name,
                    t_max=t_max,
                    method=method,
                    accuracy=row.accuracy,
                    time_ms_per_node=row.time_ms_per_node,
                    depth_distribution=row.depth_distribution,
                )
            )
    return rows


# --------------------------------------------------------------------------- #
# Table VIII — Inception Distillation ablation
# --------------------------------------------------------------------------- #
DISTILLATION_VARIANTS: dict[str, dict[str, bool]] = {
    "NAI w/o ID": {"enable_single_scale": False, "enable_multi_scale": False},
    "NAI w/o MS": {"enable_single_scale": True, "enable_multi_scale": False},
    "NAI w/o SS": {"enable_single_scale": False, "enable_multi_scale": True},
    "NAI": {"enable_single_scale": True, "enable_multi_scale": True},
}


def shallow_classifier_accuracy(
    dataset_name: str,
    *,
    variant: str,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
) -> float:
    """Inductive test accuracy of ``f^(1)`` under one distillation variant."""
    if variant not in DISTILLATION_VARIANTS:
        raise KeyError(f"unknown distillation variant {variant!r}")
    context = get_context(
        dataset_name,
        backbone=backbone,
        profile=profile,
        distillation_overrides=DISTILLATION_VARIANTS[variant],
    )
    config = context.nai_config(t_min=1, t_max=1)
    result = context.nai.evaluate(context.dataset, policy="none", config=config)
    return result.accuracy(context.labels)


def run_distillation_ablation(
    dataset_names: tuple[str, ...],
    *,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
    variants: tuple[str, ...] = tuple(DISTILLATION_VARIANTS),
) -> dict[str, dict[str, float]]:
    """Table VIII: ``variant -> dataset -> f^(1) accuracy``."""
    table: dict[str, dict[str, float]] = {}
    for variant in variants:
        table[variant] = {}
        for dataset_name in dataset_names:
            table[variant][dataset_name] = shallow_classifier_accuracy(
                dataset_name, variant=variant, backbone=backbone, profile=profile
            )
    return table
