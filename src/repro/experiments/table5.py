"""Table V: inference comparison of NAI against every baseline (base model SGC).

For each dataset the driver evaluates the vanilla backbone, the four
acceleration baselines (GLNN, NOSMOG, TinyGNN, Quantization) and the
speed-first settings of NAI_d and NAI_g on the unseen test nodes, reporting
accuracy, MACs, feature-processing MACs, per-node time and feature-processing
time — the same columns as the paper's Table V.
"""

from __future__ import annotations

from ..metrics import MethodResult, method_result_from_inference
from .context import PAPER_DATASETS, ExperimentProfile, get_context
from .settings import speed_first_settings

BASELINE_ORDER = ("glnn", "nosmog", "tinygnn", "quantization")


def run_dataset_comparison(
    dataset_name: str,
    *,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
    include_baselines: bool = True,
) -> list[MethodResult]:
    """All Table-V rows for one dataset."""
    context = get_context(dataset_name, backbone=backbone, profile=profile)
    dataset = context.dataset
    labels = context.labels
    rows: list[MethodResult] = []

    vanilla = context.nai.evaluate(dataset, policy="none", config=context.vanilla_config())
    rows.append(
        method_result_from_inference(context.backbone_name, dataset_name, vanilla, labels)
    )

    if include_baselines:
        for name in BASELINE_ORDER:
            baseline = context.baseline(name)
            result = baseline.evaluate(dataset)
            rows.append(
                method_result_from_inference(baseline.name, dataset_name, result, labels)
            )

    for label, setting in speed_first_settings(context).items():
        result = context.nai.evaluate(dataset, policy=setting.policy, config=setting.config)
        rows.append(method_result_from_inference(label, dataset_name, result, labels))
    return rows


def run_table5(
    dataset_names: tuple[str, ...] = PAPER_DATASETS,
    *,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
    include_baselines: bool = True,
) -> list[MethodResult]:
    """Full Table V across the requested datasets."""
    rows: list[MethodResult] = []
    for name in dataset_names:
        rows.extend(
            run_dataset_comparison(
                name,
                backbone=backbone,
                profile=profile,
                include_baselines=include_baselines,
            )
        )
    return rows
