"""Table I: analytic inference-complexity comparison, cross-checked against
measured MAC counts from the online inference engine."""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import ComplexityInputs, nai_macs, supported_backbones, vanilla_macs
from .context import ExperimentProfile, get_context


@dataclass(frozen=True)
class ComplexityRow:
    """One backbone's analytic vanilla/NAI MACs plus the analytic speedups.

    The paper's Table I adds an ``O(n² f)`` stationary-state term to every NAI
    entry.  That term is a loose upper bound — the engine in this repository
    computes the stationary state with one ``O(n f)`` weighted sum — so the
    row exposes both the literal formula (``nai_macs``) and the speedup of
    the part NAI actually changes (``propagation_speedup``, the ``k m f`` →
    ``q m f`` reduction plus per-depth classification savings).
    """

    backbone: str
    vanilla_macs: float
    nai_macs: float
    stationary_macs: float

    @property
    def nai_macs_excluding_stationary(self) -> float:
        """NAI MACs with the stationary-state upper bound removed."""
        return self.nai_macs - self.stationary_macs

    @property
    def speedup(self) -> float:
        """Literal Table-I ratio (dominated by the stationary upper bound)."""
        return self.vanilla_macs / self.nai_macs if self.nai_macs else float("inf")

    @property
    def propagation_speedup(self) -> float:
        """Ratio once the stationary-state upper bound is excluded."""
        remaining = self.nai_macs_excluding_stationary
        return self.vanilla_macs / remaining if remaining else float("inf")


def run_complexity_table(
    *,
    num_nodes: int = 100_000,
    num_edges: int = 1_000_000,
    num_features: int = 128,
    depth: int = 5,
    classifier_layers: int = 2,
    average_depth: float = 1.8,
) -> list[ComplexityRow]:
    """Evaluate the Table-I formulas for a representative workload."""
    inputs = ComplexityInputs(
        num_nodes=num_nodes,
        num_edges=num_edges,
        num_features=num_features,
        depth=depth,
        classifier_layers=classifier_layers,
        average_depth=average_depth,
    )
    stationary = float(num_nodes) ** 2 * num_features
    rows = []
    for backbone in supported_backbones():
        rows.append(
            ComplexityRow(
                backbone=backbone,
                vanilla_macs=vanilla_macs(backbone, inputs),
                nai_macs=nai_macs(backbone, inputs),
                stationary_macs=stationary,
            )
        )
    return rows


def measured_vs_analytic(
    dataset_name: str = "flickr-sim",
    *,
    backbone: str = "sgc",
    profile: ExperimentProfile | None = None,
    threshold_quantile: float = 0.55,
) -> dict[str, float]:
    """Compare measured vanilla/NAI MAC totals with the Table-I prediction.

    The analytic formulas work on whole-graph quantities, so the measured
    ratio (vanilla MACs / NAI MACs) is the meaningful point of comparison —
    absolute counts differ because the engine only touches supporting nodes.
    """
    context = get_context(dataset_name, backbone=backbone, profile=profile)
    dataset = context.dataset

    vanilla = context.nai.evaluate(dataset, policy="none", config=context.vanilla_config())
    adaptive = context.nai.evaluate(
        dataset,
        policy="distance",
        config=context.nai_config(threshold_quantile=threshold_quantile),
    )
    inputs = ComplexityInputs(
        num_nodes=dataset.num_nodes,
        num_edges=dataset.num_edges,
        num_features=dataset.num_features,
        depth=context.profile.depth,
        classifier_layers=max(len(context.profile.hidden_dims) + 1, 1),
        average_depth=max(adaptive.average_depth(), 1e-6),
    )
    analytic_ratio = vanilla_macs(backbone.upper(), inputs) / nai_macs(backbone.upper(), inputs)
    measured_ratio = vanilla.macs.total / max(adaptive.macs.total, 1e-9)
    return {
        "measured_vanilla_macs": vanilla.macs.total,
        "measured_nai_macs": adaptive.macs.total,
        "measured_speedup": measured_ratio,
        "analytic_speedup": analytic_ratio,
        "average_depth": adaptive.average_depth(),
    }
