"""Named NAI inference settings reused across experiments.

The paper evaluates NAI under three representative operating points per
dataset — "NAI¹" (speed-first), "NAI²" (balanced) and "NAI³" (accuracy-first)
— obtained by tuning the global hyper-parameters ``T_s`` / ``T_max`` on the
validation set.  The same three operating points drive Figure 4 (accuracy vs
latency), Table VI (node-depth distributions) and the Table V "speed-first"
rows, so they are defined once here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import NAIConfig
from .context import TrainedContext


@dataclass(frozen=True)
class NAISetting:
    """One named operating point of the NAI framework."""

    label: str
    policy: str              # "distance" or "gate"
    config: NAIConfig


def distance_settings(context: TrainedContext) -> list[NAISetting]:
    """Speed-first / balanced / accuracy-first settings for NAP_d (``NAI¹..³_d``)."""
    depth = context.profile.depth
    return [
        NAISetting(
            "NAI1_d",
            "distance",
            context.nai_config(t_max=min(2, depth), threshold_quantile=0.7),
        ),
        NAISetting(
            "NAI2_d",
            "distance",
            context.nai_config(t_max=min(3, depth), threshold_quantile=0.55),
        ),
        NAISetting(
            "NAI3_d",
            "distance",
            context.nai_config(t_max=depth, threshold_quantile=0.25),
        ),
    ]


def gate_settings(context: TrainedContext) -> list[NAISetting]:
    """Speed-first / balanced / accuracy-first settings for NAP_g (``NAI¹..³_g``)."""
    depth = context.profile.depth
    return [
        NAISetting("NAI1_g", "gate", context.nai_config(t_max=min(2, depth))),
        NAISetting("NAI2_g", "gate", context.nai_config(t_max=min(3, depth))),
        NAISetting("NAI3_g", "gate", context.nai_config(t_max=depth)),
    ]


def speed_first_settings(context: TrainedContext) -> dict[str, NAISetting]:
    """The speed-first operating point of each NAP variant (Table V rows)."""
    return {
        "NAI_d": distance_settings(context)[0],
        "NAI_g": gate_settings(context)[0],
    }


def all_settings(context: TrainedContext) -> list[NAISetting]:
    """Every named setting (used by Figure 4 and Table VI)."""
    return distance_settings(context) + gate_settings(context)
