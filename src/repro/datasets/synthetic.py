"""Deterministic synthetic analogues of the paper's evaluation datasets.

The paper evaluates on Flickr (89k nodes, 500 features, 7 classes),
Ogbn-arxiv (169k nodes, 128 features, 40 classes) and Ogbn-products
(2.4M nodes, 123M edges, 100 features, 47 classes).  Those graphs cannot be
downloaded in the offline reproduction environment, so this module provides
scaled-down analogues that keep the *relative* characteristics that drive
NAI's behaviour:

========  =========  ==========  =========  =======  =============
name      rel. size  avg degree  features   classes  analogue of
========  =========  ==========  =========  =======  =============
flickr    medium     ~6          highest    7        Flickr
arxiv     medium     ~7          medium     16       Ogbn-arxiv
products  largest    ~12 (dense) lowest     12       Ogbn-products
========  =========  ==========  =========  =======  =============

The class counts of the larger datasets are reduced proportionally to keep
per-class training signal meaningful at the reduced node counts.  Every
generator accepts a ``scale`` multiplier so tests can shrink the graphs
further and benchmarks can grow them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError
from ..graph.generators import (
    SyntheticGraphSpec,
    generate_community_graph,
    generate_features,
)
from ..graph.partition import make_inductive_split
from .base import NodeClassificationDataset


@dataclass(frozen=True)
class SyntheticDatasetSpec:
    """Full recipe for one synthetic dataset."""

    name: str
    num_nodes: int
    num_features: int
    num_classes: int
    avg_degree: float
    homophily: float
    degree_exponent: float
    class_separation: float
    noise_scale: float
    train_fraction: float
    val_fraction: float
    seed: int

    def scaled(self, scale: float) -> "SyntheticDatasetSpec":
        """Return a copy with the node count multiplied by ``scale``."""
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        nodes = max(8 * self.num_classes, int(round(self.num_nodes * scale)))
        return SyntheticDatasetSpec(
            name=self.name,
            num_nodes=nodes,
            num_features=self.num_features,
            num_classes=self.num_classes,
            avg_degree=self.avg_degree,
            homophily=self.homophily,
            degree_exponent=self.degree_exponent,
            class_separation=self.class_separation,
            noise_scale=self.noise_scale,
            train_fraction=self.train_fraction,
            val_fraction=self.val_fraction,
            seed=self.seed,
        )


#: Default recipes.  Node counts are chosen so the full benchmark suite runs on
#: a laptop CPU in minutes while preserving the paper's size ordering
#: (products > arxiv > flickr) and density ordering (products is densest).
FLICKR_SIM = SyntheticDatasetSpec(
    name="flickr-sim",
    num_nodes=1800,
    num_features=96,
    num_classes=7,
    avg_degree=6.0,
    homophily=0.55,
    degree_exponent=2.3,
    class_separation=0.14,
    noise_scale=1.0,
    train_fraction=0.50,
    val_fraction=0.25,
    seed=20231,
)

ARXIV_SIM = SyntheticDatasetSpec(
    name="arxiv-sim",
    num_nodes=2400,
    num_features=64,
    num_classes=16,
    avg_degree=7.0,
    homophily=0.60,
    degree_exponent=2.4,
    class_separation=0.18,
    noise_scale=1.0,
    train_fraction=0.54,
    val_fraction=0.18,
    seed=20232,
)

PRODUCTS_SIM = SyntheticDatasetSpec(
    name="products-sim",
    num_nodes=4000,
    num_features=48,
    num_classes=12,
    avg_degree=12.0,
    homophily=0.70,
    degree_exponent=2.1,
    class_separation=0.16,
    noise_scale=1.0,
    train_fraction=0.25,
    val_fraction=0.05,
    seed=20233,
)

_SPECS: dict[str, SyntheticDatasetSpec] = {
    spec.name: spec for spec in (FLICKR_SIM, ARXIV_SIM, PRODUCTS_SIM)
}


def available_datasets() -> list[str]:
    """Names of the built-in synthetic datasets."""
    return sorted(_SPECS)


def dataset_spec(name: str) -> SyntheticDatasetSpec:
    """Look up the recipe for ``name`` (raises :class:`DatasetError` if unknown)."""
    try:
        return _SPECS[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from exc


def generate_dataset(
    spec: SyntheticDatasetSpec,
    *,
    seed: int | None = None,
) -> NodeClassificationDataset:
    """Materialise a :class:`NodeClassificationDataset` from ``spec``.

    The generation is fully deterministic given ``spec.seed`` (or the ``seed``
    override), so every experiment in the repository sees the same graphs.
    """
    effective_seed = spec.seed if seed is None else seed
    rng = np.random.default_rng(effective_seed)
    graph_spec = SyntheticGraphSpec(
        num_nodes=spec.num_nodes,
        num_classes=spec.num_classes,
        avg_degree=spec.avg_degree,
        homophily=spec.homophily,
        degree_exponent=spec.degree_exponent,
    )
    graph, labels = generate_community_graph(graph_spec, rng=rng)
    features = generate_features(
        labels,
        spec.num_features,
        class_separation=spec.class_separation,
        noise_scale=spec.noise_scale,
        rng=rng,
    )
    split = make_inductive_split(
        spec.num_nodes,
        train_fraction=spec.train_fraction,
        val_fraction=spec.val_fraction,
        rng=rng,
    )
    return NodeClassificationDataset(
        name=spec.name,
        graph=graph,
        features=features,
        labels=labels,
        split=split,
    )


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    seed: int | None = None,
) -> NodeClassificationDataset:
    """Load one of the built-in synthetic datasets by name.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (``"flickr-sim"``, ``"arxiv-sim"``,
        ``"products-sim"``).
    scale:
        Node-count multiplier; ``scale=0.2`` is handy for unit tests.
    seed:
        Optional seed override (defaults to the spec's fixed seed).
    """
    spec = dataset_spec(name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    return generate_dataset(spec, seed=seed)
