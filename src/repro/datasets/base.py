"""Dataset container for inductive node classification."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError
from ..graph.partition import (
    InductivePartition,
    InductiveSplit,
    build_inductive_partition,
)
from ..graph.sparse import CSRGraph


@dataclass(frozen=True)
class NodeClassificationDataset:
    """A node-classification dataset with an inductive train/val/test split.

    Attributes
    ----------
    name:
        Human-readable dataset identifier (e.g. ``"flickr-sim"``).
    graph:
        The full graph ``G`` over all nodes (train + unseen test nodes).
    features:
        ``(n, f)`` node feature matrix ``X``.
    labels:
        ``(n,)`` integer class labels ``y``.
    split:
        Global train/val/test node-index sets (test nodes are *unseen*).
    """

    name: str
    graph: CSRGraph
    features: np.ndarray
    labels: np.ndarray
    split: InductiveSplit

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=np.float64)
        labels = np.asarray(self.labels, dtype=np.int64)
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "labels", labels)
        if features.ndim != 2:
            raise DatasetError(f"features must be 2-D, got shape {features.shape}")
        if features.shape[0] != self.graph.num_nodes:
            raise DatasetError(
                f"features have {features.shape[0]} rows, graph has {self.graph.num_nodes} nodes"
            )
        if labels.shape != (self.graph.num_nodes,):
            raise DatasetError(
                f"labels must have shape ({self.graph.num_nodes},), got {labels.shape}"
            )
        if labels.min() < 0:
            raise DatasetError("labels must be non-negative integers")
        all_split = np.concatenate([self.split.train_idx, self.split.val_idx, self.split.test_idx])
        if all_split.size and all_split.max() >= self.graph.num_nodes:
            raise DatasetError("split indices exceed the number of nodes")

    # ------------------------------------------------------------------ #
    # Summary statistics (Table II quantities)
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self.graph.num_edges

    @property
    def num_features(self) -> int:
        """Feature dimension ``f``."""
        return int(self.features.shape[1])

    @property
    def num_classes(self) -> int:
        """Number of label classes ``c``."""
        return int(self.labels.max()) + 1

    def summary(self) -> dict[str, int]:
        """Table II-style row: n, m, f, c and split sizes."""
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_features": self.num_features,
            "num_classes": self.num_classes,
            "num_train": int(self.split.train_idx.shape[0]),
            "num_val": int(self.split.val_idx.shape[0]),
            "num_test": int(self.split.test_idx.shape[0]),
        }

    # ------------------------------------------------------------------ #
    # Inductive views
    # ------------------------------------------------------------------ #
    def partition(self) -> InductivePartition:
        """Build the inductive partition (training subgraph + bookkeeping)."""
        return build_inductive_partition(self.graph, self.split)

    def observed_features(self) -> np.ndarray:
        """Features of the observed (training-time) nodes, in ``G_train`` order."""
        return self.features[self.split.observed_idx]

    def observed_labels(self) -> np.ndarray:
        """Labels of the observed nodes, in ``G_train`` order."""
        return self.labels[self.split.observed_idx]

    def test_labels(self) -> np.ndarray:
        """Labels of the unseen test nodes."""
        return self.labels[self.split.test_idx]
