"""Datasets: container plus deterministic synthetic analogues of the paper's graphs."""

from .base import NodeClassificationDataset
from .synthetic import (
    ARXIV_SIM,
    FLICKR_SIM,
    PRODUCTS_SIM,
    SyntheticDatasetSpec,
    available_datasets,
    dataset_spec,
    generate_dataset,
    load_dataset,
)

__all__ = [
    "ARXIV_SIM",
    "FLICKR_SIM",
    "PRODUCTS_SIM",
    "NodeClassificationDataset",
    "SyntheticDatasetSpec",
    "available_datasets",
    "dataset_spec",
    "generate_dataset",
    "load_dataset",
]
