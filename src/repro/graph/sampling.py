"""Supporting-node sampling for inductive inference.

When a batch of unseen nodes is classified with propagation depth ``k``, the
features of every node within ``k`` hops of the batch (the *supporting nodes*)
are touched.  This module extracts those neighbourhoods and builds the local
sub-adjacency over which online propagation runs — the number of supporting
nodes is exactly the quantity the paper's acceleration attacks.

Hot-path architecture
---------------------
:func:`k_hop_neighborhood` returns the local nodes **sorted by hop distance**
(targets first, then the hop-1 frontier, and so on).  The inference engine
relies on this ordering: the set of rows within ``h`` hops of the targets is
always a *prefix* of the local row range, so per-depth support pruning is a
single ``searchsorted`` over :attr:`SupportingSubgraph.hops` instead of a BFS
(see :mod:`repro.graph.kernels` and :mod:`repro.core.inference`).  All index
maps are vectorised numpy inverse permutations — no Python dict lookups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np
import scipy.sparse as sp

from ..exceptions import GraphConstructionError
from .kernels import (
    extract_local_csr_arrays,
    extract_submatrix,
    gather_columns,
    global_to_local_map,
    hop_distances,
)
from .sparse import CSRGraph


@dataclass(frozen=True)
class SupportingSubgraph:
    """A k-hop neighbourhood extracted for a batch of target nodes.

    Attributes
    ----------
    node_ids:
        Global ids of all nodes in the subgraph, **sorted by hop distance**
        from the batch (targets occupy the leading positions).
    target_local:
        Local indices (into ``node_ids``) of the batch targets.
    adjacency:
        Local adjacency matrix restricted to ``node_ids``, or ``None`` when
        the caller requested ``include_adjacency=False`` (the inference
        engine extracts the *normalized* adjacency itself and never needs
        this one).
    hops:
        The hop distance from the batch at which each local node was first
        reached (0 for targets).  Non-decreasing by construction.
    global_to_local:
        Inverse-permutation map of length ``num_nodes`` with
        ``global_to_local[node_ids[i]] == i`` and ``-1`` elsewhere.
    """

    node_ids: np.ndarray
    target_local: np.ndarray
    adjacency: sp.csr_matrix | None
    hops: np.ndarray
    global_to_local: np.ndarray | None = None

    @property
    def num_supporting_nodes(self) -> int:
        """Total number of nodes touched, including the targets themselves."""
        return int(self.node_ids.shape[0])

    def prefix_within(self, hop: int) -> int:
        """Number of leading local rows within ``hop`` hops of the targets.

        Because ``hops`` is sorted, the rows needing an update at a given
        remaining depth form the prefix ``[0, prefix_within(h))`` — this is
        the hop-indexed support pruning used by the fused inference engine.
        """
        return int(np.searchsorted(self.hops, hop, side="right"))

    def as_graph(self) -> CSRGraph:
        """Wrap the local adjacency in a :class:`CSRGraph`."""
        if self.adjacency is None:
            raise GraphConstructionError(
                "this SupportingSubgraph was extracted with include_adjacency=False"
            )
        return CSRGraph(self.adjacency)


def k_hop_neighborhood(
    graph: CSRGraph,
    targets: np.ndarray,
    depth: int,
    *,
    include_adjacency: bool = True,
) -> SupportingSubgraph:
    """Extract the ``depth``-hop supporting subgraph around ``targets``.

    Parameters
    ----------
    graph:
        The full graph (train nodes plus unseen test nodes).
    targets:
        Global node ids of the inference batch.
    depth:
        Maximum propagation depth ``T_max``; supporting nodes further than
        this many hops away cannot influence the batch.
    include_adjacency:
        When false, skip building the local adjacency matrix (the inference
        engine only needs the node ordering and hop distances — it extracts
        the normalized adjacency itself, so building this one would double
        the sampling cost).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if targets.size == 0:
        raise GraphConstructionError("k_hop_neighborhood requires a non-empty batch")
    if targets.min() < 0 or targets.max() >= graph.num_nodes:
        raise GraphConstructionError("target node ids out of range")
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")

    adjacency = graph.adjacency
    indptr, indices = adjacency.indptr, adjacency.indices
    visited = np.zeros(graph.num_nodes, dtype=bool)
    newly = np.zeros(graph.num_nodes, dtype=bool)
    hop_of = np.full(graph.num_nodes, -1, dtype=np.int64)
    frontier = np.unique(targets)
    visited[frontier] = True
    hop_of[frontier] = 0
    order = [frontier]
    for hop in range(1, depth + 1):
        if frontier.size == 0:
            break
        # All neighbours of the current frontier, gathered from the raw CSR
        # arrays; the boolean scatter deduplicates them without the sort that
        # np.unique would pay on the (duplicate-heavy) neighbour list.
        neighbor_ids = gather_columns(indptr, indices, frontier)
        neighbor_ids = neighbor_ids[~visited[neighbor_ids]]
        if neighbor_ids.size == 0:
            frontier = neighbor_ids
            continue
        newly[neighbor_ids] = True
        new = np.flatnonzero(newly)
        newly[new] = False
        visited[new] = True
        hop_of[new] = hop
        order.append(new)
        frontier = new

    node_ids = np.concatenate(order) if order else np.unique(targets)
    lookup = global_to_local_map(node_ids, graph.num_nodes)
    target_local = lookup[targets]
    local_adj = None
    if include_adjacency:
        local_adj = extract_submatrix(adjacency, node_ids, lookup=lookup)
    return SupportingSubgraph(
        node_ids=node_ids,
        target_local=target_local,
        adjacency=local_adj,
        hops=hop_of[node_ids],
        global_to_local=lookup,
    )


@dataclass(frozen=True)
class SupportBundle:
    """Everything the inference engine needs from sampling, in one reusable unit.

    A bundle packages the *data-movement* products of supporting-node
    extraction — the hop-ordered neighbourhood, the local normalized-adjacency
    CSR arrays and the gathered hop-0 feature rows — so a serving layer can
    build it once and replay it for every later batch with the same node
    composition (see :class:`repro.serving.SubgraphCache`).  Bundles carry no
    arithmetic: reusing one skips BFS, index remapping and feature gathering
    only, so MAC accounting is unaffected.

    All arrays are treated as read-only by the engine: propagation reads the
    hop-0 rows from :attr:`local_features` and writes depth ≥ 1 states into
    worker-owned double buffers, never back into the bundle.
    """

    support: SupportingSubgraph
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    local_features: np.ndarray
    build_seconds: float

    @property
    def num_local(self) -> int:
        return self.support.num_supporting_nodes

    def with_target_order(self, rank: np.ndarray) -> "SupportBundle":
        """A view of this bundle whose targets are permuted by ``rank``.

        Everything else about a bundle — the hop-ordered node list, the local
        CSR arrays, the hop-0 feature rows — depends only on the *set* of
        targets: BFS starts from ``np.unique(targets)`` and orders each hop
        by ascending global id.  Only ``target_local`` (the local row of each
        target occurrence, in batch order) is order-sensitive.  Given the
        permutation from :func:`canonical_order`, this returns a shallow view
        whose ``target_local`` matches the permuted batch, sharing every
        array with the original — the serving cache stores one canonical
        bundle per node-set and rebases it per hit.
        """
        rank = np.asarray(rank, dtype=np.int64)
        if rank.shape != self.support.target_local.shape:
            raise GraphConstructionError(
                f"target permutation has length {rank.shape[0]}, bundle has "
                f"{self.support.target_local.shape[0]} targets"
            )
        support = replace(self.support, target_local=self.support.target_local[rank])
        return replace(self, support=support)

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint (used for cache sizing diagnostics)."""
        arrays = (
            self.support.node_ids,
            self.support.target_local,
            self.support.hops,
            self.indptr,
            self.indices,
            self.data,
            self.local_features,
        )
        total = sum(a.nbytes for a in arrays)
        if self.support.global_to_local is not None:
            total += self.support.global_to_local.nbytes
        return int(total)


def canonical_order(targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(sorted_targets, rank)`` such that ``sorted_targets[rank] == targets``.

    ``sorted_targets`` is the canonical (ascending, duplicates preserved)
    form every permutation of a batch shares; ``rank`` re-permutes anything
    computed in canonical batch order — most importantly a canonical
    bundle's ``target_local`` — back to the actual request order (see
    :meth:`SupportBundle.with_target_order`).
    """
    targets = np.asarray(targets, dtype=np.int64)
    order = np.argsort(targets, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.shape[0], dtype=np.int64)
    return targets[order], rank


def support_cache_key(targets: np.ndarray, depth: int) -> bytes:
    """Cache key identifying a batch's supporting subgraph.

    The key is **canonical** — depth plus the *sorted* target ids — so every
    permutation of the same node multiset maps to one entry.  The sampling
    products genuinely depend only on the set (BFS starts from the unique
    targets and orders each hop by ascending id); the one order-sensitive
    piece, ``target_local``, is restored per use by rebasing the cached
    bundle through :meth:`SupportBundle.with_target_order`.
    """
    targets = np.ascontiguousarray(targets, dtype=np.int64)
    if targets.size and np.any(targets[1:] < targets[:-1]):
        targets = np.sort(targets, kind="stable")
    return depth.to_bytes(8, "little") + targets.tobytes()


def build_support_bundle(
    graph: CSRGraph,
    normalized_adjacency: sp.csr_matrix,
    features: np.ndarray,
    targets: np.ndarray,
    depth: int,
) -> SupportBundle:
    """Extract the cacheable sampling products for one inference batch.

    One BFS (:func:`k_hop_neighborhood`), one zero-copy local-CSR extraction
    and one contiguous gather of the hop-0 feature rows.  ``features`` must
    already carry the inference dtype — the bundle stores whatever it is
    given, so a cache holds exactly one precision per deployment.

    The graph-sized ``global_to_local`` lookup is only needed *during*
    extraction; it is dropped from the stored subgraph so a cached bundle
    costs O(subgraph), not O(num_nodes) — on a large deployment the lookup
    would otherwise dominate every entry of the serving cache.
    """
    start = time.perf_counter()
    support = k_hop_neighborhood(graph, targets, depth, include_adjacency=False)
    indptr, indices, data = extract_local_csr_arrays(
        normalized_adjacency, support.node_ids, lookup=support.global_to_local
    )
    local_features = np.ascontiguousarray(features[support.node_ids])
    return SupportBundle(
        support=replace(support, global_to_local=None),
        indptr=indptr,
        indices=indices,
        data=data,
        local_features=local_features,
        build_seconds=time.perf_counter() - start,
    )


def slice_support_bundle(
    bundle: SupportBundle,
    targets: np.ndarray,
    depth: int,
) -> SupportBundle:
    """Carve the supporting bundle for ``targets`` out of a superset bundle.

    If every target is contained in ``bundle``'s node set, the ``depth``-hop
    support of ``targets`` is a subset of the bundle's nodes and all of its
    edges are present in the bundle's local CSR, so the slice can be built
    without touching the full graph or the transport layer.  The result is
    **bit-identical** to a fresh :func:`build_support_bundle` for the same
    targets: local rows are re-sorted into the fresh build's (hop, global id)
    order, and the sub-CSR extraction preserves per-row column order.

    Raises :class:`~repro.exceptions.GraphConstructionError` when a target is
    missing from the bundle or the slice would need rows beyond ``depth``
    hops that the bundle cannot prove it holds (i.e. the bundle was built
    for a shallower depth).
    """
    start = time.perf_counter()
    targets = np.asarray(targets, dtype=np.int64)
    if targets.size == 0:
        raise GraphConstructionError("slice_support_bundle requires targets")
    support = bundle.support
    node_ids = support.node_ids
    # The stored support drops its graph-sized global_to_local map; recover
    # the target rows with one O(n log n) argsort over the bundle's nodes.
    order = np.argsort(node_ids, kind="stable")
    sorted_ids = node_ids[order]
    pos = np.searchsorted(sorted_ids, targets)
    contained = (pos < sorted_ids.shape[0]) & (
        sorted_ids[np.minimum(pos, sorted_ids.shape[0] - 1)] == targets
    )
    if not np.all(contained):
        raise GraphConstructionError(
            "slice_support_bundle: targets are not contained in the bundle"
        )
    target_rows = order[pos]
    # Hop distances over the bundle's own CSR reproduce the full-graph BFS
    # exactly: every node within `depth` hops of a contained target is in
    # the bundle (supports are monotone in the target set) along with every
    # edge of its shortest paths, and the normalized adjacency shares the
    # raw adjacency's reachability (self-loops never change BFS layering).
    dist = hop_distances(
        bundle.indptr, bundle.indices, target_rows, bundle.num_local, depth
    )
    sel = np.flatnonzero(dist <= depth)
    # Fresh builds order nodes hop-major, ascending global id within a hop.
    sel = sel[np.lexsort((node_ids[sel], dist[sel]))]
    local_matrix = sp.csr_matrix(
        (bundle.data, bundle.indices, bundle.indptr),
        shape=(bundle.num_local, bundle.num_local),
    )
    lookup = global_to_local_map(sel, bundle.num_local)
    indptr, indices, data = extract_local_csr_arrays(
        local_matrix, sel, lookup=lookup
    )
    sliced = SupportingSubgraph(
        node_ids=node_ids[sel],
        target_local=lookup[target_rows],
        adjacency=None,
        hops=dist[sel],
        global_to_local=None,
    )
    return SupportBundle(
        support=sliced,
        indptr=indptr,
        indices=indices,
        data=data,
        local_features=np.ascontiguousarray(bundle.local_features[sel]),
        build_seconds=time.perf_counter() - start,
    )


def supporting_node_counts(
    graph: CSRGraph,
    targets: np.ndarray,
    max_depth: int,
) -> list[int]:
    """Number of supporting nodes reached at each depth ``0..max_depth``.

    Useful for the batch-size experiment (Figure 5): the count grows roughly
    exponentially with depth until it saturates at the connected component
    size.
    """
    sub = k_hop_neighborhood(graph, targets, max_depth, include_adjacency=False)
    return [sub.prefix_within(depth) for depth in range(max_depth + 1)]


def batch_iterator(node_ids: np.ndarray, batch_size: int) -> list[np.ndarray]:
    """Split ``node_ids`` into consecutive batches of at most ``batch_size``."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    node_ids = np.asarray(node_ids, dtype=np.int64)
    return [
        node_ids[start:start + batch_size]
        for start in range(0, node_ids.shape[0], batch_size)
    ]
