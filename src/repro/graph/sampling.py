"""Supporting-node sampling for inductive inference.

When a batch of unseen nodes is classified with propagation depth ``k``, the
features of every node within ``k`` hops of the batch (the *supporting nodes*)
are touched.  This module extracts those neighbourhoods and builds the local
sub-adjacency over which online propagation runs — the number of supporting
nodes is exactly the quantity the paper's acceleration attacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..exceptions import GraphConstructionError
from .sparse import CSRGraph


@dataclass(frozen=True)
class SupportingSubgraph:
    """A k-hop neighbourhood extracted for a batch of target nodes.

    Attributes
    ----------
    node_ids:
        Global ids of all nodes in the subgraph.  The first
        ``len(target_local)`` entries are the batch targets.
    target_local:
        Local indices (into ``node_ids``) of the batch targets.
    adjacency:
        Local adjacency matrix restricted to ``node_ids``.
    hops:
        The hop distance from the batch at which each local node was first
        reached (0 for targets).
    """

    node_ids: np.ndarray
    target_local: np.ndarray
    adjacency: sp.csr_matrix
    hops: np.ndarray

    @property
    def num_supporting_nodes(self) -> int:
        """Total number of nodes touched, including the targets themselves."""
        return int(self.node_ids.shape[0])

    def as_graph(self) -> CSRGraph:
        """Wrap the local adjacency in a :class:`CSRGraph`."""
        return CSRGraph(self.adjacency)


def k_hop_neighborhood(
    graph: CSRGraph,
    targets: np.ndarray,
    depth: int,
) -> SupportingSubgraph:
    """Extract the ``depth``-hop supporting subgraph around ``targets``.

    Parameters
    ----------
    graph:
        The full graph (train nodes plus unseen test nodes).
    targets:
        Global node ids of the inference batch.
    depth:
        Maximum propagation depth ``T_max``; supporting nodes further than
        this many hops away cannot influence the batch.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if targets.size == 0:
        raise GraphConstructionError("k_hop_neighborhood requires a non-empty batch")
    if targets.min() < 0 or targets.max() >= graph.num_nodes:
        raise GraphConstructionError("target node ids out of range")
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")

    adjacency = graph.adjacency
    visited = np.zeros(graph.num_nodes, dtype=bool)
    hop_of = np.full(graph.num_nodes, -1, dtype=np.int64)
    frontier = np.unique(targets)
    visited[frontier] = True
    hop_of[frontier] = 0
    order = [frontier]
    for hop in range(1, depth + 1):
        if frontier.size == 0:
            break
        # All neighbours of the current frontier in one sparse slice.
        neighbor_ids = adjacency[frontier].indices
        new = np.unique(neighbor_ids[~visited[neighbor_ids]])
        if new.size == 0:
            frontier = new
            continue
        visited[new] = True
        hop_of[new] = hop
        order.append(new)
        frontier = new

    node_ids = np.concatenate(order) if order else np.unique(targets)
    local_index = {int(g): i for i, g in enumerate(node_ids)}
    target_local = np.asarray([local_index[int(t)] for t in targets], dtype=np.int64)
    local_adj = adjacency[node_ids][:, node_ids].tocsr()
    return SupportingSubgraph(
        node_ids=node_ids,
        target_local=target_local,
        adjacency=local_adj,
        hops=hop_of[node_ids],
    )


def supporting_node_counts(
    graph: CSRGraph,
    targets: np.ndarray,
    max_depth: int,
) -> list[int]:
    """Number of supporting nodes reached at each depth ``0..max_depth``.

    Useful for the batch-size experiment (Figure 5): the count grows roughly
    exponentially with depth until it saturates at the connected component
    size.
    """
    sub = k_hop_neighborhood(graph, targets, max_depth)
    counts = []
    for depth in range(max_depth + 1):
        counts.append(int(np.count_nonzero(sub.hops <= depth)))
    return counts


def batch_iterator(node_ids: np.ndarray, batch_size: int) -> list[np.ndarray]:
    """Split ``node_ids`` into consecutive batches of at most ``batch_size``."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    node_ids = np.asarray(node_ids, dtype=np.int64)
    return [
        node_ids[start:start + batch_size]
        for start in range(0, node_ids.shape[0], batch_size)
    ]
