"""Synthetic graph generators.

The paper evaluates on Flickr, Ogbn-arxiv and Ogbn-products.  These public
datasets cannot be downloaded in the offline reproduction environment, so the
:mod:`repro.datasets.synthetic` module builds deterministic analogues on top
of the generators implemented here.  Two ingredients matter for NAI's
behaviour and are therefore modelled explicitly:

* **homophily** — a stochastic-block-model community structure aligned with
  the node labels, so that propagation genuinely helps classification;
* **degree heterogeneity** — a heavy-tailed degree profile, so that the
  personalised propagation depth differs meaningfully across nodes (Eq. 10:
  high-degree nodes saturate earlier).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError
from .sparse import CSRGraph


@dataclass(frozen=True)
class SyntheticGraphSpec:
    """Parameters for :func:`generate_community_graph`.

    Attributes
    ----------
    num_nodes:
        Number of nodes ``n``.
    num_classes:
        Number of communities / label classes ``c``.
    avg_degree:
        Target average (undirected) degree.
    homophily:
        Probability mass of a node's edges that stays inside its own
        community (0.5 = no structure, 1.0 = perfectly separable).
    degree_exponent:
        Exponent of the Pareto-like degree propensity; smaller values produce
        heavier tails (a few hubs with very large degree).
    """

    num_nodes: int
    num_classes: int
    avg_degree: float
    homophily: float = 0.8
    degree_exponent: float = 2.5

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise DatasetError("num_nodes must be at least 2")
        if self.num_classes < 2:
            raise DatasetError("num_classes must be at least 2")
        if self.num_classes > self.num_nodes:
            raise DatasetError("cannot have more classes than nodes")
        if self.avg_degree <= 0:
            raise DatasetError("avg_degree must be positive")
        if not 0.0 < self.homophily <= 1.0:
            raise DatasetError("homophily must lie in (0, 1]")
        if self.degree_exponent <= 1.0:
            raise DatasetError("degree_exponent must exceed 1.0")


def _degree_propensities(spec: SyntheticGraphSpec, rng: np.random.Generator) -> np.ndarray:
    """Heavy-tailed per-node propensity to receive edges (normalised to sum 1)."""
    raw = (1.0 + rng.pareto(spec.degree_exponent - 1.0, size=spec.num_nodes))
    return raw / raw.sum()


def generate_community_graph(
    spec: SyntheticGraphSpec,
    *,
    rng: np.random.Generator | int | None = None,
) -> tuple[CSRGraph, np.ndarray]:
    """Generate a labelled graph with community structure and hub nodes.

    Returns
    -------
    graph, labels:
        The undirected graph and an integer label per node (the community).

    Notes
    -----
    Edges are sampled with a degree-corrected stochastic block model flavour:
    each endpoint is drawn proportionally to its degree propensity, and with
    probability ``homophily`` both endpoints come from the same community.
    Self loops and duplicate edges are dropped; a spanning chain per
    community guarantees that no community is totally disconnected.
    """
    generator = np.random.default_rng(rng)
    labels = np.sort(generator.integers(0, spec.num_classes, size=spec.num_nodes))
    # Guarantee every class appears at least twice (needed downstream by
    # stratified splits and by the chain construction below).
    for cls in range(spec.num_classes):
        missing = 2 - int(np.count_nonzero(labels == cls))
        if missing > 0:
            donors = np.flatnonzero(np.bincount(labels, minlength=spec.num_classes) > 2)
            for _ in range(missing):
                donor_cls = int(generator.choice(donors))
                idx = int(np.flatnonzero(labels == donor_cls)[0])
                labels[idx] = cls
    propensity = _degree_propensities(spec, generator)

    class_members = [np.flatnonzero(labels == cls) for cls in range(spec.num_classes)]
    class_propensity = []
    for members in class_members:
        weights = propensity[members]
        class_propensity.append(weights / weights.sum())

    target_edges = int(round(spec.avg_degree * spec.num_nodes / 2.0))
    sources = generator.choice(spec.num_nodes, size=target_edges, p=propensity)
    same_community = generator.random(target_edges) < spec.homophily

    destinations = np.empty(target_edges, dtype=np.int64)
    # Same-community endpoints: draw from the source's community.
    for cls in range(spec.num_classes):
        mask = same_community & (labels[sources] == cls)
        count = int(mask.sum())
        if count:
            destinations[mask] = generator.choice(
                class_members[cls], size=count, p=class_propensity[cls]
            )
    # Cross-community endpoints: draw from the global distribution.
    cross = ~same_community
    count = int(cross.sum())
    if count:
        destinations[cross] = generator.choice(spec.num_nodes, size=count, p=propensity)

    edges = np.stack([sources, destinations], axis=1)
    edges = edges[edges[:, 0] != edges[:, 1]]

    # Connectivity floor: chain the members of each community together and
    # chain one representative per community so the graph has one component.
    chains = []
    for members in class_members:
        if members.shape[0] >= 2:
            chains.append(np.stack([members[:-1], members[1:]], axis=1))
    representatives = np.asarray([members[0] for members in class_members])
    if representatives.shape[0] >= 2:
        chains.append(np.stack([representatives[:-1], representatives[1:]], axis=1))
    all_edges = np.concatenate([edges] + chains, axis=0)

    graph = CSRGraph.from_edges(all_edges, num_nodes=spec.num_nodes, undirected=True)
    graph = graph.remove_self_loops()
    return graph, labels


def generate_features(
    labels: np.ndarray,
    num_features: int,
    *,
    class_separation: float = 1.0,
    noise_scale: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Generate class-conditional Gaussian node features.

    Each class receives a random mean vector scaled by ``class_separation``;
    node features are that mean plus isotropic Gaussian noise.  Lower
    separation / higher noise makes the task harder and increases the value
    of deeper propagation, mimicking the sparsely-labelled large graphs the
    paper targets.
    """
    if num_features < 1:
        raise DatasetError("num_features must be positive")
    labels = np.asarray(labels, dtype=np.int64)
    generator = np.random.default_rng(rng)
    num_classes = int(labels.max()) + 1
    centroids = generator.normal(0.0, class_separation, size=(num_classes, num_features))
    noise = generator.normal(0.0, noise_scale, size=(labels.shape[0], num_features))
    return centroids[labels] + noise
