"""Linear feature propagation for scalable GNNs (Eq. 2 of the paper).

Scalable GNNs precompute ``X^(l) = Â^l X`` for ``l = 0..k``.  This module
implements that precomputation, the per-step online variant used by the
NAI inference loop, and convenience aggregators (S2GC averaging, SIGN
concatenation) shared by the model zoo.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from ..exceptions import ShapeError
from .normalization import NormalizationScheme, normalized_adjacency
from .sparse import CSRGraph


def _check_features(
    graph_or_matrix, features: np.ndarray, dtype: np.dtype | str = np.float64
) -> np.ndarray:
    features = np.asarray(features, dtype=np.dtype(dtype))
    if features.ndim != 2:
        raise ShapeError(f"features must be 2-D, got shape {features.shape}")
    n = (
        graph_or_matrix.num_nodes
        if isinstance(graph_or_matrix, CSRGraph)
        else graph_or_matrix.shape[0]
    )
    if features.shape[0] != n:
        raise ShapeError(
            f"features have {features.shape[0]} rows but the graph has {n} nodes"
        )
    return features


def propagate_features(
    graph: CSRGraph,
    features: np.ndarray,
    depth: int,
    *,
    gamma: str | float | NormalizationScheme = NormalizationScheme.SYMMETRIC,
    return_all: bool = True,
    dtype: np.dtype | str = np.float64,
) -> list[np.ndarray] | np.ndarray:
    """Compute propagated features ``X^(0..depth)`` (or only ``X^(depth)``).

    Parameters
    ----------
    graph:
        Graph over which to propagate.
    features:
        ``(n, f)`` input feature matrix ``X = X^(0)``.
    depth:
        Maximum propagation depth ``k``.
    gamma:
        Convolution coefficient / scheme of Eq. (1).
    return_all:
        When true, return the list ``[X^(0), X^(1), ..., X^(depth)]``;
        otherwise only the deepest matrix.
    dtype:
        Floating precision of the propagation (``NAIConfig.dtype`` uses this
        to run the whole offline precomputation in float32 when requested).
    """
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    features = _check_features(graph, features, dtype)
    a_hat = normalized_adjacency(graph, gamma=gamma).astype(features.dtype, copy=False)
    outputs = [features]
    current = features
    for _ in range(depth):
        current = a_hat @ current
        outputs.append(np.asarray(current))
    if return_all:
        return outputs
    return outputs[-1]


def propagation_steps(
    a_hat: sp.csr_matrix,
    features: np.ndarray,
    depth: int,
    *,
    dtype: np.dtype | str = np.float64,
) -> Iterator[np.ndarray]:
    """Yield ``X^(1), X^(2), ..., X^(depth)`` one step at a time.

    This is the online form used by Algorithm 1: the caller can stop early
    once every node in the batch has been assigned a personalised depth.
    """
    current = _check_features(a_hat, features, dtype)
    for _ in range(depth):
        current = np.asarray(a_hat @ current)
        yield current


def s2gc_aggregate(propagated: Sequence[np.ndarray]) -> np.ndarray:
    """Simple spectral aggregation (Eq. 4): the mean of ``X^(0..k)``."""
    if not propagated:
        raise ShapeError("s2gc_aggregate requires at least one matrix")
    stacked = np.stack([np.asarray(m, dtype=np.float64) for m in propagated], axis=0)
    return stacked.mean(axis=0)


def sign_concatenate(propagated: Sequence[np.ndarray]) -> np.ndarray:
    """SIGN-style concatenation (Eq. 3) of propagated feature matrices."""
    if not propagated:
        raise ShapeError("sign_concatenate requires at least one matrix")
    return np.concatenate([np.asarray(m, dtype=np.float64) for m in propagated], axis=1)


def smoothness_distance(propagated: np.ndarray, stationary: np.ndarray) -> np.ndarray:
    """Per-node l2 distance ``Δ_i = ‖X^(l)_i − X^(∞)_i‖₂`` (Eq. 8)."""
    propagated = np.asarray(propagated, dtype=np.float64)
    stationary = np.asarray(stationary, dtype=np.float64)
    if propagated.shape != stationary.shape:
        raise ShapeError(
            f"propagated {propagated.shape} and stationary {stationary.shape} "
            "matrices must have the same shape"
        )
    return np.linalg.norm(propagated - stationary, axis=1)
