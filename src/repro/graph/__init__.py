"""Sparse graph substrate: containers, normalization, propagation, sampling."""

from .generators import SyntheticGraphSpec, generate_community_graph, generate_features
from .kernels import (
    auto_masked_spmm,
    contiguous_runs,
    extract_local_csr_arrays,
    extract_submatrix,
    gather_columns,
    gathered_row_spmm,
    global_to_local_map,
    hop_distances,
    masked_row_spmm,
    masked_row_spmm_reference,
    runs_nnz,
)
from .normalization import (
    NormalizationScheme,
    laplacian,
    normalized_adjacency,
    resolve_gamma,
    second_largest_eigenvalue_magnitude,
)
from .partition import (
    InductivePartition,
    InductiveSplit,
    build_inductive_partition,
    make_inductive_split,
)
from .propagation import (
    propagate_features,
    propagation_steps,
    s2gc_aggregate,
    sign_concatenate,
    smoothness_distance,
)
from .sampling import (
    SupportBundle,
    SupportingSubgraph,
    batch_iterator,
    build_support_bundle,
    canonical_order,
    k_hop_neighborhood,
    support_cache_key,
    supporting_node_counts,
)
from .sparse import CSRGraph

__all__ = [
    "CSRGraph",
    "NormalizationScheme",
    "SupportBundle",
    "SyntheticGraphSpec",
    "SupportingSubgraph",
    "InductivePartition",
    "InductiveSplit",
    "auto_masked_spmm",
    "batch_iterator",
    "build_inductive_partition",
    "build_support_bundle",
    "canonical_order",
    "contiguous_runs",
    "extract_local_csr_arrays",
    "extract_submatrix",
    "gather_columns",
    "gathered_row_spmm",
    "generate_community_graph",
    "generate_features",
    "global_to_local_map",
    "hop_distances",
    "k_hop_neighborhood",
    "laplacian",
    "make_inductive_split",
    "masked_row_spmm",
    "masked_row_spmm_reference",
    "normalized_adjacency",
    "runs_nnz",
    "propagate_features",
    "propagation_steps",
    "resolve_gamma",
    "s2gc_aggregate",
    "second_largest_eigenvalue_magnitude",
    "sign_concatenate",
    "smoothness_distance",
    "support_cache_key",
    "supporting_node_counts",
]
