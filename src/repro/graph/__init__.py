"""Sparse graph substrate: containers, normalization, propagation, sampling."""

from .generators import SyntheticGraphSpec, generate_community_graph, generate_features
from .normalization import (
    NormalizationScheme,
    laplacian,
    normalized_adjacency,
    resolve_gamma,
    second_largest_eigenvalue_magnitude,
)
from .partition import (
    InductivePartition,
    InductiveSplit,
    build_inductive_partition,
    make_inductive_split,
)
from .propagation import (
    propagate_features,
    propagation_steps,
    s2gc_aggregate,
    sign_concatenate,
    smoothness_distance,
)
from .sampling import (
    SupportingSubgraph,
    batch_iterator,
    k_hop_neighborhood,
    supporting_node_counts,
)
from .sparse import CSRGraph

__all__ = [
    "CSRGraph",
    "NormalizationScheme",
    "SyntheticGraphSpec",
    "SupportingSubgraph",
    "InductivePartition",
    "InductiveSplit",
    "batch_iterator",
    "build_inductive_partition",
    "generate_community_graph",
    "generate_features",
    "k_hop_neighborhood",
    "laplacian",
    "make_inductive_split",
    "normalized_adjacency",
    "propagate_features",
    "propagation_steps",
    "resolve_gamma",
    "s2gc_aggregate",
    "second_largest_eigenvalue_magnitude",
    "sign_concatenate",
    "smoothness_distance",
    "supporting_node_counts",
]
