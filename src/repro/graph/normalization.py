"""Normalized adjacency operators used by scalable GNNs.

The paper (Eq. 1) defines the convolution matrix

    Â = D̃^(γ−1) Ã D̃^(−γ)

where ``Ã`` and ``D̃`` are the adjacency and degree matrices with self loops
and ``γ ∈ [0, 1]`` is the convolution coefficient.  Special cases:

* ``γ = 1``   → transition probability matrix ``Ã D̃^{-1}``
* ``γ = 0.5`` → symmetric normalization ``D̃^{-1/2} Ã D̃^{-1/2}``
* ``γ = 0``   → reverse transition matrix ``D̃^{-1} Ã``

All experiments in the paper use the symmetric normalization; the coefficient
is exposed so that the stationary-state formula (Eq. 7) can be validated for
the other variants as well.
"""

from __future__ import annotations

from enum import Enum

import numpy as np
import scipy.sparse as sp

from ..exceptions import InvalidNormalizationError
from .sparse import CSRGraph


class NormalizationScheme(str, Enum):
    """Named convolution coefficients from Eq. (1)."""

    TRANSITION = "transition"          # gamma = 1,  A~ D~^-1
    SYMMETRIC = "symmetric"            # gamma = 0.5, D~^-1/2 A~ D~^-1/2
    REVERSE_TRANSITION = "reverse"     # gamma = 0,  D~^-1 A~

    @property
    def gamma(self) -> float:
        """The convolution coefficient γ corresponding to this scheme."""
        return {
            NormalizationScheme.TRANSITION: 1.0,
            NormalizationScheme.SYMMETRIC: 0.5,
            NormalizationScheme.REVERSE_TRANSITION: 0.0,
        }[self]


def resolve_gamma(scheme: str | float | NormalizationScheme) -> float:
    """Turn a scheme name or a raw coefficient into a validated γ value."""
    if isinstance(scheme, NormalizationScheme):
        return scheme.gamma
    if isinstance(scheme, str):
        try:
            return NormalizationScheme(scheme).gamma
        except ValueError as exc:
            raise InvalidNormalizationError(
                f"unknown normalization scheme {scheme!r}; expected one of "
                f"{[s.value for s in NormalizationScheme]}"
            ) from exc
    gamma = float(scheme)
    if not 0.0 <= gamma <= 1.0:
        raise InvalidNormalizationError(
            f"convolution coefficient gamma must lie in [0, 1], got {gamma}"
        )
    return gamma


def normalized_adjacency(
    graph: CSRGraph,
    *,
    gamma: str | float | NormalizationScheme = NormalizationScheme.SYMMETRIC,
    add_self_loops: bool = True,
) -> sp.csr_matrix:
    """Return ``Â = D̃^(γ−1) Ã D̃^(−γ)`` as a CSR matrix.

    Parameters
    ----------
    graph:
        Input graph.  A self loop is added to every node unless
        ``add_self_loops`` is false (matching ``Ã = A + I``).
    gamma:
        Convolution coefficient or scheme name.
    """
    coeff = resolve_gamma(gamma)
    base = graph.add_self_loops() if add_self_loops else graph
    adjacency = base.adjacency
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    # Isolated nodes with self loops always have degree >= 1; without self
    # loops guard against division by zero.
    safe = np.where(degrees > 0, degrees, 1.0)
    left = sp.diags(np.power(safe, coeff - 1.0))
    right = sp.diags(np.power(safe, -coeff))
    return (left @ adjacency @ right).tocsr()


def laplacian(graph: CSRGraph, *, normalized: bool = True) -> sp.csr_matrix:
    """Graph Laplacian ``L = I − Â`` (normalized) or ``D − A`` (combinatorial)."""
    if normalized:
        a_hat = normalized_adjacency(graph, gamma=NormalizationScheme.SYMMETRIC)
        return (sp.eye(graph.num_nodes, format="csr") - a_hat).tocsr()
    return (graph.degree_matrix() - graph.adjacency).tocsr()


def second_largest_eigenvalue_magnitude(graph: CSRGraph, *, gamma: float = 0.5) -> float:
    """Estimate ``λ₂`` of ``Â`` (used by the depth upper bound, Eq. 10).

    For small graphs this computes the exact eigenvalues of the dense matrix;
    for larger graphs it falls back to sparse Lanczos iteration.
    """
    a_hat = normalized_adjacency(graph, gamma=gamma)
    n = graph.num_nodes
    if n <= 2:
        return 0.0
    if n <= 500:
        values = np.linalg.eigvals(a_hat.toarray())
        magnitudes = np.sort(np.abs(values))[::-1]
        return float(magnitudes[1])
    from scipy.sparse.linalg import eigs

    values = eigs(a_hat.astype(np.float64), k=2, which="LM", return_eigenvectors=False)
    magnitudes = np.sort(np.abs(values))[::-1]
    return float(magnitudes[-1])
