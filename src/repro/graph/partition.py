"""Inductive train/test partitioning.

Following the paper's problem formulation (Section II-A), the node set ``V``
is split into a training set ``V_train`` (labelled + unlabelled) and a test
set ``V_test`` of *unseen* nodes.  Models are trained on ``G_train``, the
subgraph induced by ``V_train`` only; at inference time the full graph ``G``
(including the unseen nodes and all their edges) becomes available and
propagation for test nodes must run online.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError
from .sparse import CSRGraph


@dataclass(frozen=True)
class InductiveSplit:
    """Index sets describing an inductive node-classification split.

    Attributes
    ----------
    train_idx, val_idx, test_idx:
        Global node ids of the labelled training, validation and (unseen)
        test nodes.  Validation nodes are part of ``V_train`` (they are
        observed during training) following the paper's setup.
    """

    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray

    def __post_init__(self) -> None:
        for name in ("train_idx", "val_idx", "test_idx"):
            object.__setattr__(self, name, np.asarray(getattr(self, name), dtype=np.int64))
        all_ids = np.concatenate([self.train_idx, self.val_idx, self.test_idx])
        if len(np.unique(all_ids)) != len(all_ids):
            raise DatasetError("train/val/test index sets must be disjoint")

    @property
    def observed_idx(self) -> np.ndarray:
        """Nodes visible at training time (``V_train`` = train ∪ val)."""
        return np.sort(np.concatenate([self.train_idx, self.val_idx]))

    @property
    def num_observed(self) -> int:
        return int(self.observed_idx.shape[0])

    @property
    def num_test(self) -> int:
        return int(self.test_idx.shape[0])


@dataclass(frozen=True)
class InductivePartition:
    """The training subgraph plus index bookkeeping for inductive evaluation.

    Attributes
    ----------
    train_graph:
        Subgraph induced on the observed nodes (``G_train``), with nodes
        relabelled to ``0..num_observed-1``.
    full_graph:
        The original full graph ``G`` used at inference time.
    split:
        The global index sets.
    global_to_train:
        Mapping from global node id to local id in ``train_graph`` (-1 for
        unseen nodes).
    """

    train_graph: CSRGraph
    full_graph: CSRGraph
    split: InductiveSplit
    global_to_train: np.ndarray

    def train_local(self, global_ids: np.ndarray) -> np.ndarray:
        """Translate global node ids into ``train_graph`` local ids."""
        global_ids = np.asarray(global_ids, dtype=np.int64)
        local = self.global_to_train[global_ids]
        if (local < 0).any():
            raise DatasetError("requested nodes are not part of the training graph")
        return local


def make_inductive_split(
    num_nodes: int,
    *,
    train_fraction: float = 0.5,
    val_fraction: float = 0.25,
    rng: np.random.Generator | int | None = None,
) -> InductiveSplit:
    """Randomly split ``num_nodes`` nodes into train/val/test index sets."""
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError(f"train_fraction must be in (0, 1), got {train_fraction}")
    if not 0.0 <= val_fraction < 1.0:
        raise DatasetError(f"val_fraction must be in [0, 1), got {val_fraction}")
    if train_fraction + val_fraction >= 1.0:
        raise DatasetError("train_fraction + val_fraction must leave room for test nodes")
    generator = np.random.default_rng(rng)
    permutation = generator.permutation(num_nodes)
    n_train = int(round(train_fraction * num_nodes))
    n_val = int(round(val_fraction * num_nodes))
    if n_train == 0 or num_nodes - n_train - n_val == 0:
        raise DatasetError("split fractions produce an empty train or test set")
    return InductiveSplit(
        train_idx=np.sort(permutation[:n_train]),
        val_idx=np.sort(permutation[n_train:n_train + n_val]),
        test_idx=np.sort(permutation[n_train + n_val:]),
    )


def build_inductive_partition(graph: CSRGraph, split: InductiveSplit) -> InductivePartition:
    """Induce ``G_train`` from ``graph`` according to ``split``."""
    observed = split.observed_idx
    if observed.size == 0:
        raise DatasetError("the observed node set is empty")
    if observed.max() >= graph.num_nodes:
        raise DatasetError("split refers to nodes beyond the graph size")
    train_graph = graph.subgraph(observed)
    mapping = np.full(graph.num_nodes, -1, dtype=np.int64)
    mapping[observed] = np.arange(observed.shape[0], dtype=np.int64)
    return InductivePartition(
        train_graph=train_graph,
        full_graph=graph,
        split=split,
        global_to_train=mapping,
    )
